#include "simnet/tcp.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "simnet/host.hpp"

namespace dohperf::simnet {

namespace {

// 32-bit sequence space comparisons (RFC 793 modular arithmetic).
bool seq_lt(std::uint32_t a, std::uint32_t b) noexcept {
  return static_cast<std::int32_t>(a - b) < 0;
}
bool seq_le(std::uint32_t a, std::uint32_t b) noexcept {
  return static_cast<std::int32_t>(a - b) <= 0;
}
bool seq_gt(std::uint32_t a, std::uint32_t b) noexcept {
  return static_cast<std::int32_t>(a - b) > 0;
}

/// SYN/SYN-ACK carry MSS + SACK-permitted + timestamps + window scale
/// (+padding) = 20 option bytes, matching a typical Linux handshake.
constexpr std::uint8_t kSynOptions = 20;
/// Established segments carry the timestamp option (10 bytes + 2 padding).
constexpr std::uint8_t kTimestampOptions = 12;

}  // namespace

const char* to_string(TcpState s) noexcept {
  switch (s) {
    case TcpState::kClosed: return "CLOSED";
    case TcpState::kListen: return "LISTEN";
    case TcpState::kSynSent: return "SYN_SENT";
    case TcpState::kSynReceived: return "SYN_RCVD";
    case TcpState::kEstablished: return "ESTABLISHED";
    case TcpState::kFinWait1: return "FIN_WAIT_1";
    case TcpState::kFinWait2: return "FIN_WAIT_2";
    case TcpState::kCloseWait: return "CLOSE_WAIT";
    case TcpState::kClosing: return "CLOSING";
    case TcpState::kLastAck: return "LAST_ACK";
  }
  return "?";
}

TcpConnection::TcpConnection(Host& host, std::uint16_t local_port,
                             Address remote, TcpConfig config, bool is_server)
    : host_(host), local_port_(local_port), remote_(remote),
      config_(config), rto_(config.rto_initial) {
  (void)is_server;
  cwnd_ = config_.initial_cwnd_segments * config_.mss;
  ssthresh_ = 64 * 1024;
}

Address TcpConnection::local() const noexcept {
  return Address{host_.id(), local_port_};
}

std::size_t TcpConnection::flight_size() const noexcept {
  return snd_nxt_ - snd_una_;
}

void TcpConnection::start_connect() {
  assert(state_ == TcpState::kClosed);
  state_ = TcpState::kSynSent;
  syn_time_ = host_.loop().now();
  iss_ = 1;
  snd_una_ = iss_;
  snd_nxt_ = iss_ + 1;  // SYN consumes one sequence number
  send_segment(/*syn=*/true, /*fin=*/false, /*force_ack=*/false, {}, iss_);
  arm_rto();
}

void TcpConnection::handle_syn(const TcpSegment& seg) {
  assert(state_ == TcpState::kClosed);
  // This segment arrived before the connection object existed, so it is
  // counted here rather than in on_segment().
  ++counters_.packets_received;
  counters_.wire_bytes_received += seg.wire_size();
  counters_.header_bytes_received += seg.header_size();
  state_ = TcpState::kSynReceived;
  irs_ = seg.seq;
  rcv_nxt_ = seg.seq + 1;
  snd_wnd_ = seg.window;
  iss_ = 1;
  snd_una_ = iss_;
  snd_nxt_ = iss_ + 1;
  // SYN-ACK.
  send_segment(/*syn=*/true, /*fin=*/false, /*force_ack=*/true, {}, iss_);
  arm_rto();
}

void TcpConnection::send(BufferSlice data) {
  if (state_ == TcpState::kClosed || fin_pending_ || fin_sent_) {
    throw std::logic_error("send on closed/closing TCP connection");
  }
  if (!data.empty()) {
    send_buffer_bytes_ += data.size();
    send_buffer_.push_back(std::move(data));
  }
  if (state_ == TcpState::kEstablished || state_ == TcpState::kCloseWait) {
    try_send_data();
  }
}

void TcpConnection::send_chain(std::span<const BufferSlice> chain) {
  if (state_ == TcpState::kClosed || fin_pending_ || fin_sent_) {
    throw std::logic_error("send on closed/closing TCP connection");
  }
  // Append the whole chain before pumping: segmentation then sees exactly
  // the byte stream a single contiguous send() would have produced.
  for (const auto& slice : chain) {
    if (slice.empty()) continue;
    send_buffer_bytes_ += slice.size();
    send_buffer_.push_back(slice);
  }
  if (state_ == TcpState::kEstablished || state_ == TcpState::kCloseWait) {
    try_send_data();
  }
}

void TcpConnection::close() {
  if (fin_pending_ || fin_sent_ || state_ == TcpState::kClosed) return;
  fin_pending_ = true;
  if (state_ == TcpState::kEstablished || state_ == TcpState::kCloseWait) {
    try_send_data();
    maybe_send_fin();
  }
}

void TcpConnection::abort() {
  if (state_ == TcpState::kClosed) return;
  TcpSegment seg;
  seg.src_port = local_port_;
  seg.dst_port = remote_.port;
  seg.rst = true;
  seg.ack_flag = true;
  seg.seq = snd_nxt_;
  seg.ack = rcv_nxt_;
  Packet packet;
  packet.src_node = host_.id();
  packet.dst_node = remote_.node;
  packet.body = std::move(seg);
  ++counters_.packets_sent;
  counters_.wire_bytes_sent += kIpHeaderBytes + kTcpHeaderBytes;
  counters_.header_bytes_sent += kIpHeaderBytes + kTcpHeaderBytes;
  host_.send_gated(std::move(packet));
  enter_closed();
}

void TcpConnection::send_segment(bool syn, bool fin, bool force_ack,
                                 BufferSlice payload, std::uint32_t seq) {
  TcpSegment seg;
  seg.src_port = local_port_;
  seg.dst_port = remote_.port;
  seg.seq = seq;
  seg.syn = syn;
  seg.fin = fin;
  // Everything after the initial SYN acknowledges received data.
  seg.ack_flag = force_ack || !(syn && state_ == TcpState::kSynSent);
  seg.ack = seg.ack_flag ? rcv_nxt_ : 0;
  seg.window = config_.receive_window;
  seg.options_len = syn ? kSynOptions
                        : (config_.timestamps ? kTimestampOptions : 0);
  seg.payload = std::move(payload);

  ++counters_.packets_sent;
  counters_.wire_bytes_sent += seg.wire_size();
  counters_.header_bytes_sent += seg.header_size();
  counters_.payload_bytes_sent += seg.payload.size();
  if (seg.is_pure_ack()) ++counters_.pure_acks_sent;

  if (seg.ack_flag) {
    // Any ACK-bearing segment satisfies the delayed-ACK obligation.
    segs_since_ack_ = 0;
    host_.loop().cancel(delayed_ack_timer_);
    delayed_ack_timer_ = EventId{};
  }

  Packet packet;
  packet.src_node = host_.id();
  packet.dst_node = remote_.node;
  packet.body = std::move(seg);
  host_.send_gated(std::move(packet));
}

void TcpConnection::send_ack() {
  send_segment(/*syn=*/false, /*fin=*/false, /*force_ack=*/true, {},
               snd_nxt_);
}

void TcpConnection::try_send_data() {
  if (state_ != TcpState::kEstablished && state_ != TcpState::kCloseWait) {
    return;
  }
  while (!send_buffer_.empty()) {
    const std::size_t window = std::min<std::size_t>(cwnd_, snd_wnd_);
    const std::size_t in_flight = flight_size();
    if (in_flight >= window) break;
    const std::size_t usable = window - in_flight;
    const std::size_t chunk =
        std::min({config_.mss, send_buffer_bytes_, usable});
    if (chunk == 0) break;
    BufferSlice payload = take_send_bytes(chunk);
    const std::uint32_t seq = snd_nxt_;
    inflight_.emplace(seq, payload);
    send_times_.emplace(seq, host_.loop().now());
    snd_nxt_ += static_cast<std::uint32_t>(chunk);
    send_segment(/*syn=*/false, /*fin=*/false, /*force_ack=*/true,
                 std::move(payload), seq);
  }
  if (!inflight_.empty() || fin_sent_) ensure_rto();
  maybe_send_fin();
}

BufferSlice TcpConnection::take_send_bytes(std::size_t chunk) {
  send_buffer_bytes_ -= chunk;
  BufferSlice& front = send_buffer_.front();
  if (front.size() > chunk) {
    // MSS boundary inside one queued slice: zero-copy split.
    BufferSlice out = front.subslice(0, chunk);
    front = front.subslice(chunk);
    return out;
  }
  if (front.size() == chunk) {
    BufferSlice out = std::move(front);
    send_buffer_.pop_front();
    return out;
  }
  // Segment spans queued slices (e.g. a TLS record boundary inside an MSS):
  // coalesce just these bytes so the segment payload stays contiguous.
  Bytes merged;
  merged.reserve(chunk);
  std::size_t needed = chunk;
  while (needed > 0) {
    BufferSlice& head = send_buffer_.front();
    const std::size_t take = std::min(head.size(), needed);
    merged.insert(merged.end(), head.begin(), head.begin() + take);
    needed -= take;
    if (take == head.size()) {
      send_buffer_.pop_front();
    } else {
      head = head.subslice(take);
    }
  }
  return BufferSlice{std::move(merged)};
}

void TcpConnection::maybe_send_fin() {
  if (!fin_pending_ || fin_sent_ || !send_buffer_.empty()) return;
  if (state_ != TcpState::kEstablished && state_ != TcpState::kCloseWait) {
    return;
  }
  fin_seq_ = snd_nxt_;
  fin_sent_ = true;
  fin_pending_ = false;
  snd_nxt_ += 1;  // FIN consumes one sequence number
  state_ = state_ == TcpState::kEstablished ? TcpState::kFinWait1
                                            : TcpState::kLastAck;
  send_segment(/*syn=*/false, /*fin=*/true, /*force_ack=*/true, {}, fin_seq_);
  ensure_rto();
}

void TcpConnection::update_rtt(TimeUs measured) {
  // RFC 6298.
  const double m = static_cast<double>(measured);
  if (srtt_ == 0.0) {
    srtt_ = m;
    rttvar_ = m / 2.0;
  } else {
    rttvar_ = 0.75 * rttvar_ + 0.25 * std::abs(srtt_ - m);
    srtt_ = 0.875 * srtt_ + 0.125 * m;
  }
  const double rto = srtt_ + std::max(1000.0, 4.0 * rttvar_);
  rto_ = std::clamp(static_cast<TimeUs>(rto), config_.rto_min,
                    config_.rto_max);
  rto_backoff_ = 0;
}

void TcpConnection::process_ack(const TcpSegment& seg) {
  if (!seg.ack_flag) return;
  snd_wnd_ = seg.window;
  const std::uint32_t ack = seg.ack;

  if (seq_gt(ack, snd_nxt_)) return;  // acks data we never sent; ignore

  if (seq_gt(ack, snd_una_)) {
    const std::uint32_t acked_bytes = ack - snd_una_;
    snd_una_ = ack;
    dup_acks_ = 0;
    // RFC 6298 (5.3): an ACK for new data restarts the retransmission
    // timer from the base RTO; the exponential backoff applies only to
    // consecutive expirations with no forward progress.
    rto_backoff_ = 0;
    rto_expirations_ = 0;

    // Retire fully acknowledged segments; sample RTT from any segment that
    // is now covered and was never retransmitted (Karn's rule: retransmits
    // have their send_times_ entries removed).
    for (auto it = inflight_.begin(); it != inflight_.end();) {
      const std::uint32_t end =
          it->first + static_cast<std::uint32_t>(it->second.size());
      if (seq_le(end, ack)) {
        const auto ts = send_times_.find(it->first);
        if (ts != send_times_.end()) {
          update_rtt(host_.loop().now() - ts->second);
          send_times_.erase(ts);
        }
        it = inflight_.erase(it);
      } else {
        ++it;
      }
    }

    // After a timeout, retransmission is ack-clocked (go-back-N): each ACK
    // that moves snd_una but leaves the recovery point uncovered triggers
    // the next hole immediately, instead of costing one full RTO per lost
    // segment.
    if (in_rto_recovery_) {
      if (seq_lt(snd_una_, recovery_point_) && !inflight_.empty()) {
        const auto first = inflight_.begin();
        send_times_.erase(first->first);  // Karn's rule
        ++counters_.retransmits;
        BufferSlice copy = first->second;  // refcount bump, no byte copy
        send_segment(false, false, true, std::move(copy), first->first);
      } else {
        in_rto_recovery_ = false;
      }
    }

    // Congestion control: slow start then additive increase.
    if (cwnd_ < ssthresh_) {
      cwnd_ += std::min<std::size_t>(acked_bytes, config_.mss);
    } else {
      cwnd_ += std::max<std::size_t>(1, config_.mss * config_.mss / cwnd_);
    }

    if (inflight_.empty() && (!fin_sent_ || seq_gt(ack, fin_seq_))) {
      disarm_rto();
    } else {
      arm_rto();
    }

    // FIN acknowledged?
    if (fin_sent_ && seq_gt(ack, fin_seq_)) {
      switch (state_) {
        case TcpState::kFinWait1:
          state_ = TcpState::kFinWait2;
          break;
        case TcpState::kClosing:
        case TcpState::kLastAck: {
          enter_closed();
          if (callbacks_.on_closed) callbacks_.on_closed();
          return;
        }
        default:
          break;
      }
    }
  } else if (ack == snd_una_ && !inflight_.empty() && seg.payload.empty() &&
             !seg.syn && !seg.fin) {
    // Duplicate ACK.
    if (++dup_acks_ == 3) {
      // Fast retransmit + simplified fast recovery.
      const auto first = inflight_.begin();
      ssthresh_ = std::max(flight_size() / 2, 2 * config_.mss);
      cwnd_ = ssthresh_;
      ++counters_.retransmits;
      send_times_.erase(first->first);
      BufferSlice copy = first->second;  // refcount bump, no byte copy
      send_segment(false, false, true, std::move(copy), first->first);
      arm_rto();
    }
  }
}

void TcpConnection::process_payload(const TcpSegment& seg) {
  const std::uint32_t seq = seg.seq;
  const auto len = static_cast<std::uint32_t>(seg.payload.size());
  bool advanced = false;

  if (len > 0) {
    if (seq == rcv_nxt_) {
      rcv_nxt_ += len;
      advanced = true;
      if (callbacks_.on_data) callbacks_.on_data(seg.payload);
      // Drain any now-contiguous out-of-order segments.
      for (auto it = out_of_order_.begin(); it != out_of_order_.end();) {
        if (it->first == rcv_nxt_) {
          rcv_nxt_ += static_cast<std::uint32_t>(it->second.size());
          if (callbacks_.on_data) callbacks_.on_data(it->second);
          it = out_of_order_.erase(it);
        } else if (seq_lt(it->first, rcv_nxt_)) {
          // Entirely duplicate data.
          it = out_of_order_.erase(it);
        } else {
          break;
        }
      }
    } else if (seq_gt(seq, rcv_nxt_)) {
      out_of_order_.emplace(seq, seg.payload);
      send_ack();  // immediate duplicate ACK signals the gap
      return;
    } else {
      // Old (retransmitted) data; ack immediately so the sender stops.
      send_ack();
      return;
    }
  }

  // FIN processing (only once contiguous with the stream).
  if (seg.fin && seq + len == rcv_nxt_ && !fin_received_) {
    fin_received_ = true;
    rcv_nxt_ += 1;
    advanced = true;
    switch (state_) {
      case TcpState::kEstablished:
        state_ = TcpState::kCloseWait;
        break;
      case TcpState::kFinWait1:
        // Our FIN is unacked: simultaneous close.
        state_ = TcpState::kClosing;
        break;
      case TcpState::kFinWait2: {
        send_ack();
        if (callbacks_.on_remote_closed) callbacks_.on_remote_closed();
        enter_closed();
        if (callbacks_.on_closed) callbacks_.on_closed();
        return;
      }
      default:
        break;
    }
    send_ack();
    if (callbacks_.on_remote_closed) callbacks_.on_remote_closed();
    return;
  }

  if (!advanced) return;

  // ACK policy for in-order data.
  ++segs_since_ack_;
  if (!config_.delayed_ack || segs_since_ack_ >= 2) {
    send_ack();
  } else {
    schedule_delayed_ack();
  }
}

void TcpConnection::schedule_delayed_ack() {
  if (delayed_ack_timer_.valid) return;
  std::weak_ptr<TcpConnection> weak = shared_from_this();
  delayed_ack_timer_ = host_.loop().schedule_in(
      config_.delayed_ack_timeout, [weak]() {
        if (auto self = weak.lock()) {
          self->delayed_ack_timer_ = EventId{};
          if (self->segs_since_ack_ > 0) self->send_ack();
        }
      });
}

void TcpConnection::ensure_rto() {
  // RFC 6298 (5.1): when data is sent and the timer is not already running,
  // start it -- but never restart a running timer. Restarting on every send
  // would let a steady stream of new writes (e.g. application-level retries
  // during an outage) postpone the retransmission deadline indefinitely.
  if (!rto_timer_) arm_rto();
}

void TcpConnection::arm_rto() {
  disarm_rto();
  if (state_ == TcpState::kClosed) return;
  std::weak_ptr<TcpConnection> weak = shared_from_this();
  const TimeUs timeout = rto_ << rto_backoff_;
  rto_timer_ = host_.loop().schedule_in(
      std::min(timeout, config_.rto_max), [weak]() {
        if (auto self = weak.lock()) {
          self->rto_timer_ = EventId{};
          self->on_rto();
        }
      });
}

void TcpConnection::disarm_rto() {
  host_.loop().cancel(rto_timer_);
  rto_timer_ = EventId{};
}

void TcpConnection::on_rto() {
  if (state_ == TcpState::kClosed) return;
  if (++rto_expirations_ > config_.max_retransmits) {
    // Too many consecutive timeouts with no forward progress: the path is
    // gone (or the peer re-addressed and our 5-tuple is black-holed). Give
    // up like Linux after tcp_retries2 — error the connection locally; no
    // RST is sent because nothing we transmit is getting through anyway.
    enter_closed();
    if (callbacks_.on_reset) callbacks_.on_reset();
    return;
  }
  ++counters_.retransmits;
  rto_backoff_ = std::min(rto_backoff_ + 1, 10);
  // Loss response: collapse the congestion window.
  ssthresh_ = std::max(flight_size() / 2, 2 * config_.mss);
  cwnd_ = config_.mss;
  dup_acks_ = 0;
  if (!inflight_.empty()) {
    in_rto_recovery_ = true;
    recovery_point_ = snd_nxt_;
  }

  if (state_ == TcpState::kSynSent) {
    send_segment(true, false, false, {}, iss_);
  } else if (state_ == TcpState::kSynReceived) {
    send_segment(true, false, true, {}, iss_);
  } else if (!inflight_.empty()) {
    const auto first = inflight_.begin();
    send_times_.erase(first->first);  // Karn's rule
    BufferSlice copy = first->second;  // refcount bump, no byte copy
    send_segment(false, false, true, std::move(copy), first->first);
  } else if (fin_sent_ && seq_le(snd_una_, fin_seq_)) {
    send_segment(false, true, true, {}, fin_seq_);
  }
  arm_rto();
}

void TcpConnection::on_segment(const TcpSegment& seg) {
  // Keep ourselves alive across callbacks that may drop the last reference.
  const auto self = shared_from_this();

  ++counters_.packets_received;
  counters_.wire_bytes_received += seg.wire_size();
  counters_.header_bytes_received += seg.header_size();
  counters_.payload_bytes_received += seg.payload.size();

  if (seg.rst) {
    enter_closed();
    if (callbacks_.on_reset) callbacks_.on_reset();
    return;
  }

  switch (state_) {
    case TcpState::kSynSent: {
      if (seg.syn && seg.ack_flag && seg.ack == snd_nxt_) {
        irs_ = seg.seq;
        rcv_nxt_ = seg.seq + 1;
        snd_una_ = seg.ack;
        snd_wnd_ = seg.window;
        state_ = TcpState::kEstablished;
        update_rtt(host_.loop().now() - syn_time_);  // handshake RTT sample
        disarm_rto();
        send_ack();  // completes the 3-way handshake
        if (callbacks_.on_connected) callbacks_.on_connected();
        try_send_data();
        maybe_send_fin();
      }
      return;
    }
    case TcpState::kSynReceived: {
      if (seg.ack_flag && seg.ack == snd_nxt_) {
        snd_una_ = seg.ack;
        snd_wnd_ = seg.window;
        state_ = TcpState::kEstablished;
        disarm_rto();
        if (accept_handler_) {
          accept_handler_(self);
          accept_handler_ = nullptr;
        }
        if (callbacks_.on_connected) callbacks_.on_connected();
        // The handshake ACK may carry data (TCP Fast Open style flows);
        // process it through the normal path.
        if (!seg.payload.empty() || seg.fin) process_payload(seg);
        try_send_data();
      } else if (seg.syn && !seg.ack_flag) {
        // Retransmitted SYN: resend SYN-ACK.
        send_segment(true, false, true, {}, iss_);
      }
      return;
    }
    case TcpState::kClosed:
      return;
    default:
      break;
  }

  process_ack(seg);
  if (state_ == TcpState::kClosed) return;  // ack completed a close
  process_payload(seg);
  if (state_ == TcpState::kClosed) return;
  try_send_data();
}

void TcpConnection::enter_closed() {
  state_ = TcpState::kClosed;
  disarm_rto();
  host_.loop().cancel(delayed_ack_timer_);
  delayed_ack_timer_ = EventId{};
  send_buffer_.clear();
  send_buffer_bytes_ = 0;
  inflight_.clear();
  send_times_.clear();
  out_of_order_.clear();
  host_.tcp_unregister(
      Host::TcpKey{local_port_, remote_.node, remote_.port});
}

}  // namespace dohperf::simnet
