#include "simnet/network.hpp"

#include <algorithm>
#include <stdexcept>

namespace dohperf::simnet {

Network::Network(EventLoop& loop, std::uint64_t seed)
    : loop_(loop), rng_(seed) {}

NodeId Network::add_node(std::string name) {
  node_names_.push_back(std::move(name));
  handlers_.emplace_back();
  return static_cast<NodeId>(node_names_.size() - 1);
}

const std::string& Network::node_name(NodeId id) const {
  return node_names_.at(id);
}

void Network::connect(NodeId a, NodeId b, const LinkConfig& config) {
  if (a >= node_names_.size() || b >= node_names_.size()) {
    throw std::logic_error("connect: unknown node");
  }
  if (a == b) throw std::logic_error("connect: self link");
  Channel fresh;
  fresh.config = config;
  channels_[{a, b}] = fresh;
  channels_[{b, a}] = fresh;
}

void Network::reconfigure(NodeId a, NodeId b, const LinkConfig& config) {
  auto* ab = find_channel(a, b);
  auto* ba = find_channel(b, a);
  if (ab == nullptr || ba == nullptr) {
    throw std::logic_error("reconfigure: no such link");
  }
  ab->config = config;
  ba->config = config;
}

void Network::inject_faults(NodeId a, NodeId b, FaultSchedule schedule) {
  auto* ab = find_channel(a, b);
  auto* ba = find_channel(b, a);
  if (ab == nullptr || ba == nullptr) {
    throw std::logic_error("inject_faults: no such link");
  }
  auto shared = schedule.empty()
                    ? nullptr
                    : std::make_shared<const FaultSchedule>(std::move(schedule));
  ab->faults = shared;
  ba->faults = shared;
}

void Network::set_handler(NodeId node, PacketHandler handler) {
  handlers_.at(node) = std::move(handler);
}

Network::Channel* Network::find_channel(NodeId from, NodeId to) {
  const auto it = channels_.find({from, to});
  return it == channels_.end() ? nullptr : &it->second;
}

void Network::send(Packet packet) {
  Channel* ch = find_channel(packet.src_node, packet.dst_node);
  if (ch == nullptr) {
    throw std::logic_error("send: no link " +
                           node_name(packet.src_node) + " -> " +
                           node_name(packet.dst_node));
  }
  ++packets_sent_;

  // Scheduled outage: the link is dead, everything offered to it drops.
  bool dropped = ch->faults && ch->faults->in_outage(loop_.now());
  if (dropped) ++fault_drops_;

  // Loss model: Gilbert–Elliott bursts when enabled, else static Bernoulli.
  if (!dropped) {
    double loss = ch->config.loss_rate;
    const GilbertElliott& ge = ch->config.gilbert_elliott;
    if (ge.enabled) {
      const double flip = ch->ge_bad ? ge.p_bad_to_good : ge.p_good_to_bad;
      if (rng_.next_double() < flip) ch->ge_bad = !ch->ge_bad;
      loss = ch->ge_bad ? ge.loss_bad : ge.loss_good;
    }
    dropped = loss > 0.0 && rng_.next_double() < loss;
  }

  for (auto* tap : taps_) tap->on_packet(loop_.now(), packet, dropped);
  if (dropped) {
    ++packets_dropped_;
    return;
  }

  // FIFO serialization at the sender, then propagation. An active throttle
  // caps the configured bandwidth; a latency spike stretches propagation.
  double bandwidth = ch->config.bandwidth_bps;
  TimeUs latency = ch->config.latency;
  if (ch->faults) {
    const double cap = ch->faults->bandwidth_cap(loop_.now());
    if (cap > 0.0 && (bandwidth == 0.0 || cap < bandwidth)) bandwidth = cap;
    latency += ch->faults->extra_latency(loop_.now());
  }
  TimeUs tx_time = 0;
  if (bandwidth > 0.0) {
    const double bits = static_cast<double>(packet.wire_size()) * 8.0;
    tx_time = from_sec(bits / bandwidth);
  }
  const TimeUs departure = std::max(loop_.now(), ch->busy_until) + tx_time;
  ch->busy_until = departure;
  const TimeUs arrival = departure + latency;

  const NodeId dst = packet.dst_node;
  auto deliver = [this, dst, p = std::move(packet)]() {
    auto& handler = handlers_.at(dst);
    if (handler) handler(p);
    // Packets to nodes without a handler are silently discarded, like a
    // host with no listener (no ICMP in this simulator).
  };
  // The simulator's hottest event: one per packet on the wire. It must fit
  // SmallFn's inline storage, or every delivery costs a heap allocation.
  static_assert(sizeof(deliver) <= SmallFn::kInlineSize,
                "packet delivery closure must not spill to the heap");
  loop_.schedule_at(arrival, std::move(deliver));
}

void Network::add_tap(PacketTap* tap) { taps_.push_back(tap); }

void Network::remove_tap(PacketTap* tap) {
  taps_.erase(std::remove(taps_.begin(), taps_.end(), tap), taps_.end());
}

}  // namespace dohperf::simnet
