// Packet tracing: a tap that records every packet with timestamps and can
// render a tcpdump-style text trace — the simulator's answer to the
// capture-based methodology the paper used for its byte accounting.
#pragma once

#include <string>
#include <vector>

#include "simnet/network.hpp"
#include "simnet/packet.hpp"

namespace dohperf::simnet {

struct TraceEntry {
  TimeUs when = 0;
  Packet packet;
  bool dropped = false;
};

class RecordingTap final : public PacketTap {
 public:
  /// Record everything, or only traffic touching `filter_node`.
  RecordingTap() = default;
  explicit RecordingTap(NodeId filter_node)
      : filtered_(true), node_(filter_node) {}

  void on_packet(TimeUs when, const Packet& packet, bool dropped) override;

  const std::vector<TraceEntry>& entries() const noexcept { return entries_; }
  std::size_t size() const noexcept { return entries_.size(); }
  void clear() noexcept { entries_.clear(); }

  /// Render as a tcpdump-like text listing, resolving node names via `net`:
  ///   12.345ms client:49152 > resolver:853 TCP SA seq=1 ack=2 len=0 (60B)
  std::string render(const Network& net) const;

  /// Machine-readable form of the same listing: a JSON array of entries
  ///   {"ts_us":..,"src":"client","src_port":..,"dst":..,"dst_port":..,
  ///    "proto":"tcp"|"udp","len":..,"wire":..,"dropped":bool,
  ///    "flags":"SA" (TCP only)}
  /// in capture order, deterministic across identically seeded runs.
  std::string to_json(const Network& net) const;

  /// Total wire bytes recorded (excluding dropped packets).
  std::uint64_t total_bytes() const noexcept;

  /// Wire bytes of packets the loss model discarded — kept separate so
  /// accounting summaries can report drops instead of silently losing them.
  std::uint64_t dropped_bytes() const noexcept;

 private:
  bool filtered_ = false;
  NodeId node_ = 0;
  std::vector<TraceEntry> entries_;
};

}  // namespace dohperf::simnet
