#include "simnet/trace.hpp"

#include <sstream>

namespace dohperf::simnet {

void RecordingTap::on_packet(TimeUs when, const Packet& packet,
                             bool dropped) {
  if (filtered_ && packet.src_node != node_ && packet.dst_node != node_) {
    return;
  }
  entries_.push_back(TraceEntry{when, packet, dropped});
}

std::uint64_t RecordingTap::total_bytes() const noexcept {
  std::uint64_t total = 0;
  for (const auto& e : entries_) {
    if (!e.dropped) total += e.packet.wire_size();
  }
  return total;
}

std::string RecordingTap::render(const Network& net) const {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(3);
  for (const auto& e : entries_) {
    os << to_ms(e.when) << "ms ";
    if (const auto* seg = std::get_if<TcpSegment>(&e.packet.body)) {
      os << net.node_name(e.packet.src_node) << ':' << seg->src_port << " > "
         << net.node_name(e.packet.dst_node) << ':' << seg->dst_port
         << " TCP " << seg->flags_string() << " seq=" << seg->seq
         << " ack=" << seg->ack << " len=" << seg->payload.size();
    } else {
      const auto& dgram = std::get<UdpDatagram>(e.packet.body);
      os << net.node_name(e.packet.src_node) << ':' << dgram.src_port
         << " > " << net.node_name(e.packet.dst_node) << ':'
         << dgram.dst_port << " UDP len=" << dgram.payload.size();
    }
    os << " (" << e.packet.wire_size() << "B)";
    if (e.dropped) os << " [DROPPED]";
    os << '\n';
  }
  return os.str();
}

}  // namespace dohperf::simnet
