#include "simnet/trace.hpp"

#include <sstream>

#include "dns/json_value.hpp"

namespace dohperf::simnet {

void RecordingTap::on_packet(TimeUs when, const Packet& packet,
                             bool dropped) {
  if (filtered_ && packet.src_node != node_ && packet.dst_node != node_) {
    return;
  }
  entries_.push_back(TraceEntry{when, packet, dropped});
}

std::uint64_t RecordingTap::total_bytes() const noexcept {
  std::uint64_t total = 0;
  for (const auto& e : entries_) {
    if (!e.dropped) total += e.packet.wire_size();
  }
  return total;
}

std::uint64_t RecordingTap::dropped_bytes() const noexcept {
  std::uint64_t total = 0;
  for (const auto& e : entries_) {
    if (e.dropped) total += e.packet.wire_size();
  }
  return total;
}

std::string RecordingTap::to_json(const Network& net) const {
  dns::JsonArray entries;
  entries.reserve(entries_.size());
  for (const auto& e : entries_) {
    dns::JsonObject o;
    o["ts_us"] = dns::JsonValue(static_cast<std::int64_t>(e.when));
    o["src"] = dns::JsonValue(net.node_name(e.packet.src_node));
    o["dst"] = dns::JsonValue(net.node_name(e.packet.dst_node));
    if (const auto* seg = std::get_if<TcpSegment>(&e.packet.body)) {
      o["proto"] = dns::JsonValue("tcp");
      o["src_port"] = dns::JsonValue(std::int64_t{seg->src_port});
      o["dst_port"] = dns::JsonValue(std::int64_t{seg->dst_port});
      o["flags"] = dns::JsonValue(seg->flags_string());
      o["len"] = dns::JsonValue(static_cast<std::int64_t>(seg->payload.size()));
    } else {
      const auto& dgram = std::get<UdpDatagram>(e.packet.body);
      o["proto"] = dns::JsonValue("udp");
      o["src_port"] = dns::JsonValue(std::int64_t{dgram.src_port});
      o["dst_port"] = dns::JsonValue(std::int64_t{dgram.dst_port});
      o["len"] =
          dns::JsonValue(static_cast<std::int64_t>(dgram.payload.size()));
    }
    o["wire"] = dns::JsonValue(static_cast<std::int64_t>(e.packet.wire_size()));
    o["dropped"] = dns::JsonValue(e.dropped);
    entries.push_back(dns::JsonValue(std::move(o)));
  }
  return dns::JsonValue(std::move(entries)).dump();
}

std::string RecordingTap::render(const Network& net) const {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(3);
  for (const auto& e : entries_) {
    os << to_ms(e.when) << "ms ";
    if (const auto* seg = std::get_if<TcpSegment>(&e.packet.body)) {
      os << net.node_name(e.packet.src_node) << ':' << seg->src_port << " > "
         << net.node_name(e.packet.dst_node) << ':' << seg->dst_port
         << " TCP " << seg->flags_string() << " seq=" << seg->seq
         << " ack=" << seg->ack << " len=" << seg->payload.size();
    } else {
      const auto& dgram = std::get<UdpDatagram>(e.packet.body);
      os << net.node_name(e.packet.src_node) << ':' << dgram.src_port
         << " > " << net.node_name(e.packet.dst_node) << ':'
         << dgram.dst_port << " UDP len=" << dgram.payload.size();
    }
    os << " (" << e.packet.wire_size() << "B)";
    if (e.dropped) os << " [DROPPED]";
    os << '\n';
  }
  return os.str();
}

}  // namespace dohperf::simnet
