#include "simnet/arena.hpp"

#include <bit>
#include <cstdlib>
#include <cstring>
#include <new>

namespace dohperf::simnet {

namespace detail {
constinit thread_local ShardMemory* tls_current_arena = nullptr;
constinit thread_local std::uint64_t tls_scope_global_allocs = 0;
}  // namespace detail

namespace {

// 16 bytes immediately below every user pointer; `owner == nullptr` marks a
// global-heap block. Implicit-lifetime aggregate so plain stores through
// the malloc'd bytes are well-formed without placement-new.
struct BlockHeader {
  ShardMemory* owner;
  std::uint32_t cls;
  std::uint32_t offset;  // user pointer minus raw allocation start
};
static_assert(sizeof(BlockHeader) == ShardMemory::kHeaderSize);
static_assert(alignof(BlockHeader) <= ShardMemory::kHeaderSize);

std::byte* align_up(std::byte* p, std::size_t align) {
  // detlint: allow(DET005) address used only for alignment math, never output
  const auto v = reinterpret_cast<std::uintptr_t>(p);
  const auto aligned = (v + align - 1) & ~(static_cast<std::uintptr_t>(align) - 1);
  return p + (aligned - v);
}

BlockHeader* header_of(void* user) {
  return reinterpret_cast<BlockHeader*>(static_cast<std::byte*>(user) -
                                        ShardMemory::kHeaderSize);
}

constexpr std::uint64_t kBumpKind = ~std::uint64_t{0};

}  // namespace

// Chunk header is 32 bytes so the payload stays 16-aligned on top of
// malloc's own 16-byte alignment.
struct ShardMemory::Chunk {
  Chunk* next;
  std::size_t payload_bytes;
  std::uint64_t kind;  // kBumpKind, or the size class of a slab chunk
  std::uint64_t reserved;

  std::byte* payload() { return reinterpret_cast<std::byte*>(this + 1); }
};
std::size_t ShardMemory::class_for(std::size_t total_bytes) {
  if (total_bytes <= kMinClassBytes) return 0;
  if (total_bytes > kMaxClassBytes) return kHugeClass;
  // 2^(p-1) < total <= 2^p with p >= 6; the half-step class 3*2^(p-2)
  // sits between them.
  const int p = std::bit_width(total_bytes - 1);
  const std::size_t mid = std::size_t{3} << (p - 2);
  if (total_bytes <= mid) return static_cast<std::size_t>(2 * p - 11);
  return static_cast<std::size_t>(2 * (p - 5));
}

std::size_t ShardMemory::class_bytes(std::size_t cls) {
  if (cls % 2 == 0) return std::size_t{1} << (5 + cls / 2);
  return std::size_t{3} << (4 + cls / 2);
}

ShardMemory* ShardMemory::create() {
  // detlint: allow(HYG002) self-owning arena factory; destroyed by release() or by the free of the last escaped block
  return new ShardMemory();
}

ShardMemory::ShardMemory() {
  static_assert(sizeof(Chunk) == 32, "chunk payload must stay 16-aligned");
}

ShardMemory::~ShardMemory() {
  Chunk* lists[2] = {bump_head_, slab_head_};
  for (Chunk* head : lists) {
    while (head != nullptr) {
      Chunk* next = head->next;
      std::free(head);
      head = next;
    }
  }
}

void ShardMemory::release() {
  released_ = true;
  maybe_self_destruct();
}

void ShardMemory::maybe_self_destruct() {
  if (live_ == 0 && released_) {
    // detlint: allow(HYG002) orphan lifetime: the arena owns itself until released and the last escaped block is freed
    delete this;
  }
}

auto ShardMemory::new_chunk(std::size_t payload_bytes, std::uint64_t kind)
    -> Chunk* {
  auto* chunk =
      static_cast<Chunk*>(std::malloc(sizeof(Chunk) + payload_bytes));
  if (chunk == nullptr) throw std::bad_alloc{};
  chunk->next = nullptr;
  chunk->payload_bytes = payload_bytes;
  chunk->kind = kind;
  chunk->reserved = 0;
  ++stats_.arena_chunks;
  stats_.arena_bytes += payload_bytes;
  ++detail::tls_scope_global_allocs;
  if (kind == kBumpKind) {
    if (bump_tail_ == nullptr) {
      bump_head_ = bump_tail_ = chunk;
    } else {
      bump_tail_->next = chunk;
      bump_tail_ = chunk;
    }
  } else {
    chunk->next = slab_head_;
    slab_head_ = chunk;
  }
  return chunk;
}

void* ShardMemory::bump_alloc(std::size_t cls) {
  const std::size_t bytes = class_bytes(cls);
  if (static_cast<std::size_t>(end_ - cur_) < bytes) {
    // The tail fragment of the active chunk is abandoned; chunks recycled
    // by reset() are walked in allocation order before any new one.
    Chunk* next = active_ != nullptr ? active_->next : nullptr;
    if (next == nullptr) next = new_chunk(kChunkPayload, kBumpKind);
    active_ = next;
    cur_ = next->payload();
    end_ = cur_ + next->payload_bytes;
  }
  void* raw = cur_;
  cur_ += bytes;
  return raw;
}

void* ShardMemory::slab_alloc(std::size_t cls) {
  Chunk* chunk = new_chunk(class_bytes(cls), cls);
  return chunk->payload();
}

// detlint: hot-loop
void* ShardMemory::allocate(std::size_t size, std::size_t align) {
  if (align < kHeaderSize) align = kHeaderSize;
  const std::size_t slack = align > kHeaderSize ? align : 0;
  const std::size_t total = size + kHeaderSize + slack;
  const std::size_t cls = class_for(total);
  if (cls == kHugeClass) {
    ++stats_.huge_allocs;
    ++detail::tls_scope_global_allocs;
    return detail::global_alloc(size, align);
  }
  void* raw = nullptr;
  FreeNode*& head = free_[cls];
  if (head != nullptr) {
    raw = head;
    head = head->next;
    ++stats_.freelist_hits;
  } else if (class_bytes(cls) <= kChunkPayload) {
    raw = bump_alloc(cls);
  } else {
    raw = slab_alloc(cls);
  }
  auto* base = static_cast<std::byte*>(raw);
  std::byte* user = align_up(base + kHeaderSize, align);
  BlockHeader* hdr = header_of(user);
  hdr->owner = this;
  hdr->cls = static_cast<std::uint32_t>(cls);
  hdr->offset = static_cast<std::uint32_t>(user - base);
  ++stats_.arena_allocs;
  ++live_;
  return user;
}

// detlint: hot-loop
void ShardMemory::deallocate(void* user) {
  if (user == nullptr) return;
  BlockHeader* hdr = header_of(user);
  ShardMemory* owner = hdr->owner;
  std::byte* raw = static_cast<std::byte*>(user) - hdr->offset;
  if (owner == nullptr) {
    std::free(raw);
    return;
  }
  owner->free_block(raw, hdr->cls);
}

void ShardMemory::free_block(void* raw, std::uint32_t cls) {
  auto* node = static_cast<FreeNode*>(raw);
  node->next = free_[cls];
  free_[cls] = node;
  --live_;
  maybe_self_destruct();
}

bool ShardMemory::reset() {
  if (live_ != 0) return false;
  for (FreeNode*& head : free_) head = nullptr;
  active_ = bump_head_;
  if (active_ != nullptr) {
    cur_ = active_->payload();
    end_ = cur_ + active_->payload_bytes;
  } else {
    cur_ = end_ = nullptr;
  }
  for (Chunk* chunk = slab_head_; chunk != nullptr; chunk = chunk->next) {
    auto* node = reinterpret_cast<FreeNode*>(chunk->payload());
    node->next = free_[chunk->kind];
    free_[chunk->kind] = node;
  }
  return true;
}

ShardMemoryStats ShardMemory::stats_snapshot() const {
  ShardMemoryStats out = stats_;
  out.live_blocks = live_;
  return out;
}

ShardMemory* ShardMemory::owner_of(const void* user) {
  const auto* hdr = reinterpret_cast<const BlockHeader*>(
      static_cast<const std::byte*>(user) - kHeaderSize);
  return hdr->owner;
}

namespace detail {

void* global_alloc(std::size_t size, std::size_t align) {
  if (align < ShardMemory::kHeaderSize) align = ShardMemory::kHeaderSize;
  const std::size_t slack = align > ShardMemory::kHeaderSize ? align : 0;
  void* raw = std::malloc(size + ShardMemory::kHeaderSize + slack);
  if (raw == nullptr) return nullptr;
  std::byte* user = align_up(static_cast<std::byte*>(raw) +
                                 ShardMemory::kHeaderSize,
                             align);
  BlockHeader* hdr = header_of(user);
  hdr->owner = nullptr;
  hdr->cls = static_cast<std::uint32_t>(ShardMemory::kHugeClass);
  hdr->offset =
      static_cast<std::uint32_t>(user - static_cast<std::byte*>(raw));
  return user;
}

}  // namespace detail

}  // namespace dohperf::simnet
