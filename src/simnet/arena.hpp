#pragma once
// Per-shard memory arena: the allocator behind the sharded benches.
//
// Motivation (see EXPERIMENTS.md "Performance"): every shard of a sharded
// bench performs millions of short-lived heap allocations (Bytes payloads,
// Packet queues, std::string DNS names, HTTP/2 frame scratch). Once a
// process has ever created a second thread, glibc malloc serves all of them
// through its locked path, so the sharded benches scaled *negatively* with
// `--jobs`. The fix is jemalloc-style: install a thread-private arena at the
// allocation boundary (replaced `operator new`/`delete`, see
// arena_hooks.cpp) instead of threading an allocator type through every
// call site. While a `MemoryScope` is active on a thread, all allocations
// on that thread are served from the shard's private `ShardMemory`; code
// above the boundary (EventLoop, Bytes/BufferSlice, Packet, TCP/TLS/HTTP-2
// frame assembly, DNS encode/decode, obs span pools) is untouched and
// byte-identical in behaviour.
//
// Design:
//   - Chunked bump allocation: 256 KiB chunks carved front-to-back, with
//     per-size-class intrusive freelists for recycling. Size classes are
//     powers of two plus half-steps (32 B, 48 B, 64 B, 96 B, ... 4 MiB);
//     anything larger is passed through to the global heap ("huge").
//   - Every block (arena or global) carries a 16-byte header just below
//     the user pointer: {owner arena (null => global heap), size class,
//     offset back to the raw allocation}. `deallocate()` routes on the
//     header, so frees need no thread-local state and escaped blocks can
//     be freed from any thread once a happens-before edge (thread join)
//     exists.
//   - Orphan lifetime: shard results (stats::Cdf vectors, obs::Registry
//     maps) legitimately escape the shard that allocated them. An arena
//     counts its live blocks; `release()` drops the creator reference and
//     the arena self-destructs only when the last escaped block is freed.
//   - `reset()` rewinds the bump cursor and rebuilds the freelists so one
//     worker can recycle a warm arena between shards without returning
//     chunks to the OS. Legal only with zero live blocks.
//
// Determinism: the arena changes where memory lives, never iteration order
// or contents — all sharded benches stay byte-identical across `--jobs`
// values and identical to pre-arena binaries at `--jobs 1` (CI enforces
// both with `cmp`).
#include <cstddef>
#include <cstdint>

namespace dohperf::simnet {

class ShardMemory;

namespace detail {
// POD thread-locals (zero-initialised, no dynamic init) so the replaced
// operator new in arena_hooks.cpp is safe before main() and during static
// destruction.
extern thread_local ShardMemory* tls_current_arena;
extern thread_local std::uint64_t tls_scope_global_allocs;

// Global-heap allocation with a routing header (owner = nullptr), used by
// the hooks whenever no arena scope is active and for huge blocks.
void* global_alloc(std::size_t size, std::size_t align);
}  // namespace detail

// Allocation accounting surfaced as the mem.* metric family (see the
// metric-name contract in EXPERIMENTS.md). `global_allocs` counts
// global-heap hits made while an arena scope was active (new chunks plus
// huge passthroughs); in shard steady state its per-shard delta must be 0.
struct ShardMemoryStats {
  std::uint64_t arena_bytes = 0;     // payload bytes reserved in chunks
  std::uint64_t arena_chunks = 0;    // chunks obtained from the global heap
  std::uint64_t arena_allocs = 0;    // allocations served by the arena
  std::uint64_t freelist_hits = 0;   // of those, served by recycling
  std::uint64_t huge_allocs = 0;     // above max class, global passthrough
  std::uint64_t live_blocks = 0;     // arena blocks not yet freed
  std::uint64_t global_allocs = 0;   // global-heap hits while scope active

  void accumulate(const ShardMemoryStats& other) {
    arena_bytes += other.arena_bytes;
    arena_chunks += other.arena_chunks;
    arena_allocs += other.arena_allocs;
    freelist_hits += other.freelist_hits;
    huge_allocs += other.huge_allocs;
    live_blocks += other.live_blocks;
    global_allocs += other.global_allocs;
  }
};

class ShardMemory {
 public:
  static constexpr std::size_t kHeaderSize = 16;
  static constexpr std::size_t kMinClassBytes = 32;
  static constexpr std::size_t kMaxClassBytes = std::size_t{4} << 20;
  static constexpr std::size_t kNumClasses = 35;
  static constexpr std::size_t kChunkPayload = std::size_t{256} << 10;
  static constexpr std::size_t kHugeClass = 0xFFFFFFFFu;

  // Heap-only lifetime: an arena may outlive the worker that made it (see
  // orphan lifetime above), so construction is factory + release, never a
  // stack object.
  static ShardMemory* create();

  // Drops the creator reference. The arena destructs immediately if no
  // blocks are live, else when the last escaped block is freed.
  void release();

  // Serve `size` user bytes at alignment `align` (power of two; <= 16 is
  // the no-padding fast path). Blocks above kMaxClassBytes total size go
  // to the global heap with a routing header.
  void* allocate(std::size_t size, std::size_t align);

  // Header-routed free for any pointer produced by allocate() or
  // detail::global_alloc(). Safe cross-thread once a join ordered the
  // allocating thread before the freeing one.
  static void deallocate(void* user);

  // Rewind for reuse between shards: rebuild freelists, point the bump
  // cursor back at the first chunk. Returns false (and does nothing) if
  // blocks are still live.
  bool reset();

  ShardMemoryStats stats() const { return stats_snapshot(); }

  // Exposed for tests and accounting.
  static std::size_t class_for(std::size_t total_bytes);
  static std::size_t class_bytes(std::size_t cls);
  static ShardMemory* owner_of(const void* user);

  ShardMemory(const ShardMemory&) = delete;
  ShardMemory& operator=(const ShardMemory&) = delete;

 private:
  ShardMemory();
  ~ShardMemory();

  struct Chunk;
  struct FreeNode {
    FreeNode* next;
  };

  void* bump_alloc(std::size_t cls);
  void* slab_alloc(std::size_t cls);
  Chunk* new_chunk(std::size_t payload_bytes, std::uint64_t kind);
  void free_block(void* raw, std::uint32_t cls);
  void maybe_self_destruct();
  ShardMemoryStats stats_snapshot() const;

  Chunk* bump_head_ = nullptr;   // uniform kChunkPayload chunks, in order
  Chunk* bump_tail_ = nullptr;
  Chunk* active_ = nullptr;      // bump cursor lives in this chunk
  std::byte* cur_ = nullptr;
  std::byte* end_ = nullptr;
  Chunk* slab_head_ = nullptr;   // one-block chunks for big classes
  FreeNode* free_[kNumClasses] = {};

  std::uint64_t live_ = 0;       // outstanding arena blocks
  bool released_ = false;        // creator reference dropped
  ShardMemoryStats stats_;

  friend struct ShardMemoryTestPeer;
};

// RAII: install an arena as the thread's current allocation target for the
// replaced operator new (no-op in binaries without arena_hooks.cpp, but
// the scope-active global-alloc counter still works there as zero).
class MemoryScope {
 public:
  explicit MemoryScope(ShardMemory& arena) : prev_(detail::tls_current_arena) {
    detail::tls_current_arena = &arena;
  }
  ~MemoryScope() { detail::tls_current_arena = prev_; }

  MemoryScope(const MemoryScope&) = delete;
  MemoryScope& operator=(const MemoryScope&) = delete;

 private:
  ShardMemory* prev_;
};

inline ShardMemory* current_arena() { return detail::tls_current_arena; }

// Monotone per-thread counter of global-heap hits made while an arena
// scope was active on this thread. Benches snapshot it around a shard to
// assert the steady-state hot path never touches the global heap.
inline std::uint64_t scope_global_allocs() {
  return detail::tls_scope_global_allocs;
}

}  // namespace dohperf::simnet
