// TCP over the simulated network: 3-way handshake, MSS segmentation,
// cumulative + delayed ACKs, retransmission (RTO per RFC 6298 + fast
// retransmit), slow start / congestion avoidance, and orderly FIN teardown.
//
// The implementation models everything the paper's byte/packet accounting
// depends on (header sizes, ack policy, handshake/teardown exchanges) while
// keeping the parts irrelevant to the experiments simple (no window scaling
// arithmetic beyond a fixed receive window, no SACK-based recovery).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <span>

#include "simnet/network.hpp"
#include "simnet/packet.hpp"

namespace dohperf::simnet {

class Host;

struct TcpConfig {
  std::size_t mss = 1460;
  std::size_t initial_cwnd_segments = 10;  ///< RFC 6928 IW10
  std::uint32_t receive_window = 65535;
  bool timestamps = true;      ///< adds 12 option bytes to non-SYN segments
  bool delayed_ack = true;     ///< ack every 2nd segment or after timeout
  TimeUs delayed_ack_timeout = ms(40);
  TimeUs rto_min = ms(200);
  TimeUs rto_initial = ms(1000);
  TimeUs rto_max = seconds(60);
  /// Consecutive RTO expirations before the connection gives up and errors
  /// out (on_reset), like Linux tcp_retries2. Without a cap a connection
  /// whose 5-tuple is permanently black-holed (e.g. the peer NAT-rebound to
  /// a new address) would retransmit forever and the event loop would never
  /// drain.
  int max_retransmits = 8;
};

struct TcpCounters {
  std::uint64_t packets_sent = 0;
  std::uint64_t packets_received = 0;
  std::uint64_t wire_bytes_sent = 0;       ///< incl. IP + TCP headers
  std::uint64_t wire_bytes_received = 0;
  std::uint64_t header_bytes_sent = 0;     ///< IP + TCP header portion only
  std::uint64_t header_bytes_received = 0;
  std::uint64_t payload_bytes_sent = 0;
  std::uint64_t payload_bytes_received = 0;
  std::uint64_t pure_acks_sent = 0;
  std::uint64_t retransmits = 0;

  /// Total wire bytes both directions — the per-resolution cost in Fig 3.
  std::uint64_t total_wire_bytes() const noexcept {
    return wire_bytes_sent + wire_bytes_received;
  }
  std::uint64_t total_packets() const noexcept {
    return packets_sent + packets_received;
  }
  /// Bytes attributable to the TCP/IP layer itself (Fig 5 "TCP" bar).
  std::uint64_t overhead_bytes() const noexcept {
    return header_bytes_sent + header_bytes_received;
  }
};

enum class TcpState {
  kClosed,
  kListen,
  kSynSent,
  kSynReceived,
  kEstablished,
  kFinWait1,
  kFinWait2,
  kCloseWait,
  kClosing,
  kLastAck,
};

const char* to_string(TcpState s) noexcept;

struct TcpCallbacks {
  std::function<void()> on_connected;
  std::function<void(std::span<const std::uint8_t>)> on_data;
  std::function<void()> on_remote_closed;  ///< peer sent FIN
  std::function<void()> on_closed;         ///< both directions closed
  std::function<void()> on_reset;          ///< connection reset
};

class TcpConnection : public std::enable_shared_from_this<TcpConnection> {
 public:
  /// Use Host::tcp_connect / Host::tcp_listen; this is internal.
  TcpConnection(Host& host, std::uint16_t local_port, Address remote,
                TcpConfig config, bool is_server);

  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  void set_callbacks(TcpCallbacks callbacks) {
    callbacks_ = std::move(callbacks);
  }

  /// Queue stream data for transmission. Valid from SYN_SENT onwards
  /// (data is held until the handshake completes). The slice is referenced,
  /// not copied: segmentation sends subslices of the caller's buffer.
  void send(BufferSlice data);

  /// Queue several slices as one logical write: all slices are appended to
  /// the send buffer before segmentation runs, so the wire segmentation is
  /// identical to sending one contiguous buffer with the same bytes.
  void send_chain(std::span<const BufferSlice> chain);

  /// Half-close: send FIN once all queued data has been transmitted.
  void close();

  /// Abortive close: send RST, drop all state.
  void abort();

  TcpState state() const noexcept { return state_; }
  bool established() const noexcept { return state_ == TcpState::kEstablished; }
  Address local() const noexcept;
  Address remote() const noexcept { return remote_; }

  const TcpCounters& counters() const noexcept { return counters_; }
  const TcpConfig& config() const noexcept { return config_; }

  /// Bytes currently queued but not yet sent (flow/congestion limited).
  std::size_t unsent() const noexcept { return send_buffer_bytes_; }

 private:
  friend class Host;

  void start_connect();                 ///< client: send SYN
  void handle_syn(const TcpSegment&);   ///< server: got SYN while LISTEN
  void on_segment(const TcpSegment& seg);

  void send_segment(bool syn, bool fin, bool force_ack, BufferSlice payload,
                    std::uint32_t seq);
  void send_ack();
  void try_send_data();
  /// Detach the next `chunk` bytes of the send buffer as one slice. A chunk
  /// inside a single queued slice is a zero-copy subslice; a chunk spanning
  /// queued slices is coalesced (copy) so segment payloads stay contiguous.
  BufferSlice take_send_bytes(std::size_t chunk);
  void maybe_send_fin();
  void process_ack(const TcpSegment& seg);
  void process_payload(const TcpSegment& seg);
  void schedule_delayed_ack();
  void arm_rto();
  /// Start the retransmission timer only if it is not already running
  /// (RFC 6298 rule 5.1 for newly sent data).
  void ensure_rto();
  void disarm_rto();
  void on_rto();
  void update_rtt(TimeUs measured);
  void enter_closed();
  std::size_t flight_size() const noexcept;

  Host& host_;
  std::uint16_t local_port_;
  Address remote_;
  TcpConfig config_;
  TcpCallbacks callbacks_;
  /// Server side only: invoked once the handshake completes so the listener
  /// can hand the connection to the application.
  std::function<void(std::shared_ptr<TcpConnection>)> accept_handler_;
  TcpState state_ = TcpState::kClosed;
  TcpCounters counters_;

  // --- send side -----------------------------------------------------------
  std::uint32_t iss_ = 0;       ///< initial send sequence
  std::uint32_t snd_una_ = 0;   ///< oldest unacknowledged
  std::uint32_t snd_nxt_ = 0;   ///< next to send
  std::uint32_t snd_wnd_ = 65535;
  std::deque<BufferSlice> send_buffer_;    ///< not yet segmented
  std::size_t send_buffer_bytes_ = 0;      ///< total bytes across slices
  /// Sent-but-unacked payload keyed by starting seq, for retransmission.
  /// Slices alias the sender's buffers, so a retransmit is a refcount bump.
  std::map<std::uint32_t, BufferSlice> inflight_;
  bool fin_pending_ = false;    ///< close() called, FIN not yet sent
  bool fin_sent_ = false;
  std::uint32_t fin_seq_ = 0;
  double srtt_ = 0.0;
  double rttvar_ = 0.0;
  TimeUs syn_time_ = 0;  ///< when our SYN left, for the handshake RTT sample
  TimeUs rto_;
  EventId rto_timer_;
  int rto_backoff_ = 0;
  /// Consecutive RTO expirations with no forward progress (reset whenever
  /// new data is acked); reaching config_.max_retransmits kills the
  /// connection.
  int rto_expirations_ = 0;
  /// Go-back-N state after a retransmission timeout: while snd_una has not
  /// yet reached the recovery point, every ACK for new data releases the
  /// next retransmission.
  bool in_rto_recovery_ = false;
  std::uint32_t recovery_point_ = 0;
  /// Send time of each in-flight segment for RTT sampling (Karn's rule:
  /// retransmitted segments are removed).
  std::map<std::uint32_t, TimeUs> send_times_;

  // --- congestion control ---------------------------------------------------
  std::size_t cwnd_ = 0;
  std::size_t ssthresh_ = 0;
  std::uint32_t dup_acks_ = 0;

  // --- receive side ----------------------------------------------------------
  std::uint32_t irs_ = 0;       ///< initial receive sequence
  std::uint32_t rcv_nxt_ = 0;
  std::map<std::uint32_t, BufferSlice> out_of_order_;
  std::uint32_t segs_since_ack_ = 0;
  EventId delayed_ack_timer_;
  bool fin_received_ = false;
};

/// Passive listener: accepts SYNs on a port and hands out connections.
class TcpListener {
 public:
  using AcceptHandler =
      std::function<void(std::shared_ptr<TcpConnection>)>;

  TcpListener(Host& host, std::uint16_t port, TcpConfig config,
              AcceptHandler on_accept)
      : host_(host), port_(port), config_(config),
        on_accept_(std::move(on_accept)) {}

  std::uint16_t port() const noexcept { return port_; }
  const TcpConfig& config() const noexcept { return config_; }

 private:
  friend class Host;
  Host& host_;
  std::uint16_t port_;
  TcpConfig config_;
  AcceptHandler on_accept_;
};

}  // namespace dohperf::simnet
