// Packets on the simulated wire. Header sizes follow IPv4 + UDP/TCP so that
// the byte and packet accounting in Figures 3-5 matches what tcpdump would
// report on a real link.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "dns/wire.hpp"  // Bytes
#include "simnet/buffer.hpp"
#include "simnet/time.hpp"

namespace dohperf::simnet {

using dns::Bytes;

/// Node identifier inside a Network.
using NodeId = std::uint32_t;

/// Transport endpoint: a (node, port) pair — the simulator's "IP:port".
struct Address {
  NodeId node = 0;
  std::uint16_t port = 0;

  bool operator==(const Address&) const = default;
  bool operator<(const Address& o) const noexcept {
    return node != o.node ? node < o.node : port < o.port;
  }
  std::string to_string() const;
};

constexpr std::size_t kIpHeaderBytes = 20;
constexpr std::size_t kUdpHeaderBytes = 8;
constexpr std::size_t kTcpHeaderBytes = 20;

struct UdpDatagram {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  Bytes payload;

  std::size_t wire_size() const noexcept {
    return kIpHeaderBytes + kUdpHeaderBytes + payload.size();
  }
};

struct TcpSegment {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  bool syn = false;
  bool ack_flag = false;
  bool fin = false;
  bool rst = false;
  std::uint32_t window = 0;
  /// TCP option bytes (MSS/SACK/wscale on SYN, timestamps on data segments).
  std::uint8_t options_len = 0;
  /// Zero-copy view of the sender's stream data: the same shared buffer the
  /// application materialized, never a per-segment copy.
  BufferSlice payload;

  std::size_t header_size() const noexcept {
    return kIpHeaderBytes + kTcpHeaderBytes + options_len;
  }
  std::size_t wire_size() const noexcept {
    return header_size() + payload.size();
  }
  bool is_pure_ack() const noexcept {
    return payload.empty() && !syn && !fin && !rst && ack_flag;
  }
  std::string flags_string() const;
};

struct Packet {
  NodeId src_node = 0;
  NodeId dst_node = 0;
  std::variant<UdpDatagram, TcpSegment> body;

  std::size_t wire_size() const;
  /// IP + transport header bytes only.
  std::size_t header_size() const;
  std::size_t payload_size() const;
  bool is_tcp() const noexcept {
    return std::holds_alternative<TcpSegment>(body);
  }
};

/// Observer interface for packet-level accounting (the simulator's
/// "tcpdump"). Taps see every packet put on a link, including ones that are
/// subsequently dropped by the loss model.
class PacketTap {
 public:
  virtual ~PacketTap() = default;
  /// `dropped` is true if the loss model discarded the packet.
  virtual void on_packet(TimeUs when, const Packet& packet, bool dropped) = 0;
};

/// A tap that counts packets and bytes, optionally filtered to one node pair.
class CountingTap : public PacketTap {
 public:
  CountingTap() = default;
  /// Count only packets between `a` and `b` (either direction).
  CountingTap(NodeId a, NodeId b) : filter_(true), a_(a), b_(b) {}

  void on_packet(TimeUs when, const Packet& packet, bool dropped) override;

  std::uint64_t packets() const noexcept { return packets_; }
  std::uint64_t bytes() const noexcept { return bytes_; }
  std::uint64_t header_bytes() const noexcept { return header_bytes_; }
  std::uint64_t dropped() const noexcept { return dropped_; }
  void reset() noexcept;

 private:
  bool filter_ = false;
  NodeId a_ = 0;
  NodeId b_ = 0;
  std::uint64_t packets_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t header_bytes_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace dohperf::simnet
