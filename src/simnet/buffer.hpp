// BufferSlice: an immutable, ref-counted view over a shared byte buffer.
//
// The zero-copy spine of the simulator: a response body (or any protocol
// payload) is materialized into a Bytes exactly once, wrapped in a
// BufferSlice, and every layer below — HTTP/2 DATA framing, TLS record
// fragmentation, TCP segmentation, the packet in flight, and the
// receiver's reassembly — works with subslices of that one allocation
// instead of copying the bytes at each crossing. Copying a slice bumps a
// reference count; subslicing adjusts an (offset, length) window.
//
// Slices are immutable by construction (the underlying Bytes is const), so
// aliasing is always safe: a retransmitted TCP segment and the original
// in-flight copy may view the same storage from different virtual times.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <utility>

#include "dns/wire.hpp"  // Bytes

namespace dohperf::simnet {

class BufferSlice {
 public:
  using Bytes = dns::Bytes;

  BufferSlice() noexcept = default;

  /// Materialize a buffer (implicit on purpose: every legacy call site that
  /// built a Bytes and sent it keeps compiling, now sharing instead of
  /// copying downstream).
  BufferSlice(Bytes bytes)  // NOLINT(google-explicit-constructor)
      : buffer_(std::make_shared<const Bytes>(std::move(bytes))),
        offset_(0), length_(static_cast<std::uint32_t>(buffer_->size())) {}

  BufferSlice(std::shared_ptr<const Bytes> buffer, std::size_t offset,
              std::size_t length) noexcept
      : buffer_(std::move(buffer)),
        offset_(static_cast<std::uint32_t>(offset)),
        length_(static_cast<std::uint32_t>(length)) {}

  /// A window into the same storage; never copies payload bytes.
  /// `length` is clamped to the slice end.
  BufferSlice subslice(std::size_t offset,
                       std::size_t length = SIZE_MAX) const noexcept {
    if (offset > length_) offset = length_;
    const std::size_t avail = length_ - offset;
    return BufferSlice{buffer_, offset_ + offset,
                       length < avail ? length : avail};
  }

  std::size_t size() const noexcept { return length_; }
  bool empty() const noexcept { return length_ == 0; }

  const std::uint8_t* data() const noexcept {
    return buffer_ ? buffer_->data() + offset_ : nullptr;
  }
  const std::uint8_t* begin() const noexcept { return data(); }
  const std::uint8_t* end() const noexcept { return data() + length_; }

  std::uint8_t operator[](std::size_t i) const noexcept {
    return *(data() + i);
  }

  operator std::span<const std::uint8_t>() const noexcept {  // NOLINT
    return {data(), length_};
  }
  std::span<const std::uint8_t> span() const noexcept {
    return {data(), length_};
  }

  /// Copy the viewed bytes into a fresh Bytes (the one deliberate copy).
  Bytes to_bytes() const { return Bytes(begin(), end()); }

  /// Number of slices sharing this storage (1 when sole owner, 0 when
  /// empty-default); test/diagnostic aid for refcount-lifetime assertions.
  long use_count() const noexcept { return buffer_.use_count(); }

  /// Content equality (byte-wise), not identity: two slices over different
  /// buffers with the same bytes are equal, matching Bytes semantics.
  friend bool operator==(const BufferSlice& a, const BufferSlice& b) noexcept {
    return std::equal(a.begin(), a.end(), b.begin(), b.end());
  }
  friend bool operator==(const BufferSlice& a, const Bytes& b) noexcept {
    return std::equal(a.begin(), a.end(), b.begin(), b.end());
  }
  friend bool operator==(const Bytes& a, const BufferSlice& b) noexcept {
    return b == a;
  }

 private:
  std::shared_ptr<const Bytes> buffer_;
  /// 32-bit window keeps a slice at 24 bytes — the same size as the Bytes
  /// it replaced, so packets (and the per-packet delivery closure, which
  /// must fit SmallFn's inline buffer) do not grow. Simulated payloads are
  /// bounded far below 4 GiB.
  std::uint32_t offset_ = 0;
  std::uint32_t length_ = 0;
};

static_assert(sizeof(BufferSlice) == sizeof(dns::Bytes),
              "a slice must not be bigger than the buffer it views");

/// Concatenate a chain of slices into one contiguous buffer. Used where a
/// logical multi-slice write must be flattened (rare slow paths that must
/// stay byte-identical to the historical contiguous-buffer behaviour).
inline dns::Bytes coalesce(std::span<const BufferSlice> chain) {
  std::size_t total = 0;
  for (const auto& s : chain) total += s.size();
  dns::Bytes out;
  out.reserve(total);
  for (const auto& s : chain) out.insert(out.end(), s.begin(), s.end());
  return out;
}

}  // namespace dohperf::simnet
