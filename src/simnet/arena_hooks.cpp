// Replaced global operator new/delete: the allocation boundary where the
// per-shard arena is installed (see arena.hpp). Compiled ONLY into the
// bench executables and the arena-hooks test — libraries, unit tests and
// examples keep the stock allocator, so nothing here can affect tier-1
// behaviour. While a MemoryScope is active on the calling thread every
// allocation is served from that shard's ShardMemory; otherwise a
// header-tagged global-heap block is returned. Frees route on the block
// header, never on thread state, so blocks may legally be freed on a
// different thread than they were allocated on (after a join) and during
// static destruction after main().
#include <cstdlib>
#include <new>

#include "simnet/arena.hpp"

namespace {

using dohperf::simnet::ShardMemory;

void* route_alloc(std::size_t size, std::size_t align) {
  if (size == 0) size = 1;
  ShardMemory* arena = dohperf::simnet::detail::tls_current_arena;
  if (arena != nullptr) return arena->allocate(size, align);
  return dohperf::simnet::detail::global_alloc(size, align);
}

void* route_alloc_or_throw(std::size_t size, std::size_t align) {
  void* p = route_alloc(size, align);
  if (p == nullptr) throw std::bad_alloc{};
  return p;
}

void* route_alloc_nothrow(std::size_t size, std::size_t align) noexcept {
  try {
    return route_alloc(size, align);
  } catch (...) {
    return nullptr;
  }
}

}  // namespace

void* operator new(std::size_t size) { return route_alloc_or_throw(size, 16); }

void* operator new[](std::size_t size) {
  return route_alloc_or_throw(size, 16);
}

void* operator new(std::size_t size, std::align_val_t align) {
  return route_alloc_or_throw(size, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return route_alloc_or_throw(size, static_cast<std::size_t>(align));
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return route_alloc_nothrow(size, 16);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return route_alloc_nothrow(size, 16);
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return route_alloc_nothrow(size, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return route_alloc_nothrow(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { ShardMemory::deallocate(p); }

void operator delete[](void* p) noexcept { ShardMemory::deallocate(p); }

void operator delete(void* p, std::size_t) noexcept {
  ShardMemory::deallocate(p);
}

void operator delete[](void* p, std::size_t) noexcept {
  ShardMemory::deallocate(p);
}

void operator delete(void* p, std::align_val_t) noexcept {
  ShardMemory::deallocate(p);
}

void operator delete[](void* p, std::align_val_t) noexcept {
  ShardMemory::deallocate(p);
}

void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  ShardMemory::deallocate(p);
}

void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  ShardMemory::deallocate(p);
}

void operator delete(void* p, const std::nothrow_t&) noexcept {
  ShardMemory::deallocate(p);
}

void operator delete[](void* p, const std::nothrow_t&) noexcept {
  ShardMemory::deallocate(p);
}
