// Deterministic fault injection for the simulated network.
//
// Two mechanisms, composable per link:
//   * Gilbert–Elliott bursty loss — a two-state Markov chain (good/bad)
//     advanced once per packet, replacing the static Bernoulli drop of
//     LinkConfig::loss_rate. Real access links lose packets in bursts
//     (fading, buffer overflow), which stresses connection-oriented DNS
//     transports very differently from independent drops.
//   * FaultSchedule — a list of timed link impairments (outage windows,
//     latency spikes, bandwidth throttling) evaluated against the virtual
//     clock. Schedules are plain data built either by hand or from a seeded
//     generator, so the same seed always yields the same chaos.
#pragma once

#include <cstdint>
#include <vector>

#include "simnet/time.hpp"

namespace dohperf::simnet {

/// Two-state Markov loss model. `enabled` keeps LinkConfig aggregate-
/// initializable without a sentinel; transition probabilities are applied
/// once per packet offered to the channel.
struct GilbertElliott {
  bool enabled = false;
  double p_good_to_bad = 0.0;  ///< per-packet P(good -> bad)
  double p_bad_to_good = 0.3;  ///< per-packet P(bad -> good)
  double loss_good = 0.0;      ///< drop probability while in "good"
  double loss_bad = 0.5;       ///< drop probability while in "bad"
};

enum class LinkFaultKind {
  kOutage,        ///< every packet offered during the window is dropped
  kLatencySpike,  ///< extra one-way latency during the window
  kThrottle,      ///< bandwidth capped during the window
};

const char* to_string(LinkFaultKind kind) noexcept;

/// One timed impairment over the half-open window [start, end).
struct LinkFault {
  LinkFaultKind kind = LinkFaultKind::kOutage;
  TimeUs start = 0;
  TimeUs end = 0;
  TimeUs extra_latency = 0;    ///< kLatencySpike only
  double bandwidth_bps = 0.0;  ///< kThrottle only; cap applied to the link
};

/// An immutable-once-attached collection of LinkFaults with point queries
/// against the virtual clock. Attach to a link via Network::inject_faults.
class FaultSchedule {
 public:
  FaultSchedule() = default;

  void add(LinkFault fault);
  void add_outage(TimeUs start, TimeUs duration);
  void add_latency_spike(TimeUs start, TimeUs duration, TimeUs extra);
  void add_throttle(TimeUs start, TimeUs duration, double bandwidth_bps);

  /// Seeded generator: outages of fixed `duration` whose gaps are
  /// exponential with mean `1/rate_per_sec`, laid out until `horizon`.
  /// The same seed always produces the same windows.
  static FaultSchedule random_outages(std::uint64_t seed,
                                      double rate_per_sec, TimeUs duration,
                                      TimeUs horizon);

  bool in_outage(TimeUs now) const noexcept;
  TimeUs extra_latency(TimeUs now) const noexcept;  ///< sum of active spikes
  /// Tightest bandwidth cap active at `now`; 0 when none.
  double bandwidth_cap(TimeUs now) const noexcept;

  const std::vector<LinkFault>& faults() const noexcept { return faults_; }
  bool empty() const noexcept { return faults_.empty(); }

 private:
  std::vector<LinkFault> faults_;
};

}  // namespace dohperf::simnet
