// Discrete-event scheduler over virtual time.
//
// Events scheduled for the same instant fire in schedule order (a strictly
// increasing sequence number breaks ties), which keeps multi-party protocol
// exchanges deterministic.
//
// Internally the queue is a binary min-heap of POD entries keyed by
// (when, seq), with callbacks held in a side slot table using SmallFn
// inline storage — the common timer/packet-delivery event allocates
// nothing. cancel() is O(1): it releases the slot and bumps its
// generation, leaving a tombstone in the heap that dispatch skips lazily;
// when tombstones outnumber live events the heap is compacted in one O(n)
// pass so cancel-heavy workloads (RTO/delayed-ACK churn) never inflate
// sift depth. The pop order is the total order (when, seq) — unique
// because seq never repeats — so neither lazy deletion nor compaction can
// reorder events, and seeded runs stay byte-identical to the previous
// std::map implementation.
//
// The hot path (schedule/cancel/step) is defined inline in this header
// with hand-rolled hole-insertion sifts: the comparator and the sift loops
// fold into the caller, which is worth ~2x on the schedule/fire
// microbench (see bench/micro_simcore.cpp) over out-of-line
// std::push_heap with a function-pointer comparator.
#pragma once

#include <cstdint>
#include <vector>

#include "simnet/small_fn.hpp"
#include "simnet/time.hpp"

namespace dohperf::simnet {

/// Handle for cancelling a scheduled event. Identifies a slot in the
/// loop's callback table plus the generation it was issued for, so a
/// handle kept past its event firing (or past a cancel) can never cancel
/// an unrelated later event that reuses the slot.
struct EventId {
  std::uint32_t slot = 0;
  std::uint32_t gen = 0;
  bool valid = false;

  explicit operator bool() const noexcept { return valid; }
};

class EventLoop {
 public:
  TimeUs now() const noexcept { return now_; }

  /// Schedule `fn` at absolute virtual time `when` (clamped to now()).
  EventId schedule_at(TimeUs when, SmallFn fn) {
    if (when < now_) when = now_;
    const std::uint32_t slot = acquire_slot(std::move(fn));
    sift_up(HeapEntry{when, next_seq_++, slot, slots_[slot].gen});
    return EventId{slot, slots_[slot].gen, true};
  }

  /// Schedule `fn` after `delay` microseconds.
  EventId schedule_in(TimeUs delay, SmallFn fn) {
    return schedule_at(delay > 0 ? now_ + delay : now_, std::move(fn));
  }

  /// Cancel a pending event; cancelling an already-fired or invalid id is
  /// a harmless no-op. O(1): the heap entry stays behind as a tombstone.
  // detlint: hot-loop
  void cancel(const EventId& id) {
    if (!id.valid || id.slot >= slots_.size()) return;
    const Slot& slot = slots_[id.slot];
    if (!slot.live || slot.gen != id.gen) return;  // already fired/cancelled
    release_slot(id.slot);
    // Lazy deletion keeps cancel O(1), but unfired far-future tombstones
    // (a cancelled RTO is typically rescheduled long before it fires)
    // would otherwise pile up and deepen every sift. Compact once they
    // outnumber live events.
    if (heap_.size() > 64 && heap_.size() - live_ > live_) compact();
  }

  /// Run until no events remain. Returns the final virtual time.
  TimeUs run() {
    while (step()) {
    }
    return now_;
  }

  /// Run events with time <= deadline; leaves later events pending.
  /// Virtual time advances to `deadline` even if the queue drains early.
  void run_until(TimeUs deadline);

  /// Execute exactly one event if any is pending; returns false when idle.
  // detlint: hot-loop
  bool step() {
    for (;;) {
      if (heap_.empty()) return false;
      const HeapEntry top = heap_[0];
      pop_root();
      Slot& slot = slots_[top.slot];
      if (!slot.live || slot.gen != top.gen) continue;  // tombstone
      now_ = top.when;
      // Move the callback out and release the slot *before* invoking: the
      // callback may schedule new events (growing slots_) or cancel others.
      SmallFn fn = std::move(slot.fn);
      release_slot(top.slot);
      ++executed_;
      fn();
      return true;
    }
  }

  /// Number of live (scheduled and not yet fired or cancelled) events.
  /// Cancelled-but-unpopped tombstones are not counted.
  std::size_t pending() const noexcept { return live_; }

  /// Total number of events executed (useful for test assertions and for
  /// detecting runaway protocol loops).
  std::uint64_t executed() const noexcept { return executed_; }

 private:
  /// Heap node: POD, ordered by (when, seq). `slot`/`gen` locate the
  /// callback; a stale `gen` marks a tombstone.
  struct HeapEntry {
    TimeUs when;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;
  };

  static constexpr std::uint32_t kNoSlot = 0xffffffffu;

  struct Slot {
    SmallFn fn;
    std::uint32_t gen = 0;
    std::uint32_t next_free = kNoSlot;
    bool live = false;
  };

  static bool before(const HeapEntry& a, const HeapEntry& b) noexcept {
    return a.when != b.when ? a.when < b.when : a.seq < b.seq;
  }

  /// Append `entry` and restore the heap property (hole insertion: parents
  /// slide down into the hole, one store each, no swaps).
  // detlint: hot-loop
  void sift_up(HeapEntry entry) {
    std::size_t hole = heap_.size();
    // detlint: allow(CONC006) amortised growth; compact() bounds the heap so steady state stays in capacity
    heap_.push_back(entry);  // reserve the space; overwritten below
    while (hole > 0) {
      const std::size_t parent = (hole - 1) / 2;
      if (!before(entry, heap_[parent])) break;
      heap_[hole] = heap_[parent];
      hole = parent;
    }
    heap_[hole] = entry;
  }

  /// Sink `entry` from `hole` to its place (hole insertion, as above).
  // detlint: hot-loop
  void sift_down(std::size_t hole, HeapEntry entry) {
    const std::size_t size = heap_.size();
    for (;;) {
      std::size_t child = 2 * hole + 1;
      if (child >= size) break;
      if (child + 1 < size && before(heap_[child + 1], heap_[child])) {
        ++child;
      }
      if (!before(heap_[child], entry)) break;
      heap_[hole] = heap_[child];
      hole = child;
    }
    heap_[hole] = entry;
  }

  /// Remove heap_[0], refilling the hole with the last entry sifted down.
  void pop_root() {
    const HeapEntry last = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0, last);
  }

  std::uint32_t acquire_slot(SmallFn&& fn) {
    std::uint32_t index;
    if (free_head_ != kNoSlot) {
      index = free_head_;
      Slot& slot = slots_[index];
      free_head_ = slot.next_free;
      slot.next_free = kNoSlot;
      slot.fn = std::move(fn);
      slot.live = true;
    } else {
      index = static_cast<std::uint32_t>(slots_.size());
      slots_.push_back(Slot{std::move(fn), 0, kNoSlot, true});
    }
    ++live_;
    return index;
  }

  void release_slot(std::uint32_t index) {
    Slot& slot = slots_[index];
    slot.fn = SmallFn{};
    slot.live = false;
    ++slot.gen;  // invalidate outstanding EventIds and heap tombstones
    slot.next_free = free_head_;
    free_head_ = index;
    --live_;
  }

  /// Drop every tombstone and rebuild the heap in one O(n) pass.
  void compact();
  /// Pop tombstones so heap_.front() (if any) is a live event.
  void prune();

  TimeUs now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::size_t live_ = 0;
  std::vector<HeapEntry> heap_;
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNoSlot;
};

}  // namespace dohperf::simnet
