// Discrete-event scheduler over virtual time.
//
// Events scheduled for the same instant fire in schedule order (a strictly
// increasing sequence number breaks ties), which keeps multi-party protocol
// exchanges deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <utility>

#include "simnet/time.hpp"

namespace dohperf::simnet {

/// Handle for cancelling a scheduled event.
struct EventId {
  TimeUs when = 0;
  std::uint64_t seq = 0;
  bool valid = false;

  explicit operator bool() const noexcept { return valid; }
};

class EventLoop {
 public:
  TimeUs now() const noexcept { return now_; }

  /// Schedule `fn` at absolute virtual time `when` (clamped to now()).
  EventId schedule_at(TimeUs when, std::function<void()> fn);

  /// Schedule `fn` after `delay` microseconds.
  EventId schedule_in(TimeUs delay, std::function<void()> fn);

  /// Cancel a pending event; cancelling an already-fired or invalid id is a
  /// harmless no-op.
  void cancel(const EventId& id);

  /// Run until no events remain. Returns the final virtual time.
  TimeUs run();

  /// Run events with time <= deadline; leaves later events pending.
  /// Virtual time advances to `deadline` even if the queue drains early.
  void run_until(TimeUs deadline);

  /// Execute exactly one event if any is pending; returns false when idle.
  bool step();

  std::size_t pending() const noexcept { return queue_.size(); }

  /// Total number of events executed (useful for test assertions and for
  /// detecting runaway protocol loops).
  std::uint64_t executed() const noexcept { return executed_; }

 private:
  using Key = std::pair<TimeUs, std::uint64_t>;

  TimeUs now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::map<Key, std::function<void()>> queue_;
};

}  // namespace dohperf::simnet
