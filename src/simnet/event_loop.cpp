#include "simnet/event_loop.hpp"

#include <algorithm>

namespace dohperf::simnet {

void EventLoop::compact() {
  heap_.erase(std::remove_if(heap_.begin(), heap_.end(),
                             [this](const HeapEntry& e) {
                               const Slot& slot = slots_[e.slot];
                               return !slot.live || slot.gen != e.gen;
                             }),
              heap_.end());
  // Floyd heapify: sift every internal node down, deepest first.
  if (heap_.size() > 1) {
    for (std::size_t i = (heap_.size() - 2) / 2 + 1; i-- > 0;) {
      sift_down(i, heap_[i]);
    }
  }
}

void EventLoop::prune() {
  while (!heap_.empty()) {
    const HeapEntry& top = heap_.front();
    const Slot& slot = slots_[top.slot];
    if (slot.live && slot.gen == top.gen) return;
    pop_root();
  }
}

void EventLoop::run_until(TimeUs deadline) {
  for (;;) {
    prune();
    if (heap_.empty() || heap_.front().when > deadline) break;
    step();
  }
  now_ = std::max(now_, deadline);
}

}  // namespace dohperf::simnet
