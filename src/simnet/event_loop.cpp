#include "simnet/event_loop.hpp"

#include <algorithm>

namespace dohperf::simnet {

EventId EventLoop::schedule_at(TimeUs when, std::function<void()> fn) {
  when = std::max(when, now_);
  const Key key{when, next_seq_++};
  queue_.emplace(key, std::move(fn));
  return EventId{key.first, key.second, true};
}

EventId EventLoop::schedule_in(TimeUs delay, std::function<void()> fn) {
  return schedule_at(now_ + std::max<TimeUs>(delay, 0), std::move(fn));
}

void EventLoop::cancel(const EventId& id) {
  if (!id.valid) return;
  queue_.erase(Key{id.when, id.seq});
}

bool EventLoop::step() {
  if (queue_.empty()) return false;
  auto it = queue_.begin();
  now_ = it->first.first;
  auto fn = std::move(it->second);
  queue_.erase(it);
  ++executed_;
  fn();
  return true;
}

TimeUs EventLoop::run() {
  while (step()) {
  }
  return now_;
}

void EventLoop::run_until(TimeUs deadline) {
  while (!queue_.empty() && queue_.begin()->first.first <= deadline) {
    step();
  }
  now_ = std::max(now_, deadline);
}

}  // namespace dohperf::simnet
