#include "simnet/packet.hpp"

#include <sstream>

namespace dohperf::simnet {

std::string Address::to_string() const {
  std::ostringstream os;
  os << "n" << node << ":" << port;
  return os.str();
}

std::string TcpSegment::flags_string() const {
  std::string s;
  if (syn) s += 'S';
  if (fin) s += 'F';
  if (rst) s += 'R';
  if (ack_flag) s += 'A';
  if (s.empty()) s = ".";
  return s;
}

std::size_t Packet::wire_size() const {
  return std::visit([](const auto& b) { return b.wire_size(); }, body);
}

std::size_t Packet::header_size() const {
  if (const auto* seg = std::get_if<TcpSegment>(&body)) {
    return seg->header_size();
  }
  return kIpHeaderBytes + kUdpHeaderBytes;
}

std::size_t Packet::payload_size() const {
  return std::visit([](const auto& b) { return b.payload.size(); }, body);
}

void CountingTap::on_packet(TimeUs /*when*/, const Packet& packet,
                            bool dropped) {
  if (filter_) {
    const bool match = (packet.src_node == a_ && packet.dst_node == b_) ||
                       (packet.src_node == b_ && packet.dst_node == a_);
    if (!match) return;
  }
  if (dropped) {
    ++dropped_;
    return;
  }
  ++packets_;
  bytes_ += packet.wire_size();
  header_bytes_ += packet.header_size();
}

void CountingTap::reset() noexcept {
  packets_ = 0;
  bytes_ = 0;
  header_bytes_ = 0;
  dropped_ = 0;
}

}  // namespace dohperf::simnet
