#include "simnet/fault.hpp"

#include <cmath>

#include "stats/rng.hpp"

namespace dohperf::simnet {

const char* to_string(LinkFaultKind kind) noexcept {
  switch (kind) {
    case LinkFaultKind::kOutage: return "outage";
    case LinkFaultKind::kLatencySpike: return "latency-spike";
    case LinkFaultKind::kThrottle: return "throttle";
  }
  return "?";
}

void FaultSchedule::add(LinkFault fault) { faults_.push_back(fault); }

void FaultSchedule::add_outage(TimeUs start, TimeUs duration) {
  add({LinkFaultKind::kOutage, start, start + duration, 0, 0.0});
}

void FaultSchedule::add_latency_spike(TimeUs start, TimeUs duration,
                                      TimeUs extra) {
  add({LinkFaultKind::kLatencySpike, start, start + duration, extra, 0.0});
}

void FaultSchedule::add_throttle(TimeUs start, TimeUs duration,
                                 double bandwidth_bps) {
  add({LinkFaultKind::kThrottle, start, start + duration, 0, bandwidth_bps});
}

FaultSchedule FaultSchedule::random_outages(std::uint64_t seed,
                                            double rate_per_sec,
                                            TimeUs duration, TimeUs horizon) {
  FaultSchedule schedule;
  stats::SplitMix64 rng(seed);
  TimeUs at = 0;
  while (true) {
    // Exponential gap, inverse-CDF on a uniform draw (1 - u avoids log(0)).
    const double gap_sec = -std::log(1.0 - rng.next_double()) / rate_per_sec;
    at += from_sec(gap_sec);
    if (at >= horizon) break;
    schedule.add_outage(at, duration);
    at += duration;
  }
  return schedule;
}

bool FaultSchedule::in_outage(TimeUs now) const noexcept {
  for (const auto& f : faults_) {
    if (f.kind == LinkFaultKind::kOutage && now >= f.start && now < f.end) {
      return true;
    }
  }
  return false;
}

TimeUs FaultSchedule::extra_latency(TimeUs now) const noexcept {
  TimeUs extra = 0;
  for (const auto& f : faults_) {
    if (f.kind == LinkFaultKind::kLatencySpike && now >= f.start &&
        now < f.end) {
      extra += f.extra_latency;
    }
  }
  return extra;
}

double FaultSchedule::bandwidth_cap(TimeUs now) const noexcept {
  double cap = 0.0;
  for (const auto& f : faults_) {
    if (f.kind == LinkFaultKind::kThrottle && now >= f.start && now < f.end &&
        f.bandwidth_bps > 0.0 && (cap == 0.0 || f.bandwidth_bps < cap)) {
      cap = f.bandwidth_bps;
    }
  }
  return cap;
}

}  // namespace dohperf::simnet
