// The network fabric: nodes joined by point-to-point links with one-way
// latency, finite bandwidth (with FIFO queueing) and loss — static
// Bernoulli or bursty Gilbert–Elliott — plus scheduled impairments
// (outages, latency spikes, throttling) via an attached FaultSchedule.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "simnet/event_loop.hpp"
#include "simnet/fault.hpp"
#include "simnet/packet.hpp"
#include "stats/rng.hpp"

namespace dohperf::simnet {

struct LinkConfig {
  TimeUs latency = ms(1);        ///< one-way propagation delay
  double bandwidth_bps = 0.0;    ///< bits per second; 0 = infinite
  double loss_rate = 0.0;        ///< per-packet Bernoulli drop probability
  /// Bursty loss; when enabled it replaces `loss_rate`.
  GilbertElliott gilbert_elliott;
};

/// Receives packets addressed to a node. Hosts register themselves here.
using PacketHandler = std::function<void(const Packet&)>;

class Network {
 public:
  Network(EventLoop& loop, std::uint64_t seed = 1);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  EventLoop& loop() noexcept { return loop_; }

  /// Create a node; the returned id indexes all subsequent calls.
  NodeId add_node(std::string name);

  const std::string& node_name(NodeId id) const;
  std::size_t node_count() const noexcept { return node_names_.size(); }

  /// Create a bidirectional link between `a` and `b` (two independent
  /// unidirectional channels with the same configuration).
  void connect(NodeId a, NodeId b, const LinkConfig& config);

  /// Replace the config of an existing link (both directions).
  void reconfigure(NodeId a, NodeId b, const LinkConfig& config);

  /// Register the packet dispatcher for a node (done by Host).
  void set_handler(NodeId node, PacketHandler handler);

  /// Transmit a packet; throws std::logic_error if no link exists between
  /// the packet's endpoints.
  void send(Packet packet);

  /// Attach a fault schedule to the link between `a` and `b` (shared by
  /// both directions). Replaces any previously injected schedule; an empty
  /// schedule clears it. Throws std::logic_error if no link exists.
  void inject_faults(NodeId a, NodeId b, FaultSchedule schedule);

  /// Attach a tap observing every packet on every link. Not owned.
  void add_tap(PacketTap* tap);
  void remove_tap(PacketTap* tap);

  std::uint64_t packets_sent() const noexcept { return packets_sent_; }
  std::uint64_t packets_dropped() const noexcept { return packets_dropped_; }
  /// Subset of packets_dropped() caused by scheduled outage windows.
  std::uint64_t fault_drops() const noexcept { return fault_drops_; }

 private:
  struct Channel {
    LinkConfig config;
    TimeUs busy_until = 0;  ///< FIFO serialization point
    bool ge_bad = false;    ///< Gilbert–Elliott state, advanced per packet
    std::shared_ptr<const FaultSchedule> faults;  ///< may be null
  };

  Channel* find_channel(NodeId from, NodeId to);

  EventLoop& loop_;
  stats::SplitMix64 rng_;
  std::vector<std::string> node_names_;
  std::vector<PacketHandler> handlers_;
  std::map<std::pair<NodeId, NodeId>, Channel> channels_;
  std::vector<PacketTap*> taps_;
  std::uint64_t packets_sent_ = 0;
  std::uint64_t packets_dropped_ = 0;
  std::uint64_t fault_drops_ = 0;
};

}  // namespace dohperf::simnet
