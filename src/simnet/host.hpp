// A host: one node of the network with a port space for UDP sockets and
// TCP connections/listeners, plus the demultiplexing glue between them.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "simnet/network.hpp"
#include "simnet/tcp.hpp"
#include "simnet/udp.hpp"

namespace dohperf::simnet {

class Host {
 public:
  Host(Network& net, std::string name);
  ~Host();

  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  NodeId id() const noexcept { return id_; }
  Network& network() noexcept { return net_; }
  EventLoop& loop() noexcept { return net_.loop(); }
  const std::string& name() const;

  // --- UDP -------------------------------------------------------------------
  /// Open a UDP socket; port 0 picks an ephemeral port. Throws if the port
  /// is already bound.
  UdpSocket& udp_open(std::uint16_t port = 0);
  void udp_close(UdpSocket& socket);

  // --- TCP -------------------------------------------------------------------
  /// Start listening; incoming connections are delivered via `on_accept`
  /// once their handshake completes.
  TcpListener& tcp_listen(std::uint16_t port, TcpListener::AcceptHandler on_accept,
                          TcpConfig config = {});
  void tcp_stop_listening(std::uint16_t port);

  /// Open an active connection; callbacks may be set on the returned
  /// connection before any event fires (the SYN leaves on the next loop
  /// event).
  std::shared_ptr<TcpConnection> tcp_connect(const Address& remote,
                                             TcpConfig config = {});

  /// Abort (RST) every TCP connection whose local port is `port`,
  /// including half-open ones still completing their handshake. Models a
  /// server process crash, where the kernel resets all of its sockets.
  void tcp_reset_port(std::uint16_t port);

  /// Number of live TCP connections (for leak-checking in tests).
  std::size_t tcp_connection_count() const noexcept { return tcp_conns_.size(); }

 private:
  friend class TcpConnection;
  friend class UdpSocket;

  using TcpKey = std::tuple<std::uint16_t, NodeId, std::uint16_t>;

  void dispatch(const Packet& packet);
  void dispatch_tcp(const TcpSegment& seg, NodeId from);
  void send_rst(const TcpSegment& offending, NodeId to);
  std::uint16_t allocate_ephemeral();
  void tcp_unregister(const TcpKey& key);

  Network& net_;
  NodeId id_;
  std::map<std::uint16_t, std::unique_ptr<UdpSocket>> udp_ports_;
  std::map<std::uint16_t, std::unique_ptr<TcpListener>> tcp_listeners_;
  std::map<TcpKey, std::shared_ptr<TcpConnection>> tcp_conns_;
  std::uint16_t next_ephemeral_ = 49152;
};

}  // namespace dohperf::simnet
