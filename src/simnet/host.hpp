// A host: one node of the network with a port space for UDP sockets and
// TCP connections/listeners, plus the demultiplexing glue between them.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "simnet/netchange.hpp"
#include "simnet/network.hpp"
#include "simnet/tcp.hpp"
#include "simnet/udp.hpp"

namespace dohperf::simnet {

class Host {
 public:
  Host(Network& net, std::string name);
  ~Host();

  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  NodeId id() const noexcept { return id_; }
  Network& network() noexcept { return net_; }
  EventLoop& loop() noexcept { return net_.loop(); }
  const std::string& name() const;

  // --- UDP -------------------------------------------------------------------
  /// Open a UDP socket; port 0 picks an ephemeral port. Throws if the port
  /// is already bound.
  UdpSocket& udp_open(std::uint16_t port = 0);
  void udp_close(UdpSocket& socket);

  // --- TCP -------------------------------------------------------------------
  /// Start listening; incoming connections are delivered via `on_accept`
  /// once their handshake completes.
  TcpListener& tcp_listen(std::uint16_t port, TcpListener::AcceptHandler on_accept,
                          TcpConfig config = {});
  void tcp_stop_listening(std::uint16_t port);

  /// Open an active connection; callbacks may be set on the returned
  /// connection before any event fires (the SYN leaves on the next loop
  /// event).
  std::shared_ptr<TcpConnection> tcp_connect(const Address& remote,
                                             TcpConfig config = {});

  /// Abort (RST) every TCP connection whose local port is `port`,
  /// including half-open ones still completing their handshake. Models a
  /// server process crash, where the kernel resets all of its sockets.
  void tcp_reset_port(std::uint16_t port);

  /// Number of live TCP connections (for leak-checking in tests).
  std::size_t tcp_connection_count() const noexcept { return tcp_conns_.size(); }

  // --- Network changes (mobility) --------------------------------------------
  /// NAT re-addressing: every UDP socket is silently re-ported (the socket
  /// object survives; in-flight replies to the old port are dropped) and
  /// every established TCP 5-tuple dies — black-holed when `rst_old_flows`
  /// is false (silent NAT: packets vanish both ways), reset when true
  /// (RST-ing middlebox: each connection sees an immediate RST). The OS is
  /// not notified — rebinds are invisible until traffic stalls.
  void rebind(bool rst_old_flows = false);

  /// Hard interface flap. While down, nothing leaves or enters the host.
  /// Coming back up re-addresses (silent rebind) and notifies listeners
  /// with kFlap — the one churn event the OS *does* surface.
  void interface_down();
  void interface_up();
  bool interface_is_up() const noexcept { return if_up_; }

  /// Monotone counter bumped on every re-addressing (rebind or flap-up);
  /// lets clients cheaply detect "the path changed under me".
  std::uint64_t address_generation() const noexcept { return addr_gen_; }

  /// OS-visible change notifications (kProfileSwap, kFlap). Silent NAT
  /// rebinds are deliberately NOT delivered — clients must detect those by
  /// stall + probe, like real ones do.
  using NetworkChangeListener = std::function<void(NetworkChangeKind)>;
  std::uint64_t add_network_change_listener(NetworkChangeListener listener);
  void remove_network_change_listener(std::uint64_t id);
  void notify_network_change(NetworkChangeKind kind);

 private:
  friend class TcpConnection;
  friend class UdpSocket;

  using TcpKey = std::tuple<std::uint16_t, NodeId, std::uint16_t>;

  void dispatch(const Packet& packet);
  void dispatch_tcp(const TcpSegment& seg, NodeId from);
  void send_rst(const TcpSegment& offending, NodeId to);
  std::uint16_t allocate_ephemeral();
  void tcp_unregister(const TcpKey& key);

  /// The single egress point for this host's sockets: drops everything
  /// while the interface is down, and TCP segments of black-holed (pre-
  /// rebind) flows. Everything UdpSocket/TcpConnection emit funnels here.
  void send_gated(Packet packet);

  Network& net_;
  NodeId id_;
  std::map<std::uint16_t, std::unique_ptr<UdpSocket>> udp_ports_;
  std::map<std::uint16_t, std::unique_ptr<TcpListener>> tcp_listeners_;
  std::map<TcpKey, std::shared_ptr<TcpConnection>> tcp_conns_;
  std::uint16_t next_ephemeral_ = 49152;
  bool if_up_ = true;
  std::uint64_t addr_gen_ = 0;
  /// 5-tuples whose NAT mapping died in a rebind: gated on both egress and
  /// ingress until the owning connection unregisters.
  std::set<TcpKey> blackholed_tcp_;
  std::vector<std::pair<std::uint64_t, NetworkChangeListener>> listeners_;
  std::uint64_t next_listener_id_ = 1;
};

}  // namespace dohperf::simnet
