// Virtual time. All simulation timestamps are integer microseconds so that
// event ordering is exact and runs are bit-for-bit reproducible (no
// floating-point accumulation).
#pragma once

#include <cstdint>

namespace dohperf::simnet {

/// Absolute virtual time in microseconds since simulation start.
using TimeUs = std::int64_t;

constexpr TimeUs kUsPerMs = 1000;
constexpr TimeUs kUsPerSec = 1000 * 1000;

constexpr TimeUs us(std::int64_t v) noexcept { return v; }
constexpr TimeUs ms(std::int64_t v) noexcept { return v * kUsPerMs; }
constexpr TimeUs seconds(std::int64_t v) noexcept { return v * kUsPerSec; }

/// Convert a double duration in seconds to virtual microseconds (rounded).
constexpr TimeUs from_sec(double s) noexcept {
  return static_cast<TimeUs>(s * 1e6 + 0.5);
}

constexpr double to_sec(TimeUs t) noexcept {
  return static_cast<double>(t) / 1e6;
}

constexpr double to_ms(TimeUs t) noexcept {
  return static_cast<double>(t) / 1e3;
}

}  // namespace dohperf::simnet
