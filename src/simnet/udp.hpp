// UDP datagram sockets over the simulated network.
#pragma once

#include <cstdint>
#include <functional>

#include "simnet/network.hpp"
#include "simnet/packet.hpp"

namespace dohperf::simnet {

class Host;

struct UdpCounters {
  std::uint64_t datagrams_sent = 0;
  std::uint64_t datagrams_received = 0;
  std::uint64_t wire_bytes_sent = 0;      ///< incl. IP + UDP headers
  std::uint64_t wire_bytes_received = 0;
  std::uint64_t payload_bytes_sent = 0;
  std::uint64_t payload_bytes_received = 0;
};

/// An unconnected UDP socket bound to one port of its host.
/// Created and owned by Host; destroyed via Host::udp_close.
class UdpSocket {
 public:
  using Receiver = std::function<void(const Bytes& payload, Address from)>;

  UdpSocket(Host& host, std::uint16_t port);

  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;

  Address local() const noexcept;

  void set_receiver(Receiver receiver) { receiver_ = std::move(receiver); }

  /// Send a datagram. Payloads above 65507 bytes throw (UDP limit).
  void send_to(const Address& dst, Bytes payload);

  const UdpCounters& counters() const noexcept { return counters_; }
  void reset_counters() noexcept { counters_ = UdpCounters{}; }

 private:
  friend class Host;
  void deliver(const UdpDatagram& dgram, NodeId from_node);

  Host& host_;
  std::uint16_t port_;
  Receiver receiver_;
  UdpCounters counters_;
};

}  // namespace dohperf::simnet
