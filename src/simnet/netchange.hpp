// Deterministic network-change events: the client-side mobility fabric.
//
// Where fault.hpp models the *link* misbehaving (loss, outage, throttle),
// this models the *endpoint's attachment point* changing — the events a
// mobile client actually sees:
//   * kRebind       — NAT re-addressing: every local port mapping is
//                     replaced, old 5-tuples are black-holed (silent NAT)
//                     or reset (RST-ing middlebox). The OS does not notice;
//                     clients learn of it only through stalls.
//   * kProfileSwap  — the access link's RTT/bandwidth/loss change
//                     mid-connection (Wi-Fi -> LTE handover). OS-visible.
//   * kFlap         — hard interface down for a window, then up with a new
//                     address (kRebind semantics on recovery). OS-visible.
//
// Changes are plain data scheduled on the virtual clock via
// apply_network_changes, exactly like FaultSchedule + inject_faults, so the
// same schedule always yields the same churn.
#pragma once

#include <cstdint>
#include <vector>

#include "simnet/network.hpp"
#include "simnet/time.hpp"

namespace dohperf::simnet {

class Host;

enum class NetworkChangeKind {
  kRebind,       ///< NAT re-addressing; silent unless rst_old_flows
  kProfileSwap,  ///< link RTT/bandwidth/loss replaced mid-connection
  kFlap,         ///< interface down for `down_for`, then up + re-addressed
};

const char* to_string(NetworkChangeKind kind) noexcept;

/// One scheduled attachment-point change at virtual time `at`.
struct NetworkChange {
  NetworkChangeKind kind = NetworkChangeKind::kRebind;
  TimeUs at = 0;
  TimeUs down_for = 0;        ///< kFlap only: outage window length
  bool rst_old_flows = false; ///< kRebind only: RST-ing NAT vs silent drop
  LinkConfig profile;         ///< kProfileSwap only: the new link config
};

/// A plain-data list of NetworkChanges with builder helpers. Attach to a
/// client host via apply_network_changes; the schedule itself is immutable
/// once applied (apply copies it into the scheduled events).
class NetworkChangeSchedule {
 public:
  NetworkChangeSchedule() = default;

  void add(NetworkChange change);
  void add_rebind(TimeUs at, bool rst_old_flows = false);
  void add_profile_swap(TimeUs at, const LinkConfig& profile);
  void add_flap(TimeUs at, TimeUs down_for);

  /// Mobility helper: alternating handovers between two access profiles
  /// (e.g. Wi-Fi <-> LTE) every `interval` starting at `first`, each
  /// pairing a profile swap with a silent NAT rebind at the same instant —
  /// the shape of a real layer-3 handover.
  static NetworkChangeSchedule periodic_handover(TimeUs first, TimeUs interval,
                                                 TimeUs horizon,
                                                 const LinkConfig& profile_a,
                                                 const LinkConfig& profile_b);

  const std::vector<NetworkChange>& changes() const noexcept {
    return changes_;
  }
  bool empty() const noexcept { return changes_.empty(); }

 private:
  std::vector<NetworkChange> changes_;
};

/// Schedule every change in `schedule` on the host's event loop. `peer` is
/// the far end of the client's access link (profile swaps reconfigure the
/// host<->peer link). Safe to call before the loop runs; events fire in
/// schedule order at their `at` timestamps.
void apply_network_changes(Host& host, NodeId peer,
                           const NetworkChangeSchedule& schedule);

}  // namespace dohperf::simnet
