#include "simnet/host.hpp"

#include <stdexcept>

namespace dohperf::simnet {

Host::Host(Network& net, std::string name) : net_(net) {
  id_ = net_.add_node(std::move(name));
  net_.set_handler(id_, [this](const Packet& p) { dispatch(p); });
}

Host::~Host() {
  net_.set_handler(id_, nullptr);
}

const std::string& Host::name() const { return net_.node_name(id_); }

UdpSocket& Host::udp_open(std::uint16_t port) {
  if (port == 0) port = allocate_ephemeral();
  if (udp_ports_.count(port) != 0) {
    throw std::logic_error("UDP port already bound: " + std::to_string(port));
  }
  auto socket = std::make_unique<UdpSocket>(*this, port);
  auto& ref = *socket;
  udp_ports_.emplace(port, std::move(socket));
  return ref;
}

void Host::udp_close(UdpSocket& socket) {
  udp_ports_.erase(socket.local().port);
}

TcpListener& Host::tcp_listen(std::uint16_t port,
                              TcpListener::AcceptHandler on_accept,
                              TcpConfig config) {
  if (tcp_listeners_.count(port) != 0) {
    throw std::logic_error("TCP port already listening: " +
                           std::to_string(port));
  }
  auto listener =
      std::make_unique<TcpListener>(*this, port, config, std::move(on_accept));
  auto& ref = *listener;
  tcp_listeners_.emplace(port, std::move(listener));
  return ref;
}

void Host::tcp_stop_listening(std::uint16_t port) {
  tcp_listeners_.erase(port);
}

std::shared_ptr<TcpConnection> Host::tcp_connect(const Address& remote,
                                                 TcpConfig config) {
  const std::uint16_t local_port = allocate_ephemeral();
  auto conn = std::make_shared<TcpConnection>(*this, local_port, remote,
                                              config, /*is_server=*/false);
  const TcpKey key{local_port, remote.node, remote.port};
  tcp_conns_.emplace(key, conn);
  conn->start_connect();
  return conn;
}

std::uint16_t Host::allocate_ephemeral() {
  // One shared counter for both port spaces; wraps within the dynamic range.
  for (int attempts = 0; attempts < 65536; ++attempts) {
    const std::uint16_t candidate = next_ephemeral_;
    next_ephemeral_ =
        next_ephemeral_ >= 65535 ? 49152 : next_ephemeral_ + 1;
    if (udp_ports_.count(candidate) != 0) continue;
    if (tcp_listeners_.count(candidate) != 0) continue;
    bool used_by_tcp = false;
    for (const auto& [key, conn] : tcp_conns_) {
      if (std::get<0>(key) == candidate) {
        used_by_tcp = true;
        break;
      }
    }
    if (!used_by_tcp) return candidate;
  }
  throw std::runtime_error("ephemeral port space exhausted");
}

void Host::rebind(bool rst_old_flows) {
  ++addr_gen_;
  // Re-port every UDP socket in place: pointers held by clients stay valid
  // (the heap objects move maps, not memory), but the source port changes,
  // so replies in flight toward the old port find no socket and vanish.
  std::vector<std::unique_ptr<UdpSocket>> sockets;
  sockets.reserve(udp_ports_.size());
  for (auto& [port, socket] : udp_ports_) sockets.push_back(std::move(socket));
  udp_ports_.clear();
  for (auto& socket : sockets) {
    const std::uint16_t fresh = allocate_ephemeral();
    socket->port_ = fresh;
    udp_ports_.emplace(fresh, std::move(socket));
  }
  if (rst_old_flows) {
    // A RST-ing middlebox: each connection observes an immediate reset.
    // abort()/unregister happen inside on_segment, so snapshot first.
    std::vector<std::shared_ptr<TcpConnection>> victims;
    victims.reserve(tcp_conns_.size());
    for (const auto& [key, conn] : tcp_conns_) victims.push_back(conn);
    for (const auto& conn : victims) {
      TcpSegment rst;
      rst.rst = true;
      rst.ack_flag = true;
      conn->on_segment(rst);
    }
  } else {
    // Silent NAT: the mapping is simply gone. Gate the flows both ways;
    // the client learns of it only through stalls and RTOs.
    for (const auto& [key, conn] : tcp_conns_) blackholed_tcp_.insert(key);
  }
}

void Host::interface_down() { if_up_ = false; }

void Host::interface_up() {
  if (if_up_) return;
  if_up_ = true;
  rebind(/*rst_old_flows=*/false);  // back with a fresh address
  notify_network_change(NetworkChangeKind::kFlap);
}

std::uint64_t Host::add_network_change_listener(
    NetworkChangeListener listener) {
  const std::uint64_t id = next_listener_id_++;
  listeners_.emplace_back(id, std::move(listener));
  return id;
}

void Host::remove_network_change_listener(std::uint64_t id) {
  for (auto it = listeners_.begin(); it != listeners_.end(); ++it) {
    if (it->first == id) {
      listeners_.erase(it);
      return;
    }
  }
}

void Host::notify_network_change(NetworkChangeKind kind) {
  // Snapshot: a listener may (un)register listeners from its callback.
  std::vector<std::uint64_t> ids;
  ids.reserve(listeners_.size());
  for (const auto& [id, fn] : listeners_) ids.push_back(id);
  for (const std::uint64_t id : ids) {
    for (const auto& [lid, fn] : listeners_) {
      if (lid == id) {
        fn(kind);
        break;
      }
    }
  }
}

void Host::send_gated(Packet packet) {
  if (!if_up_) return;  // interface down: frames die at the NIC
  if (const auto* seg = std::get_if<TcpSegment>(&packet.body)) {
    const TcpKey key{seg->src_port, packet.dst_node, seg->dst_port};
    if (blackholed_tcp_.count(key) != 0) return;  // dead NAT mapping
  }
  net_.send(std::move(packet));
}

void Host::dispatch(const Packet& packet) {
  if (!if_up_) return;  // interface down: nothing is delivered
  if (const auto* dgram = std::get_if<UdpDatagram>(&packet.body)) {
    const auto it = udp_ports_.find(dgram->dst_port);
    if (it != udp_ports_.end()) {
      it->second->deliver(*dgram, packet.src_node);
    }
    return;
  }
  dispatch_tcp(std::get<TcpSegment>(packet.body), packet.src_node);
}

void Host::dispatch_tcp(const TcpSegment& seg, NodeId from) {
  const TcpKey key{seg.dst_port, from, seg.src_port};
  // Black-holed flows swallow ingress too — crucially before the RST
  // fall-through below, so a dead mapping never answers anything.
  if (blackholed_tcp_.count(key) != 0) return;
  const auto it = tcp_conns_.find(key);
  if (it != tcp_conns_.end()) {
    // Hold a reference so the connection can unregister itself mid-call.
    const auto conn = it->second;
    conn->on_segment(seg);
    return;
  }
  // New connection: a SYN to a listening port.
  if (seg.syn && !seg.ack_flag) {
    const auto lit = tcp_listeners_.find(seg.dst_port);
    if (lit != tcp_listeners_.end()) {
      auto conn = std::make_shared<TcpConnection>(
          *this, seg.dst_port, Address{from, seg.src_port},
          lit->second->config(), /*is_server=*/true);
      // Deliver the connection to the application once established.
      auto& listener = *lit->second;
      conn->set_callbacks({});  // application sets real callbacks on accept
      tcp_conns_.emplace(key, conn);
      conn->accept_handler_ = listener.on_accept_;
      conn->handle_syn(seg);
      return;
    }
  }
  if (!seg.rst) send_rst(seg, from);
}

void Host::send_rst(const TcpSegment& offending, NodeId to) {
  TcpSegment rst;
  rst.src_port = offending.dst_port;
  rst.dst_port = offending.src_port;
  rst.rst = true;
  rst.ack_flag = true;
  rst.seq = offending.ack;
  rst.ack = offending.seq + static_cast<std::uint32_t>(offending.payload.size()) +
            (offending.syn ? 1 : 0) + (offending.fin ? 1 : 0);
  Packet packet;
  packet.src_node = id_;
  packet.dst_node = to;
  packet.body = std::move(rst);
  send_gated(std::move(packet));
}

void Host::tcp_reset_port(std::uint16_t port) {
  // abort() unregisters the connection, so collect victims first.
  std::vector<std::shared_ptr<TcpConnection>> victims;
  for (const auto& [key, conn] : tcp_conns_) {
    if (std::get<0>(key) == port) victims.push_back(conn);
  }
  for (const auto& conn : victims) conn->abort();
}

void Host::tcp_unregister(const TcpKey& key) {
  tcp_conns_.erase(key);
  blackholed_tcp_.erase(key);
}

}  // namespace dohperf::simnet
