// Client-side resolution policies: the TTL cache and TRR-style fallback.
#include <gtest/gtest.h>

#include "core/caching_client.hpp"
#include "core/doh_client.hpp"
#include "core/fallback_client.hpp"
#include "core/health_client.hpp"
#include "core/hedging_client.hpp"
#include "core/udp_client.hpp"
#include "resolver/engine.hpp"
#include "resolver/recursive_tier.hpp"
#include "resolver/doh_server.hpp"
#include "resolver/udp_server.hpp"
#include "sim_fixture.hpp"

namespace dohperf::core {
namespace {

using dohperf::testing::TwoHostFixture;

class CacheTest : public TwoHostFixture {
 protected:
  resolver::EngineConfig engine_config;
  std::unique_ptr<resolver::Engine> engine;
  std::unique_ptr<resolver::UdpServer> udp_server;
  std::unique_ptr<UdpResolverClient> upstream;
  std::unique_ptr<CachingResolverClient> cache;

  void start(CacheConfig config = {}) {
    engine_config.ttl = 300;
    engine = std::make_unique<resolver::Engine>(loop, engine_config);
    udp_server = std::make_unique<resolver::UdpServer>(server, *engine, 53);
    upstream = std::make_unique<UdpResolverClient>(
        client, simnet::Address{server.id(), 53});
    cache = std::make_unique<CachingResolverClient>(loop, *upstream, config);
  }

  static dns::Name name(const std::string& n) { return dns::Name::parse(n); }
};

TEST_F(CacheTest, SecondLookupIsFreeAndInstant) {
  start();
  cache->resolve(name("a.example.com"), dns::RType::kA, {});
  loop.run();
  EXPECT_EQ(cache->stats().misses, 1u);

  ResolutionResult hit;
  const auto id = cache->resolve(name("a.example.com"), dns::RType::kA,
                                 [&](const ResolutionResult& r) { hit = r; });
  // Synchronous: no loop.run() needed.
  EXPECT_TRUE(hit.success);
  EXPECT_EQ(hit.resolution_time(), 0);
  EXPECT_EQ(cache->stats().hits, 1u);
  EXPECT_EQ(cache->result(id).cost.wire_bytes, 0u);  // nothing on the wire
  EXPECT_EQ(std::get<dns::ARdata>(hit.response.answers.at(0).rdata)
                .to_string(),
            "192.0.2.1");
}

TEST_F(CacheTest, TtlExpiryForcesRefetch) {
  start();
  cache->resolve(name("a.example.com"), dns::RType::kA, {});
  loop.run();
  // Advance virtual time past the 300s TTL.
  loop.schedule_in(simnet::seconds(301), []() {});
  loop.run();
  cache->resolve(name("a.example.com"), dns::RType::kA, {});
  loop.run();
  EXPECT_EQ(cache->stats().misses, 2u);
  EXPECT_EQ(cache->stats().expirations, 1u);
}

TEST_F(CacheTest, DistinctTypesAreDistinctEntries) {
  start();
  cache->resolve(name("a.example.com"), dns::RType::kA, {});
  loop.run();
  cache->resolve(name("a.example.com"), dns::RType::kTXT, {});
  loop.run();
  EXPECT_EQ(cache->stats().misses, 2u);
  EXPECT_EQ(cache->size(), 2u);
}

TEST_F(CacheTest, CapacityEvictsEarliestExpiry) {
  CacheConfig config;
  config.max_entries = 3;
  start(config);
  // Same TTL, strictly increasing insert times: the earliest-expiry victim
  // is the oldest entry.
  for (int i = 0; i < 4; ++i) {
    cache->resolve(name("n" + std::to_string(i) + ".example.com"),
                   dns::RType::kA, {});
    loop.run();
  }
  EXPECT_EQ(cache->stats().evictions, 1u);
  EXPECT_EQ(cache->size(), 3u);
  // n0 was evicted: looking it up again misses.
  cache->resolve(name("n0.example.com"), dns::RType::kA, {});
  loop.run();
  EXPECT_EQ(cache->stats().misses, 5u);
  // n3 is still cached.
  cache->resolve(name("n3.example.com"), dns::RType::kA, {});
  EXPECT_EQ(cache->stats().hits, 1u);
}

TEST_F(CacheTest, EvictionLruBreaksExpiryTies) {
  CacheConfig config;
  config.max_entries = 3;
  start(config);
  // Issue n0..n2 back-to-back: all three complete at the same virtual
  // instant and share an expiry, so only recency can pick the victim.
  for (int i = 0; i < 3; ++i) {
    cache->resolve(name("n" + std::to_string(i) + ".example.com"),
                   dns::RType::kA, {});
  }
  loop.run();
  EXPECT_EQ(cache->size(), 3u);
  // Touch n0 (a fresh hit), leaving n1 the least recently used.
  cache->resolve(name("n0.example.com"), dns::RType::kA, {});
  EXPECT_EQ(cache->stats().hits, 1u);

  cache->resolve(name("n3.example.com"), dns::RType::kA, {});
  loop.run();
  EXPECT_EQ(cache->stats().evictions, 1u);
  // n0 survived thanks to the touch; n1 was the tie-break victim.
  cache->resolve(name("n0.example.com"), dns::RType::kA, {});
  EXPECT_EQ(cache->stats().hits, 2u);
  const auto misses_before = cache->stats().misses;
  cache->resolve(name("n1.example.com"), dns::RType::kA, {});
  loop.run();
  EXPECT_EQ(cache->stats().misses, misses_before + 1);
}

TEST_F(CacheTest, ClearResetsLruSequenceForIdenticalReplay) {
  CacheConfig config;
  config.max_entries = 2;
  start(config);
  // One workload phase: fill to capacity in a single instant, touch `a`,
  // then overflow — the tie-break must evict `b` both times, which only
  // happens if clear() also rewinds the LRU sequence.
  const auto phase = [&]() {
    cache->resolve(name("a.example.com"), dns::RType::kA, {});
    cache->resolve(name("b.example.com"), dns::RType::kA, {});
    loop.run();
    cache->resolve(name("a.example.com"), dns::RType::kA, {});  // touch
    cache->resolve(name("c.example.com"), dns::RType::kA, {});
    loop.run();
    // `a` must have survived the eviction.
    const auto hits = cache->stats().hits;
    cache->resolve(name("a.example.com"), dns::RType::kA, {});
    return cache->stats().hits - hits;
  };
  const auto first = phase();
  cache->clear();
  EXPECT_EQ(cache->size(), 0u);
  const auto second = phase();
  EXPECT_EQ(first, 1u);
  EXPECT_EQ(second, first);  // cleared cache replays byte-identically
  EXPECT_EQ(cache->stats().evictions, 2u);
}

TEST_F(CacheTest, NegativeAnswerCachedWithSoaDerivedTtl) {
  start();  // engine ttl 300, soa_minimum 60 -> negative TTL min(300,60)=60
  engine->add_nxdomain(name("gone.example.com"));
  ResolutionResult observed;
  cache->resolve(name("gone.example.com"), dns::RType::kA,
                 [&](const ResolutionResult& r) { observed = r; });
  loop.run();
  EXPECT_TRUE(observed.success);
  EXPECT_EQ(observed.response.flags.rcode, dns::Rcode::kNxDomain);
  EXPECT_EQ(cache->stats().negative_entries, 1u);

  // The NXDOMAIN is answered from cache: synchronous, nothing upstream.
  ResolutionResult hit;
  cache->resolve(name("gone.example.com"), dns::RType::kA,
                 [&](const ResolutionResult& r) { hit = r; });
  EXPECT_TRUE(hit.success);
  EXPECT_EQ(hit.response.flags.rcode, dns::Rcode::kNxDomain);
  EXPECT_EQ(hit.resolution_time(), 0);
  EXPECT_EQ(cache->stats().negative_hits, 1u);

  // ... but only for the SOA-derived 60s, not the record TTL of 300s.
  loop.schedule_in(simnet::seconds(61), []() {});
  loop.run();
  cache->resolve(name("gone.example.com"), dns::RType::kA, {});
  loop.run();
  EXPECT_EQ(cache->stats().misses, 2u);
}

TEST_F(CacheTest, NodataCachedNegatively) {
  start();
  // Non-A queries answer NODATA (NOERROR, empty answer section) with an
  // SOA — cacheable per RFC 2308 just like NXDOMAIN.
  cache->resolve(name("a.example.com"), dns::RType::kTXT, {});
  loop.run();
  EXPECT_EQ(cache->stats().negative_entries, 1u);
  ResolutionResult hit;
  cache->resolve(name("a.example.com"), dns::RType::kTXT,
                 [&](const ResolutionResult& r) { hit = r; });
  EXPECT_TRUE(hit.success);
  EXPECT_TRUE(hit.response.answers.empty());
  EXPECT_EQ(cache->stats().negative_hits, 1u);
}

TEST_F(CacheTest, ServfailIsNeverCached) {
  engine_config.faults.servfail_rate = 1.0;
  start();
  cache->resolve(name("sick.example.com"), dns::RType::kA, {});
  loop.run();
  cache->resolve(name("sick.example.com"), dns::RType::kA, {});
  loop.run();
  // SERVFAIL is a resolver-health signal, not an answer: both lookups went
  // upstream and nothing was admitted.
  EXPECT_EQ(cache->stats().misses, 2u);
  EXPECT_EQ(cache->size(), 0u);
  EXPECT_EQ(cache->stats().negative_entries, 0u);
}

TEST_F(CacheTest, ServeStaleOnUpstreamFailure) {
  CacheConfig config;
  config.max_stale = simnet::seconds(60);
  config.stale_serve_delay = simnet::seconds(10);  // failure path, not timer
  start(config);
  upstream = std::make_unique<UdpResolverClient>(
      client, simnet::Address{server.id(), 53},
      UdpClientConfig{.timeout = simnet::ms(300), .max_retries = 0});
  cache = std::make_unique<CachingResolverClient>(loop, *upstream, config);

  cache->resolve(name("a.example.com"), dns::RType::kA, {});
  loop.run();
  loop.schedule_in(simnet::seconds(301), []() {});  // past TTL, within stale
  loop.run();
  udp_server.reset();  // resolver goes dark

  ResolutionResult observed;
  const auto id = cache->resolve(name("a.example.com"), dns::RType::kA,
                                 [&](const ResolutionResult& r) {
                                   observed = r;
                                 });
  loop.run();
  EXPECT_TRUE(observed.success);
  EXPECT_EQ(std::get<dns::ARdata>(observed.response.answers.at(0).rdata)
                .to_string(),
            "192.0.2.1");
  EXPECT_EQ(cache->stats().stale_serves, 1u);
  // Served when the refresh *failed* (the 300ms timeout), before the 10s
  // stale-serve delay.
  EXPECT_EQ(observed.resolution_time(), simnet::ms(300));
  EXPECT_GT(cache->staleness_age(id), 0u);
}

TEST_F(CacheTest, StaleServeDelayAnswersWhileRefreshStillRunning) {
  CacheConfig config;
  config.max_stale = simnet::seconds(60);
  config.stale_serve_delay = simnet::ms(100);
  start(config);
  upstream = std::make_unique<UdpResolverClient>(
      client, simnet::Address{server.id(), 53},
      UdpClientConfig{.timeout = simnet::seconds(2), .max_retries = 0});
  cache = std::make_unique<CachingResolverClient>(loop, *upstream, config);

  cache->resolve(name("a.example.com"), dns::RType::kA, {});
  loop.run();
  loop.schedule_in(simnet::seconds(301), []() {});
  loop.run();
  udp_server.reset();

  ResolutionResult observed;
  cache->resolve(name("a.example.com"), dns::RType::kA,
                 [&](const ResolutionResult& r) { observed = r; });
  loop.run();
  // The waiter was rescued at the 100ms stale deadline — RFC 8767's client
  // response timeout — not at the 2s refresh timeout.
  EXPECT_TRUE(observed.success);
  EXPECT_EQ(observed.resolution_time(), simnet::ms(100));
  EXPECT_EQ(cache->stats().stale_serves, 1u);
}

TEST_F(CacheTest, StaleWhileRevalidateRepairsEntry) {
  CacheConfig config;
  config.max_stale = simnet::seconds(60);
  config.stale_serve_delay = 0;  // serve stale instantly, refresh behind
  start(config);
  cache->resolve(name("a.example.com"), dns::RType::kA, {});
  loop.run();
  loop.schedule_in(simnet::seconds(301), []() {});
  loop.run();

  // Resolver is healthy: the stale answer goes out first, the refresh then
  // repairs the entry in the background.
  cache->resolve(name("a.example.com"), dns::RType::kA, {});
  loop.run();
  EXPECT_EQ(cache->stats().stale_serves, 1u);
  EXPECT_EQ(cache->stats().revalidations, 1u);
  // The repaired entry serves fresh hits again.
  const auto hits = cache->stats().hits;
  cache->resolve(name("a.example.com"), dns::RType::kA, {});
  EXPECT_EQ(cache->stats().hits, hits + 1);
}

TEST_F(CacheTest, ConcurrentLookupsCoalesceOntoOneUpstreamQuery) {
  start();
  int answered = 0;
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 3; ++i) {
    ids.push_back(cache->resolve(name("hot.example.com"), dns::RType::kA,
                                 [&](const ResolutionResult& r) {
                                   if (r.success) ++answered;
                                 }));
  }
  loop.run();
  EXPECT_EQ(answered, 3);
  EXPECT_EQ(cache->stats().coalesced, 2u);
  EXPECT_EQ(cache->stats().upstream_queries, 1u);
  EXPECT_EQ(upstream->completed(), 1u);
  // The single upstream exchange is charged once: the first waiter carries
  // the wire bytes, the joiners ride free.
  EXPECT_GT(cache->result(ids[0]).cost.wire_bytes, 0u);
  EXPECT_EQ(cache->result(ids[1]).cost.wire_bytes, 0u);
  EXPECT_EQ(cache->result(ids[2]).cost.wire_bytes, 0u);
}

TEST_F(CacheTest, ProactiveRefreshKeepsHotEntryFresh) {
  CacheConfig config;
  config.refresh_ahead = simnet::seconds(20);
  start(config);
  cache->resolve(name("a.example.com"), dns::RType::kA, {});
  loop.run();
  // A hit inside the refresh-ahead window answers fresh *and* starts a
  // background refresh.
  loop.schedule_in(simnet::seconds(290), []() {});
  loop.run();
  cache->resolve(name("a.example.com"), dns::RType::kA, {});
  EXPECT_EQ(cache->stats().hits, 1u);
  EXPECT_EQ(cache->stats().proactive_refreshes, 1u);
  loop.run();
  EXPECT_EQ(cache->stats().upstream_queries, 2u);
  // Past the original 300s TTL the refreshed entry still hits.
  loop.schedule_in(simnet::seconds(20), []() {});
  loop.run();
  cache->resolve(name("a.example.com"), dns::RType::kA, {});
  EXPECT_EQ(cache->stats().hits, 2u);
  EXPECT_EQ(cache->stats().misses, 1u);
}

TEST_F(CacheTest, TtlClampObeyed) {
  CacheConfig config;
  config.max_ttl = simnet::seconds(10);
  start(config);
  cache->resolve(name("a.example.com"), dns::RType::kA, {});
  loop.run();
  loop.schedule_in(simnet::seconds(11), []() {});
  loop.run();
  cache->resolve(name("a.example.com"), dns::RType::kA, {});
  loop.run();
  EXPECT_EQ(cache->stats().misses, 2u);  // expired despite 300s record TTL
}

TEST_F(CacheTest, HitRatioOnZipfWorkload) {
  start();
  stats::ZipfSampler zipf(50, 1.2, 99);
  for (int i = 0; i < 500; ++i) {
    cache->resolve(name("tp" + std::to_string(zipf.sample()) + ".example"),
                   dns::RType::kA, {});
    loop.run();
  }
  // A hot-headed workload should mostly hit.
  EXPECT_GT(cache->stats().hit_ratio(), 0.8);
}

// --- fallback ---------------------------------------------------------------------

class FallbackTest : public TwoHostFixture {
 protected:
  resolver::EngineConfig engine_config;
  std::unique_ptr<resolver::Engine> engine;
  std::unique_ptr<resolver::UdpServer> udp_server;
  std::unique_ptr<resolver::DohServer> doh_server;
  std::unique_ptr<DohClient> doh;
  std::unique_ptr<UdpResolverClient> udp;
  std::unique_ptr<FallbackResolverClient> trr;

  void start(bool doh_server_up, FallbackConfig config = {},
             simnet::TimeUs doh_frontend_delay = 0) {
    engine = std::make_unique<resolver::Engine>(loop, engine_config);
    udp_server = std::make_unique<resolver::UdpServer>(server, *engine, 53);
    if (doh_server_up) {
      resolver::DohServerConfig doh_config;
      doh_config.tls.chain = tlssim::CertificateChain::cloudflare();
      doh_config.frontend_delay = doh_frontend_delay;
      doh_server = std::make_unique<resolver::DohServer>(server, *engine,
                                                         doh_config, 443);
    }
    DohClientConfig client_config;
    client_config.server_name = "cloudflare-dns.com";
    doh = std::make_unique<DohClient>(
        client, simnet::Address{server.id(), 443}, client_config);
    udp = std::make_unique<UdpResolverClient>(
        client, simnet::Address{server.id(), 53});
    trr = std::make_unique<FallbackResolverClient>(loop, *doh, *udp, config);
  }

  static dns::Name name(const std::string& n) { return dns::Name::parse(n); }
};

TEST_F(FallbackTest, HealthyPrimaryWins) {
  start(/*doh_server_up=*/true);
  ResolutionResult observed;
  trr->resolve(name("a.example.com"), dns::RType::kA,
               [&](const ResolutionResult& r) { observed = r; });
  loop.run();
  EXPECT_TRUE(observed.success);
  EXPECT_EQ(trr->stats().primary_wins, 1u);
  EXPECT_EQ(trr->stats().fallback_used, 0u);
  // The UDP client was never touched.
  EXPECT_EQ(udp->completed(), 0u);
}

TEST_F(FallbackTest, DeadPrimaryFallsBackImmediately) {
  start(/*doh_server_up=*/false);  // nothing on 443 -> TCP RST
  ResolutionResult observed;
  trr->resolve(name("a.example.com"), dns::RType::kA,
               [&](const ResolutionResult& r) { observed = r; });
  loop.run();
  EXPECT_TRUE(observed.success);  // answered by UDP
  EXPECT_EQ(trr->stats().fallback_used, 1u);
  // Far faster than the 1500ms deadline: the RST triggers fallback early.
  EXPECT_LT(observed.resolution_time(), simnet::ms(200));
}

TEST_F(FallbackTest, SlowPrimaryFallsBackAtDeadline) {
  // Only the DoH path is slow (a congested HTTPS front-end); UDP is fine.
  FallbackConfig config;
  config.primary_deadline = simnet::ms(500);
  start(/*doh_server_up=*/true, config,
        /*doh_frontend_delay=*/simnet::seconds(10));
  ResolutionResult observed;
  trr->resolve(name("a.example.com"), dns::RType::kA,
               [&](const ResolutionResult& r) { observed = r; });
  loop.run();
  EXPECT_TRUE(observed.success);
  EXPECT_EQ(trr->stats().fallback_used, 1u);
  // Deadline (500ms) + one UDP round trip, far less than the DoH delay.
  EXPECT_GE(observed.resolution_time(), simnet::ms(500));
  EXPECT_LT(observed.resolution_time(), simnet::ms(700));
}

TEST_F(FallbackTest, BothDeadFails) {
  start(/*doh_server_up=*/false);
  udp_server.reset();  // kill UDP too
  UdpClientConfig udp_config;
  udp_config.timeout = simnet::ms(300);
  udp = std::make_unique<UdpResolverClient>(
      client, simnet::Address{server.id(), 53}, udp_config);
  trr = std::make_unique<FallbackResolverClient>(loop, *doh, *udp);
  ResolutionResult observed;
  observed.success = true;
  trr->resolve(name("a.example.com"), dns::RType::kA,
               [&](const ResolutionResult& r) { observed = r; });
  loop.run();
  EXPECT_FALSE(observed.success);
  EXPECT_EQ(trr->stats().both_failed, 1u);
}

TEST_F(FallbackTest, ManyQueriesMixedHealth) {
  // Every 3rd query delayed past the deadline: those fall back, the rest
  // resolve via DoH.
  engine_config.delay_policy.every_n = 3;
  engine_config.delay_policy.delay = simnet::seconds(5);
  FallbackConfig config;
  config.primary_deadline = simnet::ms(400);
  start(/*doh_server_up=*/true, config);
  int succeeded = 0;
  for (int i = 0; i < 12; ++i) {
    trr->resolve(name("q" + std::to_string(i) + ".example.com"),
                 dns::RType::kA, [&](const ResolutionResult& r) {
                   if (r.success) ++succeeded;
                 });
    loop.run();
  }
  EXPECT_EQ(succeeded, 12);
  EXPECT_GT(trr->stats().fallback_used, 0u);
  EXPECT_GT(trr->stats().primary_wins, 0u);
  EXPECT_EQ(trr->stats().primary_wins + trr->stats().fallback_used, 12u);
}

// --- hedging ----------------------------------------------------------------------

class HedgeTest : public TwoHostFixture {
 protected:
  resolver::EngineConfig primary_config;
  resolver::EngineConfig secondary_config;
  std::unique_ptr<resolver::Engine> primary_engine;
  std::unique_ptr<resolver::Engine> secondary_engine;
  std::unique_ptr<resolver::UdpServer> primary_server;
  std::unique_ptr<resolver::UdpServer> secondary_server;
  std::unique_ptr<UdpResolverClient> primary;
  std::unique_ptr<UdpResolverClient> secondary;
  std::unique_ptr<HedgingResolverClient> hedged;

  void start(HedgeConfig config = {},
             UdpClientConfig primary_client_config = {}) {
    primary_engine = std::make_unique<resolver::Engine>(loop, primary_config);
    secondary_engine =
        std::make_unique<resolver::Engine>(loop, secondary_config);
    primary_server =
        std::make_unique<resolver::UdpServer>(server, *primary_engine, 53);
    secondary_server =
        std::make_unique<resolver::UdpServer>(server, *secondary_engine, 54);
    primary = std::make_unique<UdpResolverClient>(
        client, simnet::Address{server.id(), 53}, primary_client_config);
    secondary = std::make_unique<UdpResolverClient>(
        client, simnet::Address{server.id(), 54});
    hedged = std::make_unique<HedgingResolverClient>(loop, *primary,
                                                     *secondary, config);
  }

  static dns::Name name(const std::string& n) { return dns::Name::parse(n); }
};

TEST_F(HedgeTest, FastPrimaryWinsWithoutHedging) {
  HedgeConfig config;
  config.hedge_delay = simnet::ms(200);
  config.hedge_budget_permille = 1000;
  start(config);
  ResolutionResult observed;
  hedged->resolve(name("a.example.com"), dns::RType::kA,
                  [&](const ResolutionResult& r) { observed = r; });
  loop.run();
  EXPECT_TRUE(observed.success);
  EXPECT_EQ(hedged->stats().primary_wins, 1u);
  EXPECT_EQ(hedged->stats().hedges_issued, 0u);
  EXPECT_EQ(secondary->completed(), 0u);  // secondary never queried
}

TEST_F(HedgeTest, HedgeFiresAfterDelayAndWins) {
  primary_config.faults.stall_rate = 1.0;  // primary accepts, never answers
  HedgeConfig config;
  config.hedge_delay = simnet::ms(200);
  config.hedge_budget_permille = 1000;
  start(config, UdpClientConfig{.timeout = simnet::seconds(5)});
  ResolutionResult observed;
  hedged->resolve(name("a.example.com"), dns::RType::kA,
                  [&](const ResolutionResult& r) { observed = r; });
  loop.run();
  EXPECT_TRUE(observed.success);
  EXPECT_EQ(hedged->stats().hedges_issued, 1u);
  EXPECT_EQ(hedged->stats().hedge_wins, 1u);
  // Hedge delay plus one round trip to the secondary, far below the
  // primary's 5s timeout.
  EXPECT_GE(observed.resolution_time(), simnet::ms(200));
  EXPECT_LT(observed.resolution_time(), simnet::ms(300));
}

TEST_F(HedgeTest, LateLoserIsTornDownAndChargedAsWaste) {
  // Primary answers everything, but a second late: the hedge wins, and the
  // primary's eventual answer must neither surface nor double-complete —
  // it lands in the wasted account.
  primary_config.delay_policy.every_n = 1;
  primary_config.delay_policy.delay = simnet::seconds(1);
  HedgeConfig config;
  config.hedge_delay = simnet::ms(100);
  config.hedge_budget_permille = 1000;
  start(config);
  int callbacks = 0;
  ResolutionResult observed;
  hedged->resolve(name("a.example.com"), dns::RType::kA,
                  [&](const ResolutionResult& r) {
                    ++callbacks;
                    observed = r;
                  });
  loop.run();
  EXPECT_EQ(callbacks, 1);
  EXPECT_EQ(hedged->completed(), 1u);
  EXPECT_TRUE(observed.success);
  EXPECT_LT(observed.resolution_time(), simnet::ms(500));  // the hedge's
  EXPECT_EQ(hedged->stats().hedge_wins, 1u);
  EXPECT_EQ(hedged->stats().wasted_answers, 1u);
  EXPECT_GT(hedged->stats().wasted_wire_bytes, 0u);
}

TEST_F(HedgeTest, BudgetSuppressesExcessHedges) {
  primary_config.faults.stall_rate = 1.0;
  HedgeConfig config;
  config.hedge_delay = simnet::ms(100);
  config.hedge_budget_permille = 500;  // at most one hedge per two queries
  start(config, UdpClientConfig{.timeout = simnet::seconds(5)});
  int succeeded = 0;
  for (int i = 0; i < 10; ++i) {
    hedged->resolve(name("q" + std::to_string(i) + ".example.com"),
                    dns::RType::kA, [&](const ResolutionResult& r) {
                      if (r.success) ++succeeded;
                    });
    loop.run();
  }
  const auto& s = hedged->stats();
  EXPECT_EQ(s.hedges_issued, 5u);  // the per-mille cap, exactly
  EXPECT_GT(s.hedges_suppressed, 0u);
  EXPECT_EQ(succeeded, 5);  // suppressed queries died with the primary
  EXPECT_EQ(s.both_failed, 5u);
}

TEST_F(HedgeTest, PrimaryFailureHedgesImmediately) {
  primary_config.faults.stall_rate = 1.0;
  HedgeConfig config;
  config.hedge_delay = simnet::seconds(3);  // far beyond the failure
  config.hedge_budget_permille = 1000;
  start(config, UdpClientConfig{.timeout = simnet::ms(150)});
  ResolutionResult observed;
  hedged->resolve(name("a.example.com"), dns::RType::kA,
                  [&](const ResolutionResult& r) { observed = r; });
  loop.run();
  EXPECT_TRUE(observed.success);
  EXPECT_EQ(hedged->stats().hedge_wins, 1u);
  // The primary's 150ms failure triggered the hedge, not the 3s delay.
  EXPECT_LT(observed.resolution_time(), simnet::ms(300));
}

TEST_F(FallbackTest, CacheOverFallbackComposes) {
  // The decorators stack: cache -> fallback -> (DoH | UDP).
  start(/*doh_server_up=*/true);
  CachingResolverClient cached(loop, *trr, {});
  cached.resolve(name("hot.example.com"), dns::RType::kA, {});
  loop.run();
  ResolutionResult hit;
  cached.resolve(name("hot.example.com"), dns::RType::kA,
                 [&](const ResolutionResult& r) { hit = r; });
  EXPECT_TRUE(hit.success);
  EXPECT_EQ(hit.resolution_time(), 0);
  EXPECT_EQ(cached.stats().hits, 1u);
}


// --- Server-side shedding vs the client resilience stack ---------------------
//
// An overloaded RecursiveTier answers REFUSED. The client stack must treat
// that as "this resolver is unhealthy", not as a resolution: the fallback
// rescues it, the circuit breaker counts it, and the cache never stores it.

class ShedInterplayTest : public TwoHostFixture {
 protected:
  resolver::EngineConfig engine_config;
  std::unique_ptr<resolver::Engine> engine;
  std::unique_ptr<resolver::RecursiveTier> tier;
  std::unique_ptr<resolver::DohServer> doh_server;
  std::unique_ptr<resolver::UdpServer> udp_server;
  std::unique_ptr<DohClient> doh;
  std::unique_ptr<UdpResolverClient> udp;

  /// DoH is fronted by a tier shedding every request (queue capacity 0);
  /// plain UDP bypasses the tier and stays healthy.
  void start() {
    engine = std::make_unique<resolver::Engine>(loop, engine_config);
    resolver::TierConfig tier_config;
    tier_config.bound_queue = true;
    tier_config.queue_capacity = 0;
    tier = std::make_unique<resolver::RecursiveTier>(loop, *engine,
                                                     tier_config);
    resolver::DohServerConfig doh_config;
    doh_config.tls.chain = tlssim::CertificateChain::cloudflare();
    doh_server = std::make_unique<resolver::DohServer>(server, *tier,
                                                       doh_config, 443);
    udp_server = std::make_unique<resolver::UdpServer>(server, *engine, 53);
    DohClientConfig doh_client_config;
    doh_client_config.server_name = "cloudflare-dns.com";
    doh = std::make_unique<DohClient>(
        client, simnet::Address{server.id(), 443}, doh_client_config);
    udp = std::make_unique<UdpResolverClient>(
        client, simnet::Address{server.id(), 53});
  }

  static dns::Name name(const std::string& n) { return dns::Name::parse(n); }
};

TEST_F(ShedInterplayTest, FallbackRescuesSheddingPrimary) {
  start();
  FallbackResolverClient trr(loop, *doh, *udp, {});
  ResolutionResult observed;
  trr.resolve(name("a.example.com"), dns::RType::kA,
              [&](const ResolutionResult& r) { observed = r; });
  loop.run();
  EXPECT_TRUE(observed.success);
  EXPECT_EQ(observed.response.flags.rcode, dns::Rcode::kNoError);
  EXPECT_EQ(trr.stats().primary_shed, 1u);
  EXPECT_EQ(trr.stats().fallback_used, 1u);
  EXPECT_EQ(trr.stats().primary_wins, 0u);
  // The REFUSED arrived quickly, so the rescue started long before the
  // 1500ms deadline would have.
  EXPECT_LT(observed.resolution_time(), simnet::ms(500));
}

TEST_F(ShedInterplayTest, RcodeFailuresOffSurfacesTheShed) {
  start();
  FallbackConfig config;
  config.rcode_failures = false;  // pre-fix behaviour, now opt-in
  FallbackResolverClient trr(loop, *doh, *udp, config);
  ResolutionResult observed;
  trr.resolve(name("a.example.com"), dns::RType::kA,
              [&](const ResolutionResult& r) { observed = r; });
  loop.run();
  EXPECT_EQ(observed.response.flags.rcode, dns::Rcode::kRefused);
  EXPECT_EQ(trr.stats().primary_shed, 0u);
  EXPECT_EQ(trr.stats().fallback_used, 0u);
}

TEST_F(ShedInterplayTest, ShedRefusedTripsTheBreaker) {
  start();
  HealthConfig config;
  config.failure_threshold = 2;
  HealthTrackingClient health(loop, {doh.get(), udp.get()}, config);
  for (int i = 0; i < 3; ++i) {
    ResolutionResult observed;
    health.resolve(name("q" + std::to_string(i) + ".example.com"),
                   dns::RType::kA,
                   [&](const ResolutionResult& r) { observed = r; });
    loop.run();
    EXPECT_TRUE(observed.success);
    EXPECT_EQ(observed.response.flags.rcode, dns::Rcode::kNoError);
  }
  // Two REFUSED answers tripped the DoH breaker; the third query skipped
  // straight to UDP without touching the shedding resolver.
  EXPECT_EQ(health.health(0).failures, 2u);
  EXPECT_EQ(health.health(0).breaker_trips, 1u);
  EXPECT_EQ(health.health(0).queries, 2u);
  EXPECT_EQ(health.health(0).state, BreakerState::kOpen);
  EXPECT_EQ(health.failovers(), 2u);
  EXPECT_EQ(health.exhausted(), 0u);
}

TEST_F(ShedInterplayTest, ShedRefusedIsNeverCached) {
  start();
  CachingResolverClient cached(loop, *doh, {});
  cached.resolve(name("a.example.com"), dns::RType::kA, {});
  loop.run();
  cached.resolve(name("a.example.com"), dns::RType::kA, {});
  loop.run();
  // Both lookups went upstream; the REFUSED was never admitted, not even
  // as a negative entry.
  EXPECT_EQ(cached.stats().misses, 2u);
  EXPECT_EQ(cached.size(), 0u);
  EXPECT_EQ(cached.stats().negative_entries, 0u);
}

}  // namespace
}  // namespace dohperf::core
