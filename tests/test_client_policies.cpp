// Client-side resolution policies: the TTL cache and TRR-style fallback.
#include <gtest/gtest.h>

#include "core/caching_client.hpp"
#include "core/doh_client.hpp"
#include "core/fallback_client.hpp"
#include "core/udp_client.hpp"
#include "resolver/doh_server.hpp"
#include "resolver/udp_server.hpp"
#include "sim_fixture.hpp"

namespace dohperf::core {
namespace {

using dohperf::testing::TwoHostFixture;

class CacheTest : public TwoHostFixture {
 protected:
  resolver::EngineConfig engine_config;
  std::unique_ptr<resolver::Engine> engine;
  std::unique_ptr<resolver::UdpServer> udp_server;
  std::unique_ptr<UdpResolverClient> upstream;
  std::unique_ptr<CachingResolverClient> cache;

  void start(CacheConfig config = {}) {
    engine_config.ttl = 300;
    engine = std::make_unique<resolver::Engine>(loop, engine_config);
    udp_server = std::make_unique<resolver::UdpServer>(server, *engine, 53);
    upstream = std::make_unique<UdpResolverClient>(
        client, simnet::Address{server.id(), 53});
    cache = std::make_unique<CachingResolverClient>(loop, *upstream, config);
  }

  static dns::Name name(const std::string& n) { return dns::Name::parse(n); }
};

TEST_F(CacheTest, SecondLookupIsFreeAndInstant) {
  start();
  cache->resolve(name("a.example.com"), dns::RType::kA, {});
  loop.run();
  EXPECT_EQ(cache->stats().misses, 1u);

  ResolutionResult hit;
  const auto id = cache->resolve(name("a.example.com"), dns::RType::kA,
                                 [&](const ResolutionResult& r) { hit = r; });
  // Synchronous: no loop.run() needed.
  EXPECT_TRUE(hit.success);
  EXPECT_EQ(hit.resolution_time(), 0);
  EXPECT_EQ(cache->stats().hits, 1u);
  EXPECT_EQ(cache->result(id).cost.wire_bytes, 0u);  // nothing on the wire
  EXPECT_EQ(std::get<dns::ARdata>(hit.response.answers.at(0).rdata)
                .to_string(),
            "192.0.2.1");
}

TEST_F(CacheTest, TtlExpiryForcesRefetch) {
  start();
  cache->resolve(name("a.example.com"), dns::RType::kA, {});
  loop.run();
  // Advance virtual time past the 300s TTL.
  loop.schedule_in(simnet::seconds(301), []() {});
  loop.run();
  cache->resolve(name("a.example.com"), dns::RType::kA, {});
  loop.run();
  EXPECT_EQ(cache->stats().misses, 2u);
  EXPECT_EQ(cache->stats().expirations, 1u);
}

TEST_F(CacheTest, DistinctTypesAreDistinctEntries) {
  start();
  cache->resolve(name("a.example.com"), dns::RType::kA, {});
  loop.run();
  cache->resolve(name("a.example.com"), dns::RType::kTXT, {});
  loop.run();
  EXPECT_EQ(cache->stats().misses, 2u);
  EXPECT_EQ(cache->size(), 2u);
}

TEST_F(CacheTest, CapacityEvictionIsFifo) {
  CacheConfig config;
  config.max_entries = 3;
  start(config);
  for (int i = 0; i < 4; ++i) {
    cache->resolve(name("n" + std::to_string(i) + ".example.com"),
                   dns::RType::kA, {});
    loop.run();
  }
  EXPECT_EQ(cache->stats().evictions, 1u);
  EXPECT_EQ(cache->size(), 3u);
  // n0 was evicted: looking it up again misses.
  cache->resolve(name("n0.example.com"), dns::RType::kA, {});
  loop.run();
  EXPECT_EQ(cache->stats().misses, 5u);
  // n3 is still cached.
  cache->resolve(name("n3.example.com"), dns::RType::kA, {});
  EXPECT_EQ(cache->stats().hits, 1u);
}

TEST_F(CacheTest, TtlClampObeyed) {
  CacheConfig config;
  config.max_ttl = simnet::seconds(10);
  start(config);
  cache->resolve(name("a.example.com"), dns::RType::kA, {});
  loop.run();
  loop.schedule_in(simnet::seconds(11), []() {});
  loop.run();
  cache->resolve(name("a.example.com"), dns::RType::kA, {});
  loop.run();
  EXPECT_EQ(cache->stats().misses, 2u);  // expired despite 300s record TTL
}

TEST_F(CacheTest, HitRatioOnZipfWorkload) {
  start();
  stats::ZipfSampler zipf(50, 1.2, 99);
  for (int i = 0; i < 500; ++i) {
    cache->resolve(name("tp" + std::to_string(zipf.sample()) + ".example"),
                   dns::RType::kA, {});
    loop.run();
  }
  // A hot-headed workload should mostly hit.
  EXPECT_GT(cache->stats().hit_ratio(), 0.8);
}

// --- fallback ---------------------------------------------------------------------

class FallbackTest : public TwoHostFixture {
 protected:
  resolver::EngineConfig engine_config;
  std::unique_ptr<resolver::Engine> engine;
  std::unique_ptr<resolver::UdpServer> udp_server;
  std::unique_ptr<resolver::DohServer> doh_server;
  std::unique_ptr<DohClient> doh;
  std::unique_ptr<UdpResolverClient> udp;
  std::unique_ptr<FallbackResolverClient> trr;

  void start(bool doh_server_up, FallbackConfig config = {},
             simnet::TimeUs doh_frontend_delay = 0) {
    engine = std::make_unique<resolver::Engine>(loop, engine_config);
    udp_server = std::make_unique<resolver::UdpServer>(server, *engine, 53);
    if (doh_server_up) {
      resolver::DohServerConfig doh_config;
      doh_config.tls.chain = tlssim::CertificateChain::cloudflare();
      doh_config.frontend_delay = doh_frontend_delay;
      doh_server = std::make_unique<resolver::DohServer>(server, *engine,
                                                         doh_config, 443);
    }
    DohClientConfig client_config;
    client_config.server_name = "cloudflare-dns.com";
    doh = std::make_unique<DohClient>(
        client, simnet::Address{server.id(), 443}, client_config);
    udp = std::make_unique<UdpResolverClient>(
        client, simnet::Address{server.id(), 53});
    trr = std::make_unique<FallbackResolverClient>(loop, *doh, *udp, config);
  }

  static dns::Name name(const std::string& n) { return dns::Name::parse(n); }
};

TEST_F(FallbackTest, HealthyPrimaryWins) {
  start(/*doh_server_up=*/true);
  ResolutionResult observed;
  trr->resolve(name("a.example.com"), dns::RType::kA,
               [&](const ResolutionResult& r) { observed = r; });
  loop.run();
  EXPECT_TRUE(observed.success);
  EXPECT_EQ(trr->stats().primary_wins, 1u);
  EXPECT_EQ(trr->stats().fallback_used, 0u);
  // The UDP client was never touched.
  EXPECT_EQ(udp->completed(), 0u);
}

TEST_F(FallbackTest, DeadPrimaryFallsBackImmediately) {
  start(/*doh_server_up=*/false);  // nothing on 443 -> TCP RST
  ResolutionResult observed;
  trr->resolve(name("a.example.com"), dns::RType::kA,
               [&](const ResolutionResult& r) { observed = r; });
  loop.run();
  EXPECT_TRUE(observed.success);  // answered by UDP
  EXPECT_EQ(trr->stats().fallback_used, 1u);
  // Far faster than the 1500ms deadline: the RST triggers fallback early.
  EXPECT_LT(observed.resolution_time(), simnet::ms(200));
}

TEST_F(FallbackTest, SlowPrimaryFallsBackAtDeadline) {
  // Only the DoH path is slow (a congested HTTPS front-end); UDP is fine.
  FallbackConfig config;
  config.primary_deadline = simnet::ms(500);
  start(/*doh_server_up=*/true, config,
        /*doh_frontend_delay=*/simnet::seconds(10));
  ResolutionResult observed;
  trr->resolve(name("a.example.com"), dns::RType::kA,
               [&](const ResolutionResult& r) { observed = r; });
  loop.run();
  EXPECT_TRUE(observed.success);
  EXPECT_EQ(trr->stats().fallback_used, 1u);
  // Deadline (500ms) + one UDP round trip, far less than the DoH delay.
  EXPECT_GE(observed.resolution_time(), simnet::ms(500));
  EXPECT_LT(observed.resolution_time(), simnet::ms(700));
}

TEST_F(FallbackTest, BothDeadFails) {
  start(/*doh_server_up=*/false);
  udp_server.reset();  // kill UDP too
  UdpClientConfig udp_config;
  udp_config.timeout = simnet::ms(300);
  udp = std::make_unique<UdpResolverClient>(
      client, simnet::Address{server.id(), 53}, udp_config);
  trr = std::make_unique<FallbackResolverClient>(loop, *doh, *udp);
  ResolutionResult observed;
  observed.success = true;
  trr->resolve(name("a.example.com"), dns::RType::kA,
               [&](const ResolutionResult& r) { observed = r; });
  loop.run();
  EXPECT_FALSE(observed.success);
  EXPECT_EQ(trr->stats().both_failed, 1u);
}

TEST_F(FallbackTest, ManyQueriesMixedHealth) {
  // Every 3rd query delayed past the deadline: those fall back, the rest
  // resolve via DoH.
  engine_config.delay_policy.every_n = 3;
  engine_config.delay_policy.delay = simnet::seconds(5);
  FallbackConfig config;
  config.primary_deadline = simnet::ms(400);
  start(/*doh_server_up=*/true, config);
  int succeeded = 0;
  for (int i = 0; i < 12; ++i) {
    trr->resolve(name("q" + std::to_string(i) + ".example.com"),
                 dns::RType::kA, [&](const ResolutionResult& r) {
                   if (r.success) ++succeeded;
                 });
    loop.run();
  }
  EXPECT_EQ(succeeded, 12);
  EXPECT_GT(trr->stats().fallback_used, 0u);
  EXPECT_GT(trr->stats().primary_wins, 0u);
  EXPECT_EQ(trr->stats().primary_wins + trr->stats().fallback_used, 12u);
}

TEST_F(FallbackTest, CacheOverFallbackComposes) {
  // The decorators stack: cache -> fallback -> (DoH | UDP).
  start(/*doh_server_up=*/true);
  CachingResolverClient cached(loop, *trr, {});
  cached.resolve(name("hot.example.com"), dns::RType::kA, {});
  loop.run();
  ResolutionResult hit;
  cached.resolve(name("hot.example.com"), dns::RType::kA,
                 [&](const ResolutionResult& r) { hit = r; });
  EXPECT_TRUE(hit.success);
  EXPECT_EQ(hit.resolution_time(), 0);
  EXPECT_EQ(cached.stats().hits, 1u);
}

}  // namespace
}  // namespace dohperf::core
