#include <gtest/gtest.h>

#include "http2/connection.hpp"
#include "sim_fixture.hpp"

namespace dohperf::http2 {
namespace {

using dohperf::testing::TwoHostFixture;
using simnet::Bytes;

// --- frame codec -------------------------------------------------------------------

TEST(FrameCodec, RoundTrip) {
  Frame f;
  f.type = FrameType::kHeaders;
  f.flags = kFlagEndHeaders | kFlagEndStream;
  f.stream_id = 7;
  f.payload = Bytes{1, 2, 3};
  const Bytes wire = encode_frame(f);
  EXPECT_EQ(wire.size(), kFrameHeaderBytes + 3);

  FrameReader reader;
  reader.feed(wire);
  const auto out = reader.next();
  ASSERT_TRUE(out);
  EXPECT_EQ(out->type, FrameType::kHeaders);
  EXPECT_EQ(out->flags, f.flags);
  EXPECT_EQ(out->stream_id, 7u);
  EXPECT_EQ(out->payload, f.payload);
}

TEST(FrameCodec, IncrementalFeed) {
  Frame f;
  f.type = FrameType::kData;
  f.stream_id = 3;
  f.payload = Bytes(100, 9);
  const Bytes wire = encode_frame(f);
  FrameReader reader;
  for (std::size_t i = 0; i < wire.size(); ++i) {
    EXPECT_FALSE(reader.next().has_value() && i + 1 < wire.size());
    reader.feed(std::span(&wire[i], 1));
  }
  EXPECT_TRUE(reader.next().has_value());
}

TEST(FrameCodec, OversizedFrameThrows) {
  Frame f;
  f.type = FrameType::kData;
  f.payload = Bytes(20000, 0);
  FrameReader reader;
  reader.feed(encode_frame(f));
  EXPECT_THROW(reader.next(kDefaultMaxFrameSize), WireError);
}

TEST(FrameCodec, PrefaceConsumption) {
  FrameReader reader;
  reader.feed(dns::to_bytes(std::string(kConnectionPreface)));
  EXPECT_TRUE(reader.consume_preface());
  EXPECT_EQ(reader.buffered(), 0u);
}

TEST(FrameCodec, BadPrefaceThrows) {
  FrameReader reader;
  reader.feed(dns::to_bytes("GET / HTTP/1.1\r\n\r\nxxxxxxxx"));
  EXPECT_THROW(reader.consume_preface(), WireError);
}

// --- connection ---------------------------------------------------------------------

class Http2Test : public TwoHostFixture {
 protected:
  std::unique_ptr<Http2Connection> server_conn;

  /// Echo-style server: answers with the request body, optionally delayed
  /// for paths ending in "/slow".
  void start_server(simnet::TimeUs slow_delay = simnet::ms(500)) {
    server.tcp_listen(443, [this, slow_delay](
                               std::shared_ptr<simnet::TcpConnection> c) {
      server_conn = std::make_unique<Http2Connection>(
          std::make_unique<simnet::TcpByteStream>(std::move(c)),
          Http2Connection::Role::kServer);
      server_conn->set_request_handler(
          [this, slow_delay](const H2Message& request,
                             Http2Connection::Responder respond) {
            std::string path;
            for (const auto& f : request.headers) {
              if (f.name == ":path") path = f.value;
            }
            H2Message response;
            response.headers.push_back({":status", "200"});
            response.headers.push_back({"server", "test"});
            response.body = request.body.empty()
                                ? dns::to_bytes("echo:" + path)
                                : request.body;
            if (path == "/slow") {
              loop.schedule_in(slow_delay,
                               [respond = std::move(respond),
                                r = std::move(response)]() mutable {
                                 respond(std::move(r));
                               });
            } else {
              respond(std::move(response));
            }
          });
    });
  }

  std::unique_ptr<Http2Connection> make_client(Http2Config config = {}) {
    return std::make_unique<Http2Connection>(
        std::make_unique<simnet::TcpByteStream>(
            client.tcp_connect({server.id(), 443})),
        Http2Connection::Role::kClient, config);
  }

  static H2Message request_for(const std::string& path, Bytes body = {}) {
    H2Message m;
    m.headers = {{":method", body.empty() ? "GET" : "POST"},
                 {":scheme", "https"},
                 {":authority", "test"},
                 {":path", path}};
    if (!body.empty()) {
      m.headers.push_back({"content-length", std::to_string(body.size())});
    }
    m.body = std::move(body);
    return m;
  }
};

TEST_F(Http2Test, SimpleExchange) {
  start_server();
  auto http = make_client();
  std::string body;
  std::string status;
  http->request(request_for("/x"), [&](const H2Message& resp) {
    body = dns::to_string(resp.body);
    for (const auto& f : resp.headers) {
      if (f.name == ":status") status = f.value;
    }
  });
  loop.run();
  EXPECT_EQ(body, "echo:/x");
  EXPECT_EQ(status, "200");
}

TEST_F(Http2Test, PostBodyRoundTrip) {
  start_server();
  auto http = make_client();
  Bytes echoed;
  http->request(request_for("/post", Bytes{9, 8, 7}),
                [&](const H2Message& resp) { echoed = resp.body; });
  loop.run();
  EXPECT_EQ(echoed, (Bytes{9, 8, 7}));
}

TEST_F(Http2Test, ManyStreamsOneConnection) {
  start_server();
  auto http = make_client();
  int responses = 0;
  for (int i = 0; i < 20; ++i) {
    http->request(request_for("/r" + std::to_string(i)),
                  [&](const H2Message&) { ++responses; });
  }
  loop.run();
  EXPECT_EQ(responses, 20);
  EXPECT_EQ(http->open_streams(), 0u);
}

TEST_F(Http2Test, NoHeadOfLineBlocking) {
  // The defining difference from HTTP/1.1 (Fig 2): a delayed stream does
  // NOT hold back later streams.
  start_server(simnet::ms(500));
  auto http = make_client();
  simnet::TimeUs slow_done = 0;
  simnet::TimeUs fast_done = 0;
  http->request(request_for("/slow"),
                [&](const H2Message&) { slow_done = loop.now(); });
  http->request(request_for("/fast"),
                [&](const H2Message&) { fast_done = loop.now(); });
  loop.run();
  EXPECT_LT(fast_done, slow_done);       // fast overtakes
  EXPECT_LT(fast_done, simnet::ms(100)); // not delayed at all
  EXPECT_GT(slow_done, simnet::ms(500));
}

TEST_F(Http2Test, LargeBodyFlowControlled) {
  start_server();
  auto http = make_client();
  // 200 KB exceeds the 64 KB connection/stream windows: requires
  // WINDOW_UPDATE round trips to drain.
  Bytes big(200 * 1024);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<std::uint8_t>(i % 251);
  }
  Bytes echoed;
  http->request(request_for("/big", big),
                [&](const H2Message& resp) { echoed = resp.body; });
  loop.run();
  EXPECT_EQ(echoed, big);
  // Flow control must have generated WINDOW_UPDATE traffic.
  EXPECT_GT(http->counters().mgmt_bytes_received, 100u);
}

TEST_F(Http2Test, PingRoundTrip) {
  start_server();
  auto http = make_client();
  bool acked = false;
  http->ping([&]() { acked = true; });
  loop.run();
  EXPECT_TRUE(acked);
}

TEST_F(Http2Test, GoawayClosesTransport) {
  start_server();
  auto http = make_client();
  http->request(request_for("/x"), [](const H2Message&) {});
  loop.run();
  http->close();
  loop.run();
  EXPECT_FALSE(http->is_open());
}

TEST_F(Http2Test, CounterConvention) {
  start_server();
  auto http = make_client();
  http->request(request_for("/post", Bytes(100, 1)),
                [](const H2Message&) {});
  loop.run();
  const auto& c = http->counters();
  EXPECT_EQ(c.body_bytes_sent, 100u);
  EXPECT_GT(c.header_bytes_sent, 0u);
  // Preface + SETTINGS + SETTINGS-ack + DATA frame header.
  EXPECT_GE(c.mgmt_bytes_sent,
            kConnectionPreface.size() + 2 * kFrameHeaderBytes);
  EXPECT_EQ(c.requests, 1u);
  EXPECT_EQ(c.responses, 1u);
}

TEST_F(Http2Test, HpackShrinksRepeatedRequests) {
  start_server();
  auto http = make_client();
  // Realistic DoH-sized header set (what Fig 5's "differential headers"
  // effect acts on).
  const auto rich_request = []() {
    H2Message m = request_for("/dns-query");
    m.headers.push_back({"accept", "application/dns-message"});
    m.headers.push_back({"user-agent", "dohperf/1.0 (experiment-rig)"});
    m.headers.push_back({"accept-language", "en-US,en;q=0.5"});
    return m;
  };
  http->request(rich_request(), [](const H2Message&) {});
  loop.run();
  const auto first_headers = http->counters().header_bytes_sent;
  http->request(rich_request(), [](const H2Message&) {});
  loop.run();
  const auto second_headers =
      http->counters().header_bytes_sent - first_headers;
  EXPECT_LT(second_headers, first_headers / 2);
}

TEST_F(Http2Test, DisabledHpackTableNoShrink) {
  start_server();
  Http2Config config;
  config.enable_hpack_dynamic_table = false;
  auto http = make_client(config);
  http->request(request_for("/same"), [](const H2Message&) {});
  loop.run();
  const auto first_headers = http->counters().header_bytes_sent;
  http->request(request_for("/same"), [](const H2Message&) {});
  loop.run();
  const auto second_headers =
      http->counters().header_bytes_sent - first_headers;
  // Still static-table compressed, but no differential win.
  EXPECT_GT(second_headers, first_headers / 2);
}

TEST_F(Http2Test, RequestBeforeTransportOpenIsQueued) {
  start_server();
  auto http = make_client();
  // Immediately request, before TCP/SETTINGS complete.
  std::string body;
  http->request(request_for("/early"), [&](const H2Message& resp) {
    body = dns::to_string(resp.body);
  });
  loop.run();
  EXPECT_EQ(body, "echo:/early");
}

TEST_F(Http2Test, ErrorHandlerFiresOnTransportLoss) {
  start_server(simnet::ms(1000));
  auto http = make_client();
  bool error = false;
  http->set_error_handler([&]() { error = true; });
  http->request(request_for("/slow"), [](const H2Message&) {});
  loop.run_until(simnet::ms(200));
  server_conn->close();  // GOAWAY + close with a stream outstanding
  loop.run();
  EXPECT_TRUE(error);
}

}  // namespace
}  // namespace dohperf::http2
