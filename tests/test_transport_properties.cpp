// Parameterized transport sweeps: TCP transfer correctness across payload
// sizes x loss rates x ack policies, TLS negotiation across the full
// client-range x server-set matrix, and failure injection.
#include <gtest/gtest.h>

#include <numeric>

#include "sim_fixture.hpp"
#include "simnet/stream.hpp"
#include "tlssim/connection.hpp"

namespace dohperf {
namespace {

using simnet::Bytes;

// --- TCP transfer matrix -------------------------------------------------------

struct TcpCase {
  std::size_t bytes;
  double loss;
  bool delayed_ack;
  bool timestamps;
};

void PrintTo(const TcpCase& c, std::ostream* os) {
  *os << c.bytes << "B loss=" << c.loss
      << (c.delayed_ack ? " dack" : " nodack")
      << (c.timestamps ? " ts" : " nots");
}

class TcpTransferMatrix : public ::testing::TestWithParam<TcpCase> {};

TEST_P(TcpTransferMatrix, DeliversExactlyOnceInOrder) {
  const auto param = GetParam();
  simnet::EventLoop loop;
  simnet::Network net(loop, 1234);
  simnet::Host a(net, "a");
  simnet::Host b(net, "b");
  simnet::LinkConfig link;
  link.latency = simnet::ms(5);
  link.loss_rate = param.loss;
  net.connect(a.id(), b.id(), link);

  simnet::TcpConfig config;
  config.delayed_ack = param.delayed_ack;
  config.timestamps = param.timestamps;

  Bytes received;
  std::shared_ptr<simnet::TcpConnection> accepted;
  b.tcp_listen(
      80,
      [&](std::shared_ptr<simnet::TcpConnection> c) {
        accepted = c;
        simnet::TcpCallbacks cbs;
        cbs.on_data = [&received](std::span<const std::uint8_t> d) {
          received.insert(received.end(), d.begin(), d.end());
        };
        c->set_callbacks(std::move(cbs));
      },
      config);

  Bytes sent(param.bytes);
  std::iota(sent.begin(), sent.end(), 0);
  auto conn = a.tcp_connect({b.id(), 80}, config);
  simnet::TcpCallbacks cbs;
  cbs.on_connected = [&conn, &sent]() { conn->send(sent); };
  conn->set_callbacks(std::move(cbs));
  loop.run();

  EXPECT_EQ(received, sent);
  // Conservation: payload bytes received at B equal payload delivered.
  EXPECT_GE(accepted->counters().payload_bytes_received, param.bytes);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, TcpTransferMatrix,
    ::testing::Values(
        TcpCase{1, 0.0, true, true}, TcpCase{1459, 0.0, true, true},
        TcpCase{1460, 0.0, true, true}, TcpCase{1461, 0.0, true, true},
        TcpCase{50000, 0.0, true, true}, TcpCase{50000, 0.0, false, true},
        TcpCase{50000, 0.0, true, false}, TcpCase{20000, 0.1, true, true},
        TcpCase{20000, 0.3, true, true}, TcpCase{5000, 0.3, false, false},
        TcpCase{200000, 0.05, true, true}));

// --- bidirectional transfer under loss --------------------------------------------

class TcpBidirectional : public ::testing::TestWithParam<double> {};

TEST_P(TcpBidirectional, EchoSurvivesLoss) {
  simnet::EventLoop loop;
  simnet::Network net(loop, 777);
  simnet::Host a(net, "a");
  simnet::Host b(net, "b");
  simnet::LinkConfig link;
  link.latency = simnet::ms(3);
  link.loss_rate = GetParam();
  net.connect(a.id(), b.id(), link);

  b.tcp_listen(80, [](std::shared_ptr<simnet::TcpConnection> c) {
    simnet::TcpCallbacks cbs;
    cbs.on_data = [c](std::span<const std::uint8_t> d) {
      c->send(Bytes(d.begin(), d.end()));
    };
    c->set_callbacks(std::move(cbs));
  });

  Bytes sent(30000, 0x3c);
  Bytes echoed;
  auto conn = a.tcp_connect({b.id(), 80});
  simnet::TcpCallbacks cbs;
  cbs.on_connected = [&conn, &sent]() { conn->send(sent); };
  cbs.on_data = [&echoed](std::span<const std::uint8_t> d) {
    echoed.insert(echoed.end(), d.begin(), d.end());
  };
  conn->set_callbacks(std::move(cbs));
  loop.run();
  EXPECT_EQ(echoed, sent);
}

INSTANTIATE_TEST_SUITE_P(LossRates, TcpBidirectional,
                         ::testing::Values(0.0, 0.05, 0.15, 0.3));

// --- TLS negotiation matrix ---------------------------------------------------------

using tlssim::TlsVersion;

struct TlsMatrixCase {
  TlsVersion client_min;
  TlsVersion client_max;
  std::set<TlsVersion> server;
  bool expect_success;
  TlsVersion expect_version;  // meaningful when success
};

void PrintTo(const TlsMatrixCase& c, std::ostream* os) {
  *os << tlssim::to_string(c.client_min) << ".."
      << tlssim::to_string(c.client_max) << " vs server{" << c.server.size()
      << "}";
}

class TlsNegotiationMatrix : public ::testing::TestWithParam<TlsMatrixCase> {
};

TEST_P(TlsNegotiationMatrix, OutcomeMatchesSpec) {
  const auto param = GetParam();
  simnet::EventLoop loop;
  simnet::Network net(loop);
  simnet::Host client(net, "c");
  simnet::Host server(net, "s");
  net.connect(client.id(), server.id(), {});

  tlssim::ServerConfig server_config;
  server_config.versions = param.server;
  std::unique_ptr<tlssim::TlsConnection> server_tls;
  server.tcp_listen(443, [&](std::shared_ptr<simnet::TcpConnection> c) {
    server_tls = std::make_unique<tlssim::TlsConnection>(
        std::make_unique<simnet::TcpByteStream>(std::move(c)),
        &server_config);
    server_tls->set_handlers({});
  });

  tlssim::ClientConfig client_config;
  client_config.min_version = param.client_min;
  client_config.max_version = param.client_max;
  tlssim::TlsConnection tls(
      std::make_unique<simnet::TcpByteStream>(
          client.tcp_connect({server.id(), 443})),
      std::move(client_config));
  tls.set_handlers({});
  loop.run();

  EXPECT_EQ(tls.established(), param.expect_success);
  if (param.expect_success) {
    EXPECT_EQ(tls.version(), param.expect_version);
    ASSERT_TRUE(server_tls);
    EXPECT_EQ(server_tls->version(), param.expect_version);
  } else {
    EXPECT_TRUE(tls.failed());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, TlsNegotiationMatrix,
    ::testing::Values(
        // Modern client vs modern server: 1.3.
        TlsMatrixCase{TlsVersion::kTls12, TlsVersion::kTls13,
                      {TlsVersion::kTls12, TlsVersion::kTls13},
                      true, TlsVersion::kTls13},
        // Modern client vs 1.2-only server (CleanBrowsing).
        TlsMatrixCase{TlsVersion::kTls12, TlsVersion::kTls13,
                      {TlsVersion::kTls12}, true, TlsVersion::kTls12},
        // Legacy-tolerant client vs legacy server picks the highest common.
        TlsMatrixCase{TlsVersion::kTls10, TlsVersion::kTls13,
                      {TlsVersion::kTls10, TlsVersion::kTls11,
                       TlsVersion::kTls12},
                      true, TlsVersion::kTls12},
        // Strict 1.3-only client vs 1.2-only server: failure.
        TlsMatrixCase{TlsVersion::kTls13, TlsVersion::kTls13,
                      {TlsVersion::kTls12}, false, TlsVersion::kTls12},
        // Single-version probe, supported (the Table 2 walk).
        TlsMatrixCase{TlsVersion::kTls11, TlsVersion::kTls11,
                      {TlsVersion::kTls10, TlsVersion::kTls11,
                       TlsVersion::kTls12, TlsVersion::kTls13},
                      true, TlsVersion::kTls11},
        // Single-version probe, unsupported.
        TlsMatrixCase{TlsVersion::kTls10, TlsVersion::kTls10,
                      {TlsVersion::kTls12, TlsVersion::kTls13}, false,
                      TlsVersion::kTls12},
        // Disjoint non-contiguous server set still negotiates in range.
        TlsMatrixCase{TlsVersion::kTls10, TlsVersion::kTls12,
                      {TlsVersion::kTls11, TlsVersion::kTls13}, true,
                      TlsVersion::kTls11}));

// --- failure injection ---------------------------------------------------------------

class FailureInjection : public dohperf::testing::TwoHostFixture {};

TEST_F(FailureInjection, TlsHandshakeSurvivesHeavyLoss) {
  simnet::LinkConfig lossy;
  lossy.latency = simnet::ms(5);
  lossy.loss_rate = 0.25;
  net.reconfigure(client.id(), server.id(), lossy);

  tlssim::ServerConfig server_config;
  std::unique_ptr<tlssim::TlsConnection> server_tls;
  server.tcp_listen(443, [&](std::shared_ptr<simnet::TcpConnection> c) {
    server_tls = std::make_unique<tlssim::TlsConnection>(
        std::make_unique<simnet::TcpByteStream>(std::move(c)),
        &server_config);
    tlssim::TlsConnection::Handlers sh;
    sh.on_data = [&](std::span<const std::uint8_t> d) {
      server_tls->send(Bytes(d.begin(), d.end()));  // echo
    };
    server_tls->set_handlers(std::move(sh));
  });

  Bytes echoed;
  tlssim::TlsConnection tls(
      std::make_unique<simnet::TcpByteStream>(
          client.tcp_connect({server.id(), 443})),
      tlssim::ClientConfig{});
  tlssim::TlsConnection::Handlers h;
  h.on_open = [&tls]() { tls.send(Bytes{1, 2, 3}); };
  h.on_data = [&](std::span<const std::uint8_t> d) {
    echoed.assign(d.begin(), d.end());
  };
  tls.set_handlers(std::move(h));
  loop.run();
  // TCP retransmission makes TLS oblivious to the loss.
  EXPECT_TRUE(tls.established());
  EXPECT_EQ(echoed, (Bytes{1, 2, 3}));
}

TEST_F(FailureInjection, TcpResetMidHandshakeFailsTlsCleanly) {
  // No listener on 443: the SYN is answered with RST; the TLS client must
  // report closure, not hang or crash.
  bool closed = false;
  tlssim::TlsConnection tls(
      std::make_unique<simnet::TcpByteStream>(
          client.tcp_connect({server.id(), 443})),
      tlssim::ClientConfig{});
  tlssim::TlsConnection::Handlers h;
  h.on_close = [&]() { closed = true; };
  tls.set_handlers(std::move(h));
  loop.run();
  EXPECT_TRUE(closed);
  EXPECT_FALSE(tls.established());
}

TEST_F(FailureInjection, AbortDuringTransferReportsReset) {
  std::shared_ptr<simnet::TcpConnection> accepted;
  server.tcp_listen(80, [&](std::shared_ptr<simnet::TcpConnection> c) {
    accepted = c;
    c->set_callbacks({});
  });
  auto conn = client.tcp_connect({server.id(), 80});
  bool reset = false;
  simnet::TcpCallbacks cbs;
  cbs.on_connected = [&conn]() { conn->send(Bytes(100000, 1)); };
  cbs.on_reset = [&]() { reset = true; };
  conn->set_callbacks(std::move(cbs));
  loop.run_until(simnet::ms(25));
  ASSERT_TRUE(accepted);
  accepted->abort();  // RST mid-transfer
  loop.run();
  EXPECT_TRUE(reset);
  EXPECT_EQ(conn->state(), simnet::TcpState::kClosed);
}

TEST_F(FailureInjection, GarbageToTlsServerIsRejected) {
  tlssim::ServerConfig server_config;
  std::unique_ptr<tlssim::TlsConnection> server_tls;
  server.tcp_listen(443, [&](std::shared_ptr<simnet::TcpConnection> c) {
    server_tls = std::make_unique<tlssim::TlsConnection>(
        std::make_unique<simnet::TcpByteStream>(std::move(c)),
        &server_config);
    server_tls->set_handlers({});
  });
  // Raw TCP client sends non-TLS garbage.
  auto conn = client.tcp_connect({server.id(), 443});
  simnet::TcpCallbacks cbs;
  cbs.on_connected = [&conn]() {
    conn->send(dns::to_bytes("GET / HTTP/1.1\r\n\r\n"));
  };
  conn->set_callbacks(std::move(cbs));
  // The server will throw WireError inside the event loop — a real server
  // would tear the connection down; here we just require no crash/UB and
  // that the handshake never completes.
  try {
    loop.run();
  } catch (const dns::WireError&) {
    // acceptable: surfaced garbage
  }
  ASSERT_TRUE(server_tls);
  EXPECT_FALSE(server_tls->established());
}

}  // namespace
}  // namespace dohperf
