#include <gtest/gtest.h>

#include "http1/client.hpp"
#include "http1/server.hpp"
#include "sim_fixture.hpp"

namespace dohperf::http1 {
namespace {

using dohperf::testing::TwoHostFixture;
using simnet::Bytes;

// --- message serialization / parsing --------------------------------------------

TEST(HeaderMap, CaseInsensitiveLookup) {
  HeaderMap h;
  h.add("Content-Type", "text/plain");
  EXPECT_EQ(h.get("content-type"), "text/plain");
  EXPECT_EQ(h.get("CONTENT-TYPE"), "text/plain");
  EXPECT_FALSE(h.get("missing").has_value());
}

TEST(HeaderMap, SetReplacesFirst) {
  HeaderMap h;
  h.add("X", "1");
  h.set("x", "2");
  EXPECT_EQ(h.get("X"), "2");
  EXPECT_EQ(h.size(), 1u);
  h.set("Y", "3");
  EXPECT_EQ(h.size(), 2u);
}

TEST(Message, RequestSerialization) {
  Request req;
  req.method = "POST";
  req.target = "/dns-query";
  req.headers.add("Host", "doh.example");
  req.body = dns::to_bytes("payload");
  WireSizes sizes;
  const Bytes wire = serialize(req, &sizes);
  const std::string text = dns::to_string(wire);
  EXPECT_EQ(text.find("POST /dns-query HTTP/1.1\r\n"), 0u);
  EXPECT_NE(text.find("Content-Length: 7\r\n"), std::string::npos);
  EXPECT_NE(text.find("\r\n\r\npayload"), std::string::npos);
  EXPECT_EQ(sizes.body_bytes, 7u);
  EXPECT_EQ(sizes.header_bytes + sizes.body_bytes, wire.size());
}

TEST(Message, ParserHandlesArbitraryChunking) {
  Response resp;
  resp.status = 200;
  resp.headers.add("Content-Type", "application/dns-message");
  resp.body = Bytes{1, 2, 3, 4, 5};
  const Bytes wire = serialize(resp);

  // Feed one byte at a time.
  Parser parser(Parser::Mode::kResponse);
  std::optional<Response> out;
  for (std::size_t i = 0; i < wire.size(); ++i) {
    parser.feed(std::span(&wire[i], 1));
    if (auto r = parser.next_response()) out = std::move(r);
  }
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->status, 200);
  EXPECT_EQ(out->body, (Bytes{1, 2, 3, 4, 5}));
}

TEST(Message, ParserHandlesPipelinedMessages) {
  Request a;
  a.method = "GET";
  a.target = "/first";
  Request b;
  b.method = "GET";
  b.target = "/second";
  Bytes wire = serialize(a);
  const Bytes wb = serialize(b);
  wire.insert(wire.end(), wb.begin(), wb.end());

  Parser parser(Parser::Mode::kRequest);
  parser.feed(wire);
  auto first = parser.next_request();
  auto second = parser.next_request();
  auto third = parser.next_request();
  ASSERT_TRUE(first);
  ASSERT_TRUE(second);
  EXPECT_FALSE(third);
  EXPECT_EQ(first->target, "/first");
  EXPECT_EQ(second->target, "/second");
}

TEST(Message, ParserRejectsGarbage) {
  Parser parser(Parser::Mode::kResponse);
  parser.feed(dns::to_bytes("NOT HTTP AT ALL\r\n\r\n"));
  EXPECT_FALSE(parser.next_response().has_value());
  EXPECT_TRUE(parser.error());
}

TEST(Message, ParserRejectsBadContentLength) {
  Parser parser(Parser::Mode::kResponse);
  parser.feed(dns::to_bytes("HTTP/1.1 200 OK\r\nContent-Length: abc\r\n\r\n"));
  EXPECT_FALSE(parser.next_response().has_value());
  EXPECT_TRUE(parser.error());
}

// --- client/server over simulated TCP ---------------------------------------------

class Http1Test : public TwoHostFixture {
 protected:
  std::unique_ptr<Http1ServerConnection> server_conn;

  /// Server answering /slow after `slow_delay`, everything else instantly.
  void start_server(simnet::TimeUs slow_delay = simnet::ms(500)) {
    server.tcp_listen(80, [this, slow_delay](
                              std::shared_ptr<simnet::TcpConnection> c) {
      server_conn = std::make_unique<Http1ServerConnection>(
          std::make_unique<simnet::TcpByteStream>(std::move(c)),
          [this, slow_delay](const Request& req,
                             Http1ServerConnection::Responder respond) {
            Response resp;
            resp.status = 200;
            resp.headers.add("Content-Type", "text/plain");
            resp.body = dns::to_bytes("answer:" + req.target);
            if (req.target == "/slow") {
              loop.schedule_in(slow_delay,
                               [respond = std::move(respond),
                                r = std::move(resp)]() mutable {
                                 respond(std::move(r));
                               });
            } else {
              respond(std::move(resp));
            }
          });
    });
  }

  std::unique_ptr<Http1Client> make_client(bool pipelining = true) {
    return std::make_unique<Http1Client>(
        std::make_unique<simnet::TcpByteStream>(
            client.tcp_connect({server.id(), 80})),
        pipelining);
  }

  static Request get(const std::string& target) {
    Request r;
    r.method = "GET";
    r.target = target;
    r.headers.add("Host", "test");
    return r;
  }
};

TEST_F(Http1Test, SimpleRequestResponse) {
  start_server();
  auto http = make_client();
  std::string body;
  http->request(get("/hello"), [&](const Response& resp) {
    body = dns::to_string(resp.body);
  });
  loop.run();
  EXPECT_EQ(body, "answer:/hello");
  EXPECT_EQ(http->counters().requests, 1u);
  EXPECT_EQ(http->counters().responses, 1u);
}

TEST_F(Http1Test, PersistentConnectionMultipleRequests) {
  start_server();
  auto http = make_client();
  int responses = 0;
  for (int i = 0; i < 5; ++i) {
    http->request(get("/r" + std::to_string(i)),
                  [&](const Response&) { ++responses; });
  }
  loop.run();
  EXPECT_EQ(responses, 5);
  EXPECT_EQ(http->counters().responses, 5u);
}

TEST_F(Http1Test, ResponsesMatchedInOrder) {
  start_server();
  auto http = make_client();
  std::vector<std::string> bodies;
  for (const char* t : {"/a", "/b", "/c"}) {
    http->request(get(t), [&bodies](const Response& resp) {
      bodies.push_back(dns::to_string(resp.body));
    });
  }
  loop.run();
  EXPECT_EQ(bodies,
            (std::vector<std::string>{"answer:/a", "answer:/b", "answer:/c"}));
}

TEST_F(Http1Test, HeadOfLineBlockingWithPipelining) {
  // A slow first request must delay the (fast) second response: HTTP/1.1
  // responses are ordered (this is the Fig 2 HTTP/1.1 behaviour).
  start_server(simnet::ms(500));
  auto http = make_client(/*pipelining=*/true);
  simnet::TimeUs slow_done = 0;
  simnet::TimeUs fast_done = 0;
  http->request(get("/slow"),
                [&](const Response&) { slow_done = loop.now(); });
  http->request(get("/fast"),
                [&](const Response&) { fast_done = loop.now(); });
  loop.run();
  EXPECT_GT(slow_done, simnet::ms(500));
  EXPECT_GE(fast_done, slow_done);  // blocked behind the slow one
  EXPECT_EQ(server_conn->counters().responses, 2u);
}

TEST_F(Http1Test, WithoutPipeliningRequestsSerialize) {
  start_server(simnet::ms(100));
  auto http = make_client(/*pipelining=*/false);
  simnet::TimeUs first_done = 0;
  simnet::TimeUs second_sent_after = 0;
  http->request(get("/slow"), [&](const Response&) {
    first_done = loop.now();
  });
  http->request(get("/fast"), [&](const Response&) {
    second_sent_after = loop.now();
  });
  // Once the connection is up, only one request may be in flight.
  loop.run_until(simnet::ms(50));
  EXPECT_EQ(http->outstanding(), 1u);
  loop.run();
  EXPECT_GT(second_sent_after, first_done);
}

TEST_F(Http1Test, ServerBuffersOutOfOrderCompletions) {
  start_server(simnet::ms(300));
  auto http = make_client();
  std::vector<std::string> order;
  http->request(get("/slow"),
                [&](const Response&) { order.push_back("slow"); });
  http->request(get("/fast"),
                [&](const Response&) { order.push_back("fast"); });
  // Let the fast response become ready at the server but blocked.
  loop.run_until(simnet::ms(100));
  EXPECT_EQ(server_conn->blocked_responses(), 1u);
  loop.run();
  EXPECT_EQ(order, (std::vector<std::string>{"slow", "fast"}));
}

TEST_F(Http1Test, CountersSplitHeadersAndBody) {
  start_server();
  auto http = make_client();
  http->request(get("/x"), [](const Response&) {});
  loop.run();
  const auto& c = http->counters();
  EXPECT_GT(c.header_bytes_sent, 0u);
  EXPECT_EQ(c.body_bytes_sent, 0u);  // GET has no body
  EXPECT_GT(c.header_bytes_received, 0u);
  EXPECT_EQ(c.body_bytes_received, std::string("answer:/x").size());
}

TEST_F(Http1Test, ConnectionCloseWithOutstandingRequestsErrors) {
  start_server();
  auto http = make_client();
  bool error = false;
  http->set_error_handler([&]() { error = true; });
  http->request(get("/slow"), [](const Response&) {});
  loop.run_until(simnet::ms(50));
  server_conn->close();
  loop.run();
  EXPECT_TRUE(error);
}

}  // namespace
}  // namespace dohperf::http1
