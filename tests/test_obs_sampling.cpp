// Unit tests for production-rate observability: deterministic trace
// sampling (same-seed byte-identical exports, shard-partition invariance,
// kept-root subtree completeness), the pre-registered MetricId fast path
// (exports byte-identical to the name-keyed path, including merge_from
// over a mixed fleet), and the pooled span/attribute storage counters.
// EXPERIMENTS.md's "Metric-name contract" section points here for the
// MetricId-vs-name equivalence guarantee.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "obs/export.hpp"
#include "obs/registry.hpp"
#include "obs/sampling.hpp"
#include "obs/span.hpp"

namespace dohperf::obs {
namespace {

// One unit of instrumented work — a root span with the usual subtree and
// a couple of metrics, keyed by `key` so runs are comparable span-for-span.
void run_unit(SamplingTracer& sampler, Registry& registry,
              std::uint64_t key) {
  const SpanContext obs = sampler.root_context(key);
  const SpanId root = obs.begin("resolution");
  obs.set_attr(root, "query", "q" + std::to_string(key));
  const SpanContext in_root = obs.child(root);
  const SpanId connect = in_root.begin("connect");
  in_root.set_attr(connect, "transport", "doh-h2");
  in_root.end(connect);
  const SpanId request = in_root.begin("request");
  in_root.add_attr(request, "bytes.wire", std::int64_t(64 + key % 7));
  in_root.end(request);
  obs.end(root);
  registry.add("unit.queries");
  registry.observe("unit.latency_ms", 1.0 + double(key % 5));
}

// --- Sampling determinism ---------------------------------------------------

TEST(SamplingTracer, SameSeedRunsExportByteIdenticalTracesAndMetrics) {
  const SamplingConfig config{/*period=*/8, /*seed=*/1234};
  std::string trace[2], metrics[2];
  for (int run = 0; run < 2; ++run) {
    Tracer tracer;
    Registry registry;
    SamplingTracer sampler(tracer, &registry, config);
    for (std::uint64_t key = 0; key < 200; ++key) {
      run_unit(sampler, registry, key);
    }
    trace[run] = chrome_trace_json(tracer);
    metrics[run] = registry.to_json().dump();
  }
  EXPECT_EQ(trace[0], trace[1]);
  EXPECT_EQ(metrics[0], metrics[1]);
}

TEST(SamplingTracer, SeedChangesTheKeptSubset) {
  const SamplingConfig a{/*period=*/8, /*seed=*/1};
  const SamplingConfig b{/*period=*/8, /*seed=*/2};
  std::set<std::uint64_t> kept_a, kept_b;
  for (std::uint64_t key = 0; key < 512; ++key) {
    if (SamplingTracer::keep(a, key)) kept_a.insert(key);
    if (SamplingTracer::keep(b, key)) kept_b.insert(key);
  }
  EXPECT_FALSE(kept_a.empty());
  EXPECT_FALSE(kept_b.empty());
  EXPECT_NE(kept_a, kept_b);
}

TEST(SamplingTracer, PeriodZeroAndOneKeepEveryRoot) {
  for (const std::uint64_t period : {std::uint64_t{0}, std::uint64_t{1}}) {
    const SamplingConfig config{period, /*seed=*/99};
    for (std::uint64_t key = 0; key < 64; ++key) {
      EXPECT_TRUE(SamplingTracer::keep(config, key));
    }
  }
}

// The decision is a pure function of (seed, key): however keys are split
// across shards — contiguous ranges, round-robin, any order — the union of
// per-shard kept sets equals the serial kept set. This is what makes the
// bench's sampled traces byte-identical at every --jobs value.
TEST(SamplingTracer, KeptSubsetIsInvariantUnderShardPartitions) {
  const SamplingConfig config{/*period=*/64, /*seed=*/42};
  const std::uint64_t total = 1000;
  std::set<std::uint64_t> serial;
  for (std::uint64_t key = 0; key < total; ++key) {
    if (SamplingTracer::keep(config, key)) serial.insert(key);
  }
  EXPECT_FALSE(serial.empty());

  std::set<std::uint64_t> contiguous, round_robin;
  const std::uint64_t shards = 4;
  for (std::uint64_t s = 0; s < shards; ++s) {
    const std::uint64_t lo = s * total / shards;
    const std::uint64_t hi = (s + 1) * total / shards;
    for (std::uint64_t key = lo; key < hi; ++key) {
      if (SamplingTracer::keep(config, key)) contiguous.insert(key);
    }
    for (std::uint64_t key = s; key < total; key += shards) {
      if (SamplingTracer::keep(config, key)) round_robin.insert(key);
    }
  }
  EXPECT_EQ(serial, contiguous);
  EXPECT_EQ(serial, round_robin);
}

// --- Root context semantics -------------------------------------------------

TEST(SamplingTracer, KeptRootRecordsItsFullSubtree) {
  const SamplingConfig config{/*period=*/64, /*seed=*/7};
  std::uint64_t kept_key = 0;
  while (!SamplingTracer::keep(config, kept_key)) ++kept_key;

  Tracer tracer;
  Registry registry;
  SamplingTracer sampler(tracer, &registry, config);
  run_unit(sampler, registry, kept_key);

  ASSERT_EQ(tracer.size(), 3u);  // resolution + connect + request
  EXPECT_EQ(tracer.open_spans(), 0u);
  const Span& root = tracer.span(1);
  EXPECT_EQ(root.parent, 0u);
  EXPECT_EQ(root.name, "resolution");
  EXPECT_NE(root.attr("query"), nullptr);
  for (SpanId id = 2; id <= 3; ++id) {
    EXPECT_EQ(tracer.span(id).parent, root.id);
  }
  EXPECT_NE(tracer.span(2).attr("transport"), nullptr);
  EXPECT_NE(tracer.span(3).attr("bytes.wire"), nullptr);
}

TEST(SamplingTracer, DroppedRootIsTheNullSinkButMetricsStillFlow) {
  const SamplingConfig config{/*period=*/64, /*seed=*/7};
  std::uint64_t dropped_key = 0;
  while (SamplingTracer::keep(config, dropped_key)) ++dropped_key;

  Tracer tracer;
  Registry registry;
  SamplingTracer sampler(tracer, &registry, config);
  const SpanContext obs = sampler.root_context(dropped_key);
  EXPECT_FALSE(static_cast<bool>(obs));
  EXPECT_EQ(obs.begin("resolution"), 0u);
  EXPECT_EQ(obs.metrics, &registry);  // metrics path unaffected by drop
  run_unit(sampler, registry, dropped_key);
  EXPECT_TRUE(tracer.empty());
  EXPECT_EQ(registry.counter("unit.queries"), 1u);
}

TEST(SamplingTracer, SelfMetricsPartitionTheRoots) {
  const SamplingConfig config{/*period=*/16, /*seed=*/5};
  Tracer tracer;
  Registry registry;
  SamplingTracer sampler(tracer, &registry, config);
  std::uint64_t expect_kept = 0;
  const std::uint64_t total = 400;
  for (std::uint64_t key = 0; key < total; ++key) {
    if (sampler.keep(key)) ++expect_kept;
    (void)sampler.root_context(key);
  }
  EXPECT_GT(expect_kept, 0u);
  EXPECT_EQ(registry.counter("obs.spans_sampled"), expect_kept);
  EXPECT_EQ(registry.counter("obs.spans_dropped"), total - expect_kept);
}

// --- MetricId fast path vs name-keyed slow path -----------------------------

TEST(Registry, MetricIdWritesExportByteIdenticalToNameKeyedWrites) {
  Registry by_name, by_id;
  const MetricId hits = by_id.register_counter("cache.hits");
  const MetricId depth = by_id.register_gauge("tier.queue_depth");
  const MetricId lat = by_id.register_histogram("tier.latency_ms");
  for (int i = 0; i < 100; ++i) {
    by_name.add("cache.hits", 3);
    by_id.add(hits, 3);
    by_name.set_gauge("tier.queue_depth", i);  // last write wins
    by_id.set_gauge(depth, i);
    by_name.observe("tier.latency_ms", 0.5 * i);
    by_id.observe(lat, 0.5 * i);
  }
  EXPECT_EQ(by_name.to_json().dump(), by_id.to_json().dump());
  EXPECT_EQ(by_name.render(), by_id.render());
  EXPECT_EQ(by_id.counter("cache.hits"), 300u);
  EXPECT_EQ(by_id.gauge("tier.queue_depth"), 99);
}

TEST(Registry, RegistrationAloneLeavesNoTraceInExports) {
  Registry registry;
  (void)registry.register_counter("cache.hits");
  (void)registry.register_gauge("tier.queue_depth");
  (void)registry.register_histogram("tier.latency_ms");
  EXPECT_TRUE(registry.empty());
  EXPECT_EQ(registry.to_json().dump(), Registry{}.to_json().dump());
}

TEST(Registry, ReRegisteringANameReturnsAHandleForTheSameSlot) {
  Registry registry;
  const MetricId a = registry.register_counter("cache.hits");
  const MetricId b = registry.register_counter("cache.hits");
  registry.add(a, 2);
  registry.add(b, 5);
  EXPECT_EQ(registry.counter("cache.hits"), 7u);
}

// merge_from must not care which write path produced each shard: a fleet
// mixing handle-written and name-written registries merges to the same
// bytes as one registry doing all the work through names.
TEST(Registry, MergeFromMixesHandleAndNameWrittenShards) {
  Registry shard_ids;  // hot shard: MetricId writes only
  const MetricId hits = shard_ids.register_counter("cache.hits");
  const MetricId lat = shard_ids.register_histogram("tier.latency_ms");
  for (int i = 0; i < 40; ++i) {
    shard_ids.add(hits);
    shard_ids.observe(lat, 1.0 + i);
  }
  shard_ids.set_gauge(shard_ids.register_gauge("tier.inflight"), 4);

  Registry shard_names;  // cold shard: name-keyed writes only
  for (int i = 0; i < 10; ++i) {
    shard_names.add("cache.hits", 2);
    shard_names.observe("tier.latency_ms", 100.0 + i);
  }
  shard_names.set_gauge("tier.inflight", 9);

  Registry merged;
  merged.merge_from(shard_ids);
  merged.merge_from(shard_names);

  Registry reference;  // the same history, all through the slow path
  for (int i = 0; i < 40; ++i) {
    reference.add("cache.hits");
    reference.observe("tier.latency_ms", 1.0 + i);
  }
  reference.set_gauge("tier.inflight", 4);
  for (int i = 0; i < 10; ++i) {
    reference.add("cache.hits", 2);
    reference.observe("tier.latency_ms", 100.0 + i);
  }
  reference.set_gauge("tier.inflight", 9);

  EXPECT_EQ(merged.to_json().dump(), reference.to_json().dump());
  EXPECT_EQ(merged.counter("cache.hits"), 60u);
  EXPECT_EQ(merged.gauge("tier.inflight"), 9);  // later merge wins
}

TEST(Registry, ClearResetsValuesButHandlesStayValid) {
  Registry registry;
  const MetricId hits = registry.register_counter("cache.hits");
  registry.add(hits, 5);
  registry.clear();
  EXPECT_TRUE(registry.empty());
  registry.add(hits, 2);
  EXPECT_EQ(registry.counter("cache.hits"), 2u);
}

// --- Pooled span storage ----------------------------------------------------

TEST(TracerPool, NamesAreInternedOncePerDistinctString) {
  Tracer tracer;
  const SpanId a = tracer.begin(0, "resolution");
  const SpanId b = tracer.begin(0, std::string("resolution"));
  // Same interned storage: views share a data pointer, not just contents.
  EXPECT_EQ(tracer.span(a).name.data(), tracer.span(b).name.data());
  tracer.set_attr(a, "transport", "udp");
  tracer.set_attr(b, "transport", "doh-h2");
  const PoolStats stats = tracer.pool_stats();
  EXPECT_EQ(stats.interned_names, 2u);  // "resolution" + "transport"
  EXPECT_EQ(stats.spans, 2u);
  EXPECT_EQ(stats.attr_entries, 2u);
}

TEST(TracerPool, ArenaGrowthKeepsAttributesAndCountsWaste) {
  Tracer tracer;
  const SpanId span = tracer.begin(0, "resolution");
  for (int i = 0; i < 24; ++i) {  // force several slice doublings
    tracer.set_attr(span, "k" + std::to_string(i), std::int64_t(i));
  }
  const auto attrs = tracer.span(span).attrs();
  ASSERT_EQ(attrs.size(), 24u);
  for (int i = 0; i < 24; ++i) {  // insertion order, values intact
    EXPECT_EQ(attrs[std::size_t(i)].key, "k" + std::to_string(i));
    EXPECT_EQ(std::get<std::int64_t>(attrs[std::size_t(i)].value), i);
  }
  const PoolStats stats = tracer.pool_stats();
  EXPECT_EQ(stats.attr_entries, 24u);
  EXPECT_GE(stats.attr_capacity, stats.attr_entries);
  EXPECT_GT(stats.attr_wasted, 0u);  // abandoned pre-growth slices
}

TEST(TracerPool, PoolStatsAccountEverySpanAndAttribute) {
  Tracer tracer;
  std::size_t attr_total = 0;
  for (std::uint64_t i = 0; i < 100; ++i) {
    const SpanId span = tracer.begin(0, "request");
    tracer.set_attr(span, "bytes.wire", std::int64_t(i));
    tracer.add_attr(span, "retries", 1);
    attr_total += 2;
    tracer.end(span);
  }
  const PoolStats stats = tracer.pool_stats();
  EXPECT_EQ(stats.spans, 100u);
  EXPECT_GE(stats.span_capacity, stats.spans);
  EXPECT_EQ(stats.attr_entries, attr_total);
  EXPECT_GE(stats.attr_capacity, stats.attr_entries);
  EXPECT_EQ(stats.interned_names, 3u);  // request, bytes.wire, retries
}

}  // namespace
}  // namespace dohperf::obs
