// Shared fixture: a two-host network (client <-> server) with a configurable
// link, used by transport/protocol/integration tests.
#pragma once

#include <gtest/gtest.h>

#include <memory>

#include "simnet/event_loop.hpp"
#include "simnet/host.hpp"
#include "simnet/network.hpp"

namespace dohperf::testing {

class TwoHostFixture : public ::testing::Test {
 protected:
  TwoHostFixture()
      : net(loop, /*seed=*/7),
        client(net, "client"),
        server(net, "server") {
    simnet::LinkConfig link;
    link.latency = simnet::ms(5);
    net.connect(client.id(), server.id(), link);
  }

  simnet::EventLoop loop;
  simnet::Network net;
  simnet::Host client;
  simnet::Host server;
};

}  // namespace dohperf::testing
