#include <gtest/gtest.h>

#include <set>

#include "stats/summary.hpp"
#include "workload/alexa.hpp"
#include "workload/names.hpp"

namespace dohperf::workload {
namespace {

TEST(UniqueNameGenerator, ShapeMatchesPaper) {
  // §3: "a random prefix of constant length five followed by a fixed base
  // domain".
  UniqueNameGenerator gen("example.com", 42);
  const auto n = gen.next();
  EXPECT_EQ(n.label_count(), 3u);
  EXPECT_EQ(n.labels()[0].size(), 5u);
  EXPECT_TRUE(n.is_subdomain_of(dns::Name::parse("example.com")));
}

TEST(UniqueNameGenerator, NamesAreUnique) {
  UniqueNameGenerator gen("example.com", 42);
  std::set<dns::Name> seen;
  for (const auto& name : gen.generate(5000)) {
    EXPECT_TRUE(seen.insert(name).second) << name.to_string();
  }
}

TEST(UniqueNameGenerator, Deterministic) {
  UniqueNameGenerator a("example.com", 7);
  UniqueNameGenerator b("example.com", 7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(AlexaPageModel, PagesAreDeterministicPerRank) {
  AlexaPageModel model;
  const Page p1 = model.page(42);
  const Page p2 = model.page(42);
  EXPECT_EQ(p1.primary, p2.primary);
  ASSERT_EQ(p1.objects.size(), p2.objects.size());
  for (std::size_t i = 0; i < p1.objects.size(); ++i) {
    EXPECT_EQ(p1.objects[i].domain, p2.objects[i].domain);
    EXPECT_EQ(p1.objects[i].bytes, p2.objects[i].bytes);
    EXPECT_EQ(p1.objects[i].depth, p2.objects[i].depth);
  }
}

TEST(AlexaPageModel, ObjectsHaveValidParents) {
  AlexaPageModel model;
  for (std::size_t rank = 1; rank <= 50; ++rank) {
    const Page p = model.page(rank);
    for (const auto& obj : p.objects) {
      if (obj.depth == 0) {
        EXPECT_EQ(obj.parent, -1);
      } else {
        ASSERT_GE(obj.parent, 0);
        ASSERT_LT(static_cast<std::size_t>(obj.parent), p.objects.size());
        EXPECT_EQ(p.objects[static_cast<std::size_t>(obj.parent)].depth,
                  obj.depth - 1);
      }
    }
  }
}

TEST(AlexaPageModel, Figure1Calibration) {
  // The paper's Figure 1: ~50% of pages require >= 20 DNS queries, with a
  // long tail well past 100.
  AlexaPageModel model;
  const auto stats = model.corpus_stats(2000);
  ASSERT_EQ(stats.queries_per_page.size(), 2000u);

  std::size_t at_least_20 = 0;
  std::size_t max_queries = 0;
  for (const auto q : stats.queries_per_page) {
    if (q >= 20) ++at_least_20;
    max_queries = std::max(max_queries, q);
  }
  const double frac_20 =
      static_cast<double>(at_least_20) / 2000.0;
  EXPECT_GT(frac_20, 0.35);
  EXPECT_LT(frac_20, 0.65);
  EXPECT_GT(max_queries, 100u);
  EXPECT_LE(max_queries, 300u);
}

TEST(AlexaPageModel, Top15DomainsTakeQuarterOfQueries) {
  // §4: "almost 25% of all DNS queries can be attributed to the fifteen
  // most frequently queried domain names".
  AlexaPageModel model;
  const auto stats = model.corpus_stats(2000);
  EXPECT_GT(stats.top15_query_share, 0.15);
  EXPECT_LT(stats.top15_query_share, 0.40);
}

TEST(AlexaPageModel, UniqueDomainsScaleSublinearly) {
  // Real corpus: 100k pages -> 281k unique names out of 2.18M queries:
  // heavy sharing of third parties. Check sharing happens.
  AlexaPageModel model;
  const auto stats = model.corpus_stats(1000);
  EXPECT_LT(stats.unique_domains, stats.total_queries / 2);
  EXPECT_GT(stats.unique_domains, 1000u);  // at least the primaries
}

TEST(AlexaPageModel, UniqueDomainsIncludePrimary) {
  AlexaPageModel model;
  const Page p = model.page(3);
  const auto domains = p.unique_domains();
  EXPECT_NE(std::find(domains.begin(), domains.end(), p.primary),
            domains.end());
  // No duplicates.
  std::set<dns::Name> dedup(domains.begin(), domains.end());
  EXPECT_EQ(dedup.size(), domains.size());
}

TEST(AlexaPageModel, ObjectSizesAreReasonable) {
  AlexaPageModel model;
  stats::Summary sizes;
  for (std::size_t rank = 1; rank <= 100; ++rank) {
    const Page p = model.page(rank);
    EXPECT_GE(p.html_bytes, 2000u);
    for (const auto& obj : p.objects) {
      sizes.add(static_cast<double>(obj.bytes));
      EXPECT_GE(obj.bytes, 200u);
      EXPECT_LE(obj.bytes, 2000000u);
    }
  }
  EXPECT_GT(sizes.mean(), 5e3);
  EXPECT_LT(sizes.mean(), 1e5);
}

}  // namespace
}  // namespace dohperf::workload
