#include <gtest/gtest.h>

#include "browser/page_load.hpp"
#include "browser/vantage.hpp"
#include "browser/web_farm.hpp"
#include "core/doh_client.hpp"
#include "core/udp_client.hpp"
#include "resolver/engine.hpp"
#include "resolver/udp_server.hpp"
#include "resolver/doh_server.hpp"
#include "sim_fixture.hpp"
#include "workload/alexa.hpp"

namespace dohperf::browser {
namespace {

/// Browser host + resolver host + web farm, mirroring the fig6 topology.
class BrowserTest : public ::testing::Test {
 protected:
  BrowserTest()
      : net(loop, 11), browser_host(net, "browser"),
        resolver_host(net, "resolver"),
        engine(loop, resolver::EngineConfig{}),
        udp_server(resolver_host, engine, 53),
        farm(net, browser_host, farm_config()) {
    simnet::LinkConfig link;
    link.latency = simnet::ms(2);
    net.connect(browser_host.id(), resolver_host.id(), link);
  }

  static WebFarmConfig farm_config() {
    WebFarmConfig c;
    c.base_latency = simnet::ms(10);
    c.latency_jitter = simnet::ms(5);
    return c;
  }

  simnet::EventLoop loop;
  simnet::Network net;
  simnet::Host browser_host;
  simnet::Host resolver_host;
  resolver::Engine engine;
  resolver::UdpServer udp_server;
  WebFarm farm;
};

TEST_F(BrowserTest, WebFarmServesObjects) {
  const auto addr = farm.origin_for(dns::Name::parse("cdn.example"));
  // Fetch directly with an HTTP client over TLS.
  tlssim::ClientConfig tls_config;
  tls_config.sni = "cdn.example";
  tls_config.alpn = {"http/1.1"};
  auto tls = std::make_unique<tlssim::TlsConnection>(
      std::make_unique<simnet::TcpByteStream>(
          browser_host.tcp_connect(addr)),
      std::move(tls_config));
  http1::Http1Client http(std::move(tls));
  http1::Request req;
  req.method = "GET";
  req.target = WebFarm::object_target(12345);
  req.headers.add("Host", "cdn.example");
  std::size_t got = 0;
  http.request(std::move(req),
               [&](const http1::Response& r) { got = r.body.size(); });
  loop.run();
  EXPECT_EQ(got, 12345u);
  EXPECT_EQ(farm.objects_served(), 1u);
}

TEST_F(BrowserTest, OriginReusedForSameDomain) {
  const auto a = farm.origin_for(dns::Name::parse("x.example"));
  const auto b = farm.origin_for(dns::Name::parse("x.example"));
  const auto c = farm.origin_for(dns::Name::parse("y.example"));
  EXPECT_EQ(a.node, b.node);
  EXPECT_NE(a.node, c.node);
  EXPECT_EQ(farm.origin_count(), 2u);
}

TEST_F(BrowserTest, LoadsASmallPage) {
  workload::AlexaPageModel model;
  const auto page = model.page(1);

  core::UdpResolverClient resolver(browser_host, udp_server.address());
  PageLoader loader(browser_host, farm, resolver);
  PageLoadResult result;
  bool done = false;
  loader.load(page, [&](const PageLoadResult& r) {
    result = r;
    done = true;
  });
  loop.run();
  ASSERT_TRUE(done);
  EXPECT_TRUE(result.success);
  EXPECT_EQ(result.objects_fetched, page.objects.size() + 1);  // + HTML
  EXPECT_EQ(result.dns_queries, page.unique_domains().size());
  EXPECT_GT(result.onload_time(), 0);
  EXPECT_GT(result.cumulative_dns, 0);
}

TEST_F(BrowserTest, OnloadFasterThanCumulativeDnsOnBigPages) {
  // The paper's Fig 6 note: onload can beat the *cumulative* DNS time
  // because the browser parallelises; verify parallelism exists by
  // checking onload < cumulative_dns + serial fetch estimate.
  workload::AlexaPageModel model;
  // Find a page with plenty of domains.
  workload::Page page;
  for (std::size_t rank = 1; rank < 200; ++rank) {
    page = model.page(rank);
    if (page.unique_domains().size() >= 30) break;
  }
  ASSERT_GE(page.unique_domains().size(), 30u);

  core::UdpResolverClient resolver(browser_host, udp_server.address());
  PageLoader loader(browser_host, farm, resolver);
  PageLoadResult result;
  loader.load(page, [&](const PageLoadResult& r) { result = r; });
  loop.run();
  ASSERT_TRUE(result.success);
  // ~30 resolutions at ~4ms each would serialize to 120ms+; the load
  // overlaps them with fetches.
  EXPECT_LT(result.onload_time(),
            result.cumulative_dns +
                static_cast<simnet::TimeUs>(page.objects.size()) *
                    simnet::ms(30));
}

TEST_F(BrowserTest, ConnectionLimitPerOriginRespected) {
  // A page with many objects on ONE origin must not open more than 6
  // connections to it.
  workload::Page page;
  page.rank = 1;
  page.primary = dns::Name::parse("single.example");
  page.html_bytes = 5000;
  for (int i = 0; i < 30; ++i) {
    workload::PageObject obj;
    obj.domain = page.primary;
    obj.bytes = 20000;
    obj.depth = 0;
    page.objects.push_back(obj);
  }

  core::UdpResolverClient resolver(browser_host, udp_server.address());
  PageLoader loader(browser_host, farm, resolver);
  PageLoadResult result;
  loader.load(page, [&](const PageLoadResult& r) { result = r; });
  loop.run();
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.objects_fetched, 31u);
  EXPECT_EQ(result.dns_queries, 1u);  // one origin, one resolution
}

TEST_F(BrowserTest, DependentObjectsLoadAfterParents) {
  // depth-1 objects only start after their depth-0 parent: a page with a
  // single deep chain takes at least the sum of the chain's RTTs.
  // Two objects on two *different* origins. Flat: both discovered from the
  // HTML, so the second origin's DNS + connection setup overlaps the first
  // fetch. Chain: the second object is only discovered after the first
  // completes, so its whole DNS+TLS+fetch pipeline serializes behind it.
  // Both runs share the same farm (same per-origin links), so the
  // dependency structure is the only difference.
  workload::Page flat;
  flat.primary = dns::Name::parse("flat.example");
  flat.html_bytes = 2000;
  for (const char* d : {"alpha.example", "beta.example"}) {
    workload::PageObject obj;
    obj.domain = dns::Name::parse(d);
    obj.bytes = 2000;
    obj.depth = 0;
    flat.objects.push_back(obj);
  }
  workload::Page chain = flat;
  chain.objects[1].depth = 1;
  chain.objects[1].parent = 0;

  core::UdpResolverClient resolver(browser_host, udp_server.address());
  PageLoadResult flat_result;
  PageLoadResult chain_result;
  {
    PageLoader loader(browser_host, farm, resolver);
    loader.load(flat, [&](const PageLoadResult& r) { flat_result = r; });
    loop.run();
  }
  {
    PageLoader loader(browser_host, farm, resolver);
    loader.load(chain, [&](const PageLoadResult& r) { chain_result = r; });
    loop.run();
  }
  ASSERT_TRUE(flat_result.success);
  ASSERT_TRUE(chain_result.success);
  EXPECT_GT(chain_result.onload_time(), flat_result.onload_time());
}

TEST_F(BrowserTest, WorksWithDohResolver) {
  // Swap in a DoH resolver — the fig6 "H/" configurations.
  resolver::DohServerConfig doh_config;
  doh_config.tls.chain = tlssim::CertificateChain::cloudflare();
  resolver::DohServer doh_server(resolver_host, engine, doh_config, 443);

  core::DohClientConfig client_config;
  client_config.server_name = "cloudflare-dns.com";
  core::DohClient resolver(browser_host, {resolver_host.id(), 443},
                           client_config);

  workload::AlexaPageModel model;
  const auto page = model.page(2);
  PageLoader loader(browser_host, farm, resolver);
  PageLoadResult result;
  loader.load(page, [&](const PageLoadResult& r) { result = r; });
  loop.run();
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.dns_queries, page.unique_domains().size());
}

TEST(Vantage, PlanetlabNodesAreHeterogeneousAndDeterministic) {
  const auto a = Vantage::planetlab(3);
  const auto b = Vantage::planetlab(3);
  const auto c = Vantage::planetlab(17);
  EXPECT_EQ(a.origin_base_latency, b.origin_base_latency);
  EXPECT_EQ(a.cloudflare_latency, b.cloudflare_latency);
  bool differs = a.origin_base_latency != c.origin_base_latency ||
                 a.cloudflare_latency != c.cloudflare_latency ||
                 a.access_bandwidth_bps != c.access_bandwidth_bps;
  EXPECT_TRUE(differs);
  // PlanetLab should generally be worse than campus.
  EXPECT_GE(a.origin_base_latency, Vantage::university().origin_base_latency);
}

}  // namespace
}  // namespace dohperf::browser
