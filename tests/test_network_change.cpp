// Network-churn fabric and migration-aware clients: silent NAT rebinds
// black-hole old 5-tuples (both directions), flaps gate the interface, and
// the recovery machinery — session-cache resumption, ticket invalidation on
// server restart, real DoQ path migration — behaves deterministically.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/doq_client.hpp"
#include "core/dot_client.hpp"
#include "core/udp_client.hpp"
#include "resolver/doq_server.hpp"
#include "resolver/dot_server.hpp"
#include "resolver/engine.hpp"
#include "resolver/udp_server.hpp"
#include "sim_fixture.hpp"
#include "simnet/netchange.hpp"

namespace dohperf {
namespace {

using dohperf::testing::TwoHostFixture;

class NetworkChangeTest : public TwoHostFixture {
 protected:
  static dns::Name name(const std::string& n) { return dns::Name::parse(n); }
};

// --- raw fabric -------------------------------------------------------------

TEST_F(NetworkChangeTest, SilentRebindBlackholesTcpBothWays) {
  std::size_t server_rx = 0;
  std::size_t client_rx = 0;
  bool client_reset = false;
  std::shared_ptr<simnet::TcpConnection> accepted;
  server.tcp_listen(9000, [&](std::shared_ptr<simnet::TcpConnection> conn) {
    accepted = conn;
    simnet::TcpCallbacks cbs;
    cbs.on_data = [&](std::span<const std::uint8_t> d) {
      server_rx += d.size();
    };
    accepted->set_callbacks(std::move(cbs));
  });

  auto conn = client.tcp_connect({server.id(), 9000});
  simnet::TcpCallbacks cbs;
  cbs.on_connected = [&]() { conn->send(simnet::Bytes{1, 2, 3}); };
  cbs.on_data = [&](std::span<const std::uint8_t> d) {
    client_rx += d.size();
  };
  cbs.on_reset = [&]() { client_reset = true; };
  conn->set_callbacks(std::move(cbs));

  loop.schedule_at(simnet::ms(100), [&]() {
    EXPECT_EQ(server_rx, 3u);  // pre-rebind bytes arrived
    client.rebind(/*rst_old_flows=*/false);
    conn->send(simnet::Bytes{4, 5, 6});      // egress: dies at the NAT
    accepted->send(simnet::Bytes{7, 8, 9});  // ingress: dies at the NAT
  });
  loop.run();

  // Nothing sent after the rebind got through, in either direction, and the
  // client connection eventually gave up (RTO cap) and errored out.
  EXPECT_EQ(server_rx, 3u);
  EXPECT_EQ(client_rx, 0u);
  EXPECT_TRUE(client_reset);
  EXPECT_EQ(client.tcp_connection_count(), 0u);
}

TEST_F(NetworkChangeTest, RstRebindResetsConnectionsImmediately) {
  server.tcp_listen(9000, [](std::shared_ptr<simnet::TcpConnection> conn) {
    conn->set_callbacks({});
  });
  auto conn = client.tcp_connect({server.id(), 9000});
  simnet::TimeUs reset_at = 0;
  simnet::TcpCallbacks cbs;
  cbs.on_reset = [&]() { reset_at = loop.now(); };
  conn->set_callbacks(std::move(cbs));

  loop.schedule_at(simnet::ms(100),
                   [&]() { client.rebind(/*rst_old_flows=*/true); });
  loop.run();

  // A RST-ing middlebox surfaces the death synchronously, not after RTOs.
  EXPECT_EQ(reset_at, simnet::ms(100));
}

TEST_F(NetworkChangeTest, RebindReportsUdpSocketInPlace) {
  auto& server_sock = server.udp_open(7777);
  server_sock.set_receiver(
      [&](const simnet::Bytes& payload, simnet::Address from) {
        server_sock.send_to(from, payload);  // echo to the source address
      });

  auto& sock = client.udp_open(0);
  const std::uint16_t old_port = sock.local().port;
  std::size_t echoes = 0;
  sock.set_receiver(
      [&](const simnet::Bytes&, simnet::Address) { ++echoes; });

  sock.send_to({server.id(), 7777}, simnet::Bytes{1});
  loop.schedule_at(simnet::ms(100), [&]() {
    EXPECT_EQ(echoes, 1u);
    client.rebind(/*rst_old_flows=*/false);
    // The socket object survives, silently re-ported.
    EXPECT_NE(sock.local().port, old_port);
    // A straggler reply to the old port finds no socket and vanishes...
    server_sock.send_to({client.id(), old_port}, simnet::Bytes{9});
    // ...while traffic from the new port round-trips normally.
    sock.send_to({server.id(), 7777}, simnet::Bytes{2});
  });
  loop.run();

  EXPECT_EQ(echoes, 2u);
}

TEST_F(NetworkChangeTest, ProfileSwapDoesNotCorruptRtoState) {
  std::size_t server_rx = 0;
  std::shared_ptr<simnet::TcpConnection> accepted;
  server.tcp_listen(9000, [&](std::shared_ptr<simnet::TcpConnection> conn) {
    accepted = conn;
    simnet::TcpCallbacks cbs;
    cbs.on_data = [&](std::span<const std::uint8_t> d) {
      server_rx += d.size();
      accepted->send(simnet::Bytes(d.begin(), d.end()));  // echo
    };
    accepted->set_callbacks(std::move(cbs));
  });

  auto conn = client.tcp_connect({server.id(), 9000});
  std::size_t echoes = 0;
  bool reset = false;
  simnet::TcpCallbacks cbs;
  cbs.on_data = [&](std::span<const std::uint8_t> d) { echoes += d.size(); };
  cbs.on_reset = [&]() { reset = true; };
  conn->set_callbacks(std::move(cbs));

  // One exchange every 200ms; the Wi-Fi -> LTE swap (RTT 10ms -> 80ms)
  // lands mid-stream. RFC 6298 keeps RTO >= 200ms (the rto_min clamp), so a
  // correctly maintained estimator never fires a spurious retransmission
  // for the suddenly-slower but intact path.
  constexpr int kExchanges = 20;
  for (int i = 0; i < kExchanges; ++i) {
    loop.schedule_at(simnet::ms(200) * (i + 1),
                     [&]() { conn->send(simnet::Bytes{42}); });
  }
  loop.schedule_at(simnet::ms(2100), [&]() {
    simnet::LinkConfig lte;
    lte.latency = simnet::ms(40);
    net.reconfigure(client.id(), server.id(), lte);
    client.notify_network_change(simnet::NetworkChangeKind::kProfileSwap);
  });
  loop.run();

  EXPECT_EQ(server_rx, static_cast<std::size_t>(kExchanges));
  EXPECT_EQ(echoes, static_cast<std::size_t>(kExchanges));
  EXPECT_FALSE(reset);
  EXPECT_EQ(conn->counters().retransmits, 0u);
  EXPECT_EQ(accepted->counters().retransmits, 0u);
}

TEST_F(NetworkChangeTest, ListenersNeverSeeSilentRebinds) {
  std::vector<simnet::NetworkChangeKind> seen;
  client.add_network_change_listener(
      [&](simnet::NetworkChangeKind kind) { seen.push_back(kind); });

  simnet::LinkConfig lte;
  lte.latency = simnet::ms(40);
  simnet::NetworkChangeSchedule schedule;
  schedule.add_rebind(simnet::ms(10), /*rst_old_flows=*/false);
  schedule.add_profile_swap(simnet::ms(20), lte);
  schedule.add_flap(simnet::ms(30), simnet::ms(5));
  simnet::apply_network_changes(client, server.id(), schedule);
  loop.run();

  // The silent rebind is invisible (clients must detect it by stall+probe);
  // the OS-visible events arrive in order.
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], simnet::NetworkChangeKind::kProfileSwap);
  EXPECT_EQ(seen[1], simnet::NetworkChangeKind::kFlap);
}

// --- determinism ------------------------------------------------------------

namespace flap_digest {

/// A UDP query workload through an interface flap; returns a digest of every
/// per-query outcome and completion time.
std::string run(std::uint64_t seed) {
  simnet::EventLoop loop;
  simnet::Network net(loop, seed);
  simnet::Host client(net, "client");
  simnet::Host server(net, "server");
  simnet::LinkConfig link;
  link.latency = simnet::ms(5);
  net.connect(client.id(), server.id(), link);

  simnet::NetworkChangeSchedule schedule;
  schedule.add_flap(simnet::ms(500), simnet::ms(300));
  simnet::apply_network_changes(client, server.id(), schedule);

  resolver::EngineConfig engine_config;
  engine_config.seed = seed;
  resolver::Engine engine(loop, engine_config);
  resolver::UdpServer udp_server(server, engine, 53);

  core::UdpClientConfig config;
  config.timeout = simnet::ms(250);
  config.max_retries = 8;
  core::UdpResolverClient stub(client, {server.id(), 53}, config);

  constexpr std::size_t kQueries = 20;
  std::vector<std::uint64_t> ids(kQueries);
  for (std::size_t i = 0; i < kQueries; ++i) {
    loop.schedule_at(simnet::ms(50) * (i + 1), [&, i]() {
      ids[i] = stub.resolve(
          dns::Name::parse("q" + std::to_string(i) + ".example.com"),
          dns::RType::kA, {});
    });
  }
  loop.run();

  std::string digest;
  for (std::size_t i = 0; i < kQueries; ++i) {
    const auto& r = stub.result(ids[i]);
    digest += std::to_string(i) + ":" + (r.success ? "ok" : "fail") + ":" +
              std::to_string(r.completed_at) + ";";
  }
  return digest;
}

}  // namespace flap_digest

TEST(NetworkChangeDeterminism, FlapAndRecoverySameSeedByteIdentical) {
  const std::string first = flap_digest::run(42);
  const std::string second = flap_digest::run(42);
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
  // And every query eventually succeeded through the 300ms flap.
  EXPECT_EQ(first.find("fail"), std::string::npos);
}

// --- migration-aware clients -------------------------------------------------

class MigrationClientTest : public NetworkChangeTest {
 protected:
  resolver::EngineConfig engine_config;
  std::unique_ptr<resolver::Engine> engine;

  resolver::Engine& make_engine() {
    engine = std::make_unique<resolver::Engine>(loop, engine_config);
    return *engine;
  }

  static core::RetryPolicy retry_policy() {
    core::RetryPolicy retry;
    retry.max_retries = 3;
    retry.backoff_initial = simnet::ms(50);
    retry.backoff_max = simnet::ms(200);
    retry.query_timeout = simnet::ms(500);
    retry.seed = 99;
    return retry;
  }
};

TEST_F(MigrationClientTest, DotReconnectResumesFromSessionCache) {
  resolver::DotServer dot_server(server, make_engine(), {}, 853);
  tlssim::SessionCache cache;
  core::DotClientConfig config;
  config.server_name = "local.resolver";
  config.session_cache = &cache;
  config.retry = retry_policy();
  core::DotClient stub(client, {server.id(), 853}, config);

  bool q1_ok = false;
  bool q2_ok = false;
  std::uint64_t full_hs_bytes = 0;
  stub.resolve(name("one.example.com"), dns::RType::kA,
               [&](const core::ResolutionResult& r) { q1_ok = r.success; });
  loop.schedule_at(simnet::ms(200), [&]() {
    full_hs_bytes = stub.migration_stats().handshake_bytes;
    // Silent NAT rebind: the established connection is black-holed; the
    // next query stalls, times out, and the reconnect must resume from the
    // cached session ticket.
    client.rebind(/*rst_old_flows=*/false);
    stub.resolve(name("two.example.com"), dns::RType::kA,
                 [&](const core::ResolutionResult& r) { q2_ok = r.success; });
  });
  loop.run();

  EXPECT_TRUE(q1_ok);
  EXPECT_TRUE(q2_ok);
  const auto& m = stub.migration_stats();
  EXPECT_EQ(m.full_handshakes, 1u);
  EXPECT_EQ(m.resumed_handshakes, 1u);
  // The resumed handshake skipped the certificate chain: strictly cheaper.
  EXPECT_LT(m.handshake_bytes - full_hs_bytes, full_hs_bytes);
}

TEST_F(MigrationClientTest, ServerRestartInvalidatesSessionTicket) {
  resolver::DotServer dot_server(server, make_engine(), {}, 853);
  tlssim::SessionCache cache;
  core::DotClientConfig config;
  config.server_name = "local.resolver";
  config.session_cache = &cache;
  config.retry = retry_policy();
  core::DotClient stub(client, {server.id(), 853}, config);

  bool q2_ok = false;
  stub.resolve(name("one.example.com"), dns::RType::kA, {});
  // The restart RSTs the connection and rolls the ticket key epoch: the
  // cached ticket is now stale and the reconnect must fall back to a full
  // handshake (not fail, not resume).
  loop.schedule_at(simnet::ms(200),
                   [&]() { dot_server.restart(simnet::ms(100)); });
  loop.schedule_at(simnet::ms(500), [&]() {
    stub.resolve(name("two.example.com"), dns::RType::kA,
                 [&](const core::ResolutionResult& r) { q2_ok = r.success; });
  });
  loop.run();

  EXPECT_TRUE(q2_ok);
  const auto& m = stub.migration_stats();
  EXPECT_EQ(m.full_handshakes, 2u);
  EXPECT_EQ(m.resumed_handshakes, 0u);
}

TEST_F(MigrationClientTest, DoqMigrationSurvivesRebindWithoutNewHandshake) {
  resolver::DoqServerConfig server_config;
  server_config.tls.chain = tlssim::CertificateChain::generic("local.resolver");
  server_config.quic.allow_migration = true;
  resolver::DoqServer doq_server(server, make_engine(), server_config, 8853);

  core::DoqClientConfig config;
  config.server_name = "local.resolver";
  config.retry = retry_policy();
  config.migration.enabled = true;
  core::DoqClient stub(client, {server.id(), 8853}, config);

  bool q1_ok = false;
  bool q2_ok = false;
  stub.resolve(name("one.example.com"), dns::RType::kA,
               [&](const core::ResolutionResult& r) { q1_ok = r.success; });
  // A handover: silent rebind plus the OS-visible profile-swap event. The
  // client probes the new path instead of reconnecting; the QUIC connection
  // survives re-addressing with zero new handshakes.
  simnet::LinkConfig lte;
  lte.latency = simnet::ms(40);
  simnet::NetworkChangeSchedule schedule;
  schedule.add_rebind(simnet::ms(200), /*rst_old_flows=*/false);
  schedule.add_profile_swap(simnet::ms(200), lte);
  simnet::apply_network_changes(client, server.id(), schedule);
  loop.schedule_at(simnet::ms(400), [&]() {
    stub.resolve(name("two.example.com"), dns::RType::kA,
                 [&](const core::ResolutionResult& r) { q2_ok = r.success; });
  });
  loop.run();

  EXPECT_TRUE(q1_ok);
  EXPECT_TRUE(q2_ok);
  const auto& m = stub.migration_stats();
  EXPECT_EQ(m.full_handshakes, 1u);
  EXPECT_EQ(m.resumed_handshakes, 0u);
  EXPECT_GE(m.migrations, 1u);
}

}  // namespace
}  // namespace dohperf
