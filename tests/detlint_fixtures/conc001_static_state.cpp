// CONC001 fixture: mutable static state reachable from a shard functor.
// Expected: 2 x CONC001 (the function-local static in helper(), plus the
// reference to the namespace-scope static g_counter from the same reachable
// function).  Nothing else.
#include <cstddef>
#include <vector>

namespace bench {
template <typename Result, typename Fn>
std::vector<Result> run_sharded(std::size_t n, std::size_t jobs, Fn&& fn);
}  // namespace bench

static int g_counter = 0;

struct alignas(64) Out {
  int v = 0;
};

int helper(int x) {
  static int calls = 0;
  ++calls;
  return x + calls + g_counter;
}

void drive(std::size_t shards, std::size_t jobs) {
  auto outs = bench::run_sharded<Out>(shards, jobs, [](std::size_t i) {
    Out o;
    o.v = helper(static_cast<int>(i));
    return o;
  });
  (void)outs;
}
