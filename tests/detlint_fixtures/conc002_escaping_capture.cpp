// CONC002 fixture: shard lambdas writing through captured references.
// Expected: 2 x CONC002 (the compound assignment to `total` and the
// push_back on `partials`, both captured by the `[&]` default).  The writes
// to the shard-local `s` are fine.
#include <cstddef>
#include <vector>

namespace bench {
template <typename Result, typename Fn>
std::vector<Result> run_sharded(std::size_t n, std::size_t jobs, Fn&& fn);
}  // namespace bench

struct alignas(64) Slot {
  long sum = 0;
};

void drive(std::size_t shards, std::size_t jobs) {
  long total = 0;
  std::vector<long> partials;
  auto slots = bench::run_sharded<Slot>(shards, jobs, [&](std::size_t i) {
    Slot s;
    s.sum = static_cast<long>(i);
    total += s.sum;
    partials.push_back(s.sum);
    return s;
  });
  (void)slots;
  (void)total;
}
