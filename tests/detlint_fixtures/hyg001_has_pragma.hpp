// detlint fixture: a header WITH #pragma once — must produce no HYG001.
#pragma once

#include <cstdint>

inline std::int64_t thrice(std::int64_t v) { return v * 3; }
