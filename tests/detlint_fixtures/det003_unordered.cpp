// detlint fixture: DET003 unordered containers.
#include <string>
#include <unordered_map>
#include <unordered_set>

int bad_unordered_map() {
  std::unordered_map<std::string, int> counts;  // DET003
  counts["a"] = 1;
  int total = 0;
  for (const auto& [k, v] : counts) total += v;  // order leaks into output
  return total;
}

int bad_unordered_set() {
  std::unordered_set<int> seen;  // DET003
  seen.insert(1);
  return static_cast<int>(seen.size());
}

// NOT flagged: ordered containers iterate deterministically.
#include <map>
int fine_ordered_map() {
  std::map<std::string, int> counts;
  counts["a"] = 1;
  return counts.begin()->second;
}
