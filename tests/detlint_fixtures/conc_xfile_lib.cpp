// Cross-file reachability fixture, part 2: the hazard.  On its own this
// file is clean (no shard site reaches the static); together with
// conc_xfile_main.cpp it yields 1 x CONC001 here.
int xfile_helper(int x) {
  static int calls = 0;
  ++calls;
  return x + calls;
}
