// CONC004 fixture: an RNG instance shared across shard functors.
// Expected: 1 x CONC004 — the first lambda draws from the `rng` declared
// outside it.  The second lambda constructs a per-shard SplitMix64 and is
// clean.
#include <cstddef>
#include <cstdint>
#include <vector>

namespace bench {
template <typename Result, typename Fn>
std::vector<Result> run_sharded(std::size_t n, std::size_t jobs, Fn&& fn);
}  // namespace bench

namespace stats {
struct SplitMix64 {
  explicit SplitMix64(std::uint64_t seed) : state(seed) {}
  std::uint64_t next() { return ++state; }
  std::uint64_t state;
};
}  // namespace stats

struct alignas(64) Draw {
  std::uint64_t v = 0;
};

void drive(std::size_t shards, std::size_t jobs) {
  stats::SplitMix64 rng(42);
  auto outs = bench::run_sharded<Draw>(shards, jobs, [&](std::size_t i) {
    Draw d;
    d.v = rng.next() + i;
    return d;
  });

  auto good = bench::run_sharded<Draw>(shards, jobs, [](std::size_t i) {
    stats::SplitMix64 local(1000 + i);
    Draw d;
    d.v = local.next();
    return d;
  });
  (void)outs;
  (void)good;
}
