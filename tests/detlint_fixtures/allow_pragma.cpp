// detlint fixture: the `detlint: allow(CODE) <reason>` pragma path.
#include <string>
#include <unordered_map>
#include <unordered_set>

// Same-line pragma with a justification: suppressed.
int suppressed_same_line() {
  std::unordered_map<std::string, int> m;  // detlint: allow(DET003) lookup only, never iterated
  m["k"] = 1;
  return m.at("k");
}

// Pragma on the preceding line: suppressed.
int suppressed_prev_line() {
  // detlint: allow(DET003) membership test only, never iterated
  std::unordered_set<int> s;
  s.insert(7);
  return static_cast<int>(s.count(7));
}

// Pragma with NO reason text: justification is mandatory, finding stays.
int not_suppressed_no_reason() {
  std::unordered_set<int> s;  // detlint: allow(DET003)
  return static_cast<int>(s.size());
}

// Pragma for a different code does not suppress DET003.
int not_suppressed_wrong_code() {
  std::unordered_set<int> s;  // detlint: allow(DET004) wrong code on purpose
  return static_cast<int>(s.size());
}
