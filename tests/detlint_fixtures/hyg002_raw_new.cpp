// detlint fixture: HYG002 raw owning new/delete.
#include <memory>

struct Widget {
  int v = 0;
};

Widget* bad_new() {
  return new Widget();  // HYG002
}

void bad_delete(Widget* w) {
  delete w;  // HYG002
}

void bad_array(int n) {
  int* xs = new int[n];  // HYG002
  delete[] xs;           // HYG002
}

// NOT flagged: deleted special members and make_unique.
struct NoCopy {
  NoCopy(const NoCopy&) = delete;
  NoCopy& operator=(const NoCopy&) = delete;
};
std::unique_ptr<Widget> fine_make_unique() {
  return std::make_unique<Widget>();
}
