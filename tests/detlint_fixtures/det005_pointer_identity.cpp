// detlint fixture: DET005 pointer identity flowing into hashes/logs/stats.
#include <cstdint>
#include <cstdio>
#include <functional>
#include <iostream>

struct Conn {
  int id;
};

void bad_printf_pointer(const Conn* c) {
  std::printf("conn %p id %d\n", (const void*)c, c->id);  // DET005 x2
}

std::size_t bad_hash_pointer(const Conn* c) {
  return std::hash<const Conn*>{}(c);  // DET005
}

std::uintptr_t bad_uintptr_cast(const Conn* c) {
  return reinterpret_cast<std::uintptr_t>(c);  // DET005
}

void bad_stream_pointer(const Conn* c) {
  std::cout << static_cast<const void*>(c) << "\n";  // DET005
}

// NOT flagged: data-pointer reinterpretation for byte I/O (no identity
// leaves the process), and hashing a value type.
const char* fine_data_cast(const unsigned char* bytes) {
  return reinterpret_cast<const char*>(bytes);
}
std::size_t fine_hash_value(int v) { return std::hash<int>{}(v); }
