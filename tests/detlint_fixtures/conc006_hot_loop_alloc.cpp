// CONC006 fixture: global-heap allocation inside `// detlint: hot-loop`
// annotated functions. Expected: 4 x CONC006 live — `new`, make_unique and
// to_string in hot_fire(), plus the non-reserved push_back in hot_append()
// — and 1 suppressed by the justified pragma in hot_amortized(). The
// un-annotated slow_path() may allocate freely.
#include <cstddef>
#include <memory>
#include <string>
#include <vector>

// detlint: hot-loop
int hot_fire(std::size_t n) {
  int* scratch = new int[n];
  auto owned = std::make_unique<int>(7);
  std::string label = std::to_string(n);
  int sum = static_cast<int>(label.size()) + *owned + scratch[0];
  delete[] scratch;
  return sum;
}

// detlint: hot-loop
void hot_append(std::vector<int>& out, int v) {
  out.push_back(v);
}

// detlint: hot-loop
void hot_amortized(std::vector<int>& out, int v) {
  // detlint: allow(CONC006) capacity reused after warm-up; bounded by compaction
  out.push_back(v);
}

void slow_path(std::vector<int>& out, int v) {
  out.push_back(v);
}
