// Cross-file reachability fixture, part 1: the shard site.  The lambda
// calls xfile_helper(), which is *defined* in conc_xfile_lib.cpp — the
// CONC001 there only fires when both files are fed to the same analyzer.
#include <cstddef>
#include <vector>

namespace bench {
template <typename Result, typename Fn>
std::vector<Result> run_sharded(std::size_t n, std::size_t jobs, Fn&& fn);
}  // namespace bench

int xfile_helper(int x);

struct alignas(64) Out {
  int v = 0;
};

void drive(std::size_t shards, std::size_t jobs) {
  auto outs = bench::run_sharded<Out>(shards, jobs, [](std::size_t i) {
    Out o;
    o.v = xfile_helper(static_cast<int>(i));
    return o;
  });
  (void)outs;
}
