// detlint fixture: HYG001 — this header deliberately lacks #pragma once.
#include <cstdint>

inline std::int64_t twice(std::int64_t v) { return v * 2; }
