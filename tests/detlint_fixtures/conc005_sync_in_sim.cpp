// CONC005 fixture: synchronization primitives in parallel-reachable code.
// Expected: 2 x CONC005 — `fetch_add` and `memory_order_relaxed` inside
// count_hit(), which a shard lambda calls.  The namespace-scope atomic
// declaration itself is outside any function body and is not flagged.
#include <atomic>
#include <cstddef>
#include <vector>

namespace bench {
template <typename Result, typename Fn>
std::vector<Result> run_sharded(std::size_t n, std::size_t jobs, Fn&& fn);
}  // namespace bench

std::atomic<long> g_hits{0};

struct alignas(64) Tally {
  long hits = 0;
};

long count_hit(long x) {
  g_hits.fetch_add(1, std::memory_order_relaxed);
  return x;
}

void drive(std::size_t shards, std::size_t jobs) {
  auto outs = bench::run_sharded<Tally>(shards, jobs, [](std::size_t i) {
    Tally t;
    t.hits = count_hit(static_cast<long>(i));
    return t;
  });
  (void)outs;
}
