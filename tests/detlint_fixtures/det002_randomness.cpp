// detlint fixture: DET002 unseeded/global randomness patterns.
#include <random>

int bad_rand() {
  return rand();  // DET002
}

void bad_srand() {
  srand(42);  // DET002
}

unsigned bad_random_device() {
  std::random_device rd;  // DET002
  return rd();
}

unsigned bad_default_engine() {
  std::default_random_engine eng;  // DET002 (unportable streams)
  return static_cast<unsigned>(eng());
}

unsigned long bad_unseeded_mt() {
  std::mt19937_64 gen;  // DET002 (default-constructed)
  return gen();
}

unsigned long bad_braced_unseeded_mt() {
  std::mt19937_64 gen{};  // DET002
  return gen();
}

// NOT flagged: explicitly seeded engines are reproducible.
unsigned long fine_seeded_mt(unsigned long seed) {
  std::mt19937_64 gen{seed};
  return gen();
}

unsigned long fine_seeded_mt_parens(unsigned long seed) {
  std::mt19937_64 gen(seed);
  return gen();
}
