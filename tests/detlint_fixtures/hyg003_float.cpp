// detlint fixture: HYG003 float arithmetic in accounting code.
#include <cstdint>

std::int64_t bad_float_bytes(std::int64_t packets) {
  float per_packet = 1500;  // HYG003 (float type)
  return static_cast<std::int64_t>(per_packet * packets);
}

double bad_float_literal(double x) {
  return x * 0.5f;  // HYG003 (float literal)
}

// NOT flagged: doubles for analysis, integers for counts, and hex
// literals whose last digit is F.
double fine_double(double x) { return x * 0.5; }
std::int64_t fine_hex() { return 0x1F; }
std::int64_t fine_int(std::int64_t bytes) { return bytes + 1500; }
