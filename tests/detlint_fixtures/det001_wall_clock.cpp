// detlint fixture: every DET001 wall-clock pattern must be flagged.
// This file is test data — it is never compiled and is excluded from the
// repo-wide scan (the detlint engine skips detlint_fixtures directories).
#include <chrono>
#include <ctime>

long bad_chrono_system() {
  auto now = std::chrono::system_clock::now();  // DET001
  return now.time_since_epoch().count();
}

long bad_chrono_steady() {
  auto now = std::chrono::steady_clock::now();  // DET001
  return now.time_since_epoch().count();
}

long bad_time_call() {
  return time(nullptr);  // DET001
}

long bad_std_time_call() {
  return std::time(nullptr);  // DET001
}

long bad_clock_call() {
  return clock();  // DET001
}

long bad_gettimeofday() {
  struct timeval {
    long tv_sec;
    long tv_usec;
  } tv;
  gettimeofday(&tv, nullptr);  // DET001
  return tv.tv_sec;
}

// NOT flagged: a declaration of an unrelated function that happens to be
// named `time`, and member access `x.time()`.
struct HasTime {
  long time_us;
  long time() const { return time_us; }
};
long fine_member(const HasTime& h) { return h.time(); }
