// detlint fixture: a deliberately idiomatic file — zero findings expected.
// Mentions of rand(), time(), %p, new and unordered_map inside comments
// and string literals must NOT be flagged; only real tokens count.
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace {

// The simulator never calls rand() or time(); it draws from a seeded
// stream and reads the virtual clock. unordered_map is banned; new too.
struct Sample {
  std::int64_t when_us;
  std::int64_t bytes;
};

const char* kDoc =
    "determinism notes: no rand(), no time(nullptr), no unordered_map, "
    "no raw new, and never print with %"
    "p in a format string";

std::int64_t total_bytes(const std::vector<Sample>& samples) {
  std::int64_t total = 0;
  for (const Sample& s : samples) total += s.bytes;
  return total;
}

}  // namespace

std::int64_t clean_entry(std::int64_t seed) {
  std::map<std::string, std::int64_t> by_name;
  by_name["a"] = seed;
  std::vector<Sample> samples{{1, 100}, {2, 200}};
  auto owned = std::make_unique<Sample>(Sample{3, 300});
  return total_bytes(samples) + by_name.at("a") + owned->bytes +
         static_cast<std::int64_t>(sizeof kDoc);
}
