// Pragma fixture for the CONC family: a justified allow(CONC001) pragma
// suppresses the finding on the next line; a reason-less pragma does not.
// Expected: 2 x CONC001 produced, 1 suppressed (with a reason), 1 live.
#include <cstddef>
#include <vector>

namespace bench {
template <typename Result, typename Fn>
std::vector<Result> run_sharded(std::size_t n, std::size_t jobs, Fn&& fn);
}  // namespace bench

struct alignas(64) Out {
  int v = 0;
};

int justified_counter(int x) {
  // detlint: allow(CONC001) monotonic debug counter, never read by shards
  static int calls = 0;
  ++calls;
  return x + calls;
}

int unjustified_counter(int x) {
  // detlint: allow(CONC001)
  static int calls = 0;
  ++calls;
  return x + calls;
}

void drive(std::size_t shards, std::size_t jobs) {
  auto outs = bench::run_sharded<Out>(shards, jobs, [](std::size_t i) {
    Out o;
    o.v = justified_counter(static_cast<int>(i)) +
          unjustified_counter(static_cast<int>(i));
    return o;
  });
  (void)outs;
}
