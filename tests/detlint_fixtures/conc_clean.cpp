// Negative fixture for the CONC family: the parallel posture done right.
// Per-shard state lives inside the lambda, the result type is alignas(64),
// results come back through the shard's own slot, and the only captures
// are read-only.  Expected: zero findings.
#include <cstddef>
#include <cstdint>
#include <vector>

namespace bench {
template <typename Result, typename Fn>
std::vector<Result> run_sharded(std::size_t n, std::size_t jobs, Fn&& fn);
}  // namespace bench

namespace stats {
struct SplitMix64 {
  explicit SplitMix64(std::uint64_t seed) : state(seed) {}
  std::uint64_t next() { return ++state; }
  std::uint64_t state;
};
}  // namespace stats

// detlint: hot-slot
struct alignas(64) ShardResult {
  std::uint64_t draws = 0;
  std::uint64_t sum = 0;
};

std::uint64_t mix(std::uint64_t a, std::uint64_t b) { return a * 31 + b; }

void drive(std::size_t shards, std::size_t jobs, std::uint64_t seed) {
  auto outs =
      bench::run_sharded<ShardResult>(shards, jobs, [seed](std::size_t i) {
        stats::SplitMix64 rng(mix(seed, i));
        ShardResult r;
        for (int k = 0; k < 8; ++k) {
          r.sum = mix(r.sum, rng.next());
          ++r.draws;
        }
        return r;
      });
  (void)outs;
}
