// detlint fixture: target for the --baseline suppression path. Contains
// exactly two findings; fixtures.baseline suppresses the DET003 by exact
// line and the HYG002 by wildcard.
#include <string>
#include <unordered_map>

int baselined_map() {
  std::unordered_map<std::string, int> m;  // suppressed via path:line:CODE
  m["x"] = 2;
  return m.at("x");
}

int* baselined_new() {
  return new int(5);  // suppressed via path:*:CODE
}
