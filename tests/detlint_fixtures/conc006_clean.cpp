// CONC006 clean fixture: a reserve() call in the same body absolves that
// base's growth calls, and allocation-free kernels are silent. Expected:
// zero findings.
#include <cstddef>
#include <vector>

// detlint: hot-loop
void hot_fill(std::vector<int>& out, std::size_t n) {
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(static_cast<int>(i));
  }
}

// detlint: hot-loop
long hot_sum(const std::vector<int>& xs) {
  long sum = 0;
  for (int x : xs) sum += x;
  return sum;
}

void cold_grow(std::vector<int>& out) { out.push_back(1); }
