// detlint fixture: DET004 real concurrency / blocking primitives.
#include <chrono>
#include <future>
#include <mutex>
#include <thread>
#include <unistd.h>

void bad_thread() {
  std::thread t([] {});  // DET004
  t.join();
}

void bad_mutex() {
  std::mutex m;  // DET004
  m.lock();
  m.unlock();
}

int bad_async() {
  auto f = std::async([] { return 1; });  // DET004 (async + future)
  return f.get();
}

void bad_sleep() {
  sleep(1);  // DET004
}

void bad_sleep_for() {
  std::this_thread::sleep_for(std::chrono::milliseconds(5));  // DET004
}

// NOT flagged: an unrelated member named `sleep` accessed through an
// object, and the word thread in a comment: thread thread thread.
struct Animal {
  void sleep(int hours) { hours_ = hours; }
  int hours_ = 0;
};
void fine_member_sleep(Animal& a) { a.sleep(8); }
