// CONC003 fixture: per-shard result slots that can false-share.
// Expected: 2 x CONC003 — HotResult is the result type of a run_sharded
// call but lacks alignas(64), and AnnotatedSlot carries the hot-slot
// annotation without the alignment.  GoodSlot is annotated and aligned.
#include <cstddef>
#include <vector>

namespace bench {
template <typename Result, typename Fn>
std::vector<Result> run_sharded(std::size_t n, std::size_t jobs, Fn&& fn);
}  // namespace bench

struct HotResult {
  long digest = 0;
};

// detlint: hot-slot
struct AnnotatedSlot {
  long value = 0;
};

// detlint: hot-slot
struct alignas(64) GoodSlot {
  long value = 0;
};

void drive(std::size_t shards, std::size_t jobs) {
  auto outs = bench::run_sharded<HotResult>(shards, jobs, [](std::size_t i) {
    HotResult r;
    r.digest = static_cast<long>(i);
    return r;
  });
  (void)outs;
}
