// Property-based tests: invariants checked over parameterized sweeps and
// seeded random inputs rather than hand-picked cases.
#include <gtest/gtest.h>

#include "dns/base64url.hpp"
#include "dns/json.hpp"
#include "dns/message.hpp"
#include "http1/message.hpp"
#include "http2/hpack.hpp"
#include "stats/rng.hpp"

namespace dohperf {
namespace {

using dns::Bytes;

// --- DNS message round-trip over a generated message space --------------------

struct MessageShape {
  std::size_t answers;
  std::size_t labels;
  bool compress;
};

class DnsRoundTrip : public ::testing::TestWithParam<MessageShape> {};

TEST_P(DnsRoundTrip, EncodeDecodeIsIdentity) {
  const auto shape = GetParam();
  stats::SplitMix64 rng(shape.answers * 131 + shape.labels);

  dns::Name owner = dns::Name::root();
  for (std::size_t i = 0; i < shape.labels; ++i) {
    owner = owner.child("l" + std::to_string(rng.next_below(100)));
  }
  auto query = dns::Message::make_query(
      static_cast<std::uint16_t>(rng.next()), owner);
  dns::Message response = dns::Message::make_response(query, {});
  for (std::size_t i = 0; i < shape.answers; ++i) {
    response.answers.push_back(dns::ResourceRecord::a(
        owner, "10." + std::to_string(rng.next_below(256)) + ".0.1",
        static_cast<std::uint32_t>(rng.next_below(86400))));
  }
  const auto decoded =
      dns::Message::decode(response.encode(shape.compress));
  EXPECT_EQ(decoded, response);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DnsRoundTrip,
    ::testing::Values(MessageShape{0, 1, true}, MessageShape{0, 1, false},
                      MessageShape{1, 3, true}, MessageShape{5, 2, true},
                      MessageShape{5, 2, false}, MessageShape{20, 4, true},
                      MessageShape{50, 6, true}, MessageShape{50, 6, false},
                      MessageShape{200, 5, true}));

// --- DNS decoder never crashes on garbage ---------------------------------------

class DnsFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DnsFuzz, RandomBytesEitherDecodeOrThrowWireError) {
  stats::SplitMix64 rng(GetParam());
  for (int round = 0; round < 500; ++round) {
    Bytes garbage(rng.next_below(120));
    for (auto& b : garbage) b = static_cast<std::uint8_t>(rng.next());
    try {
      const auto m = dns::Message::decode(garbage);
      // Decoding may legitimately succeed; re-encoding must not throw.
      (void)m.encode();
    } catch (const dns::WireError&) {
      // expected for malformed input
    }
  }
}

TEST_P(DnsFuzz, TruncationsOfValidMessagesThrow) {
  stats::SplitMix64 rng(GetParam() ^ 0xfeed);
  auto query = dns::Message::make_query(
      7, dns::Name::parse("a.b.example.com"), dns::RType::kA);
  query.answers.push_back(
      dns::ResourceRecord::txt(dns::Name::parse("example.com"), "hello"));
  const auto wire = query.encode();
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    Bytes partial(wire.begin(), wire.begin() + static_cast<long>(cut));
    EXPECT_THROW(dns::Message::decode(partial), dns::WireError)
        << "cut=" << cut;
  }
}

TEST_P(DnsFuzz, BitFlipsNeverCrash) {
  stats::SplitMix64 rng(GetParam() ^ 0xbeef);
  const auto base = dns::Message::make_query(
      7, dns::Name::parse("www.example.com")).encode();
  for (int round = 0; round < 1000; ++round) {
    Bytes mutated = base;
    const std::size_t pos = rng.next_below(mutated.size());
    mutated[pos] ^= static_cast<std::uint8_t>(1u << rng.next_below(8));
    try {
      (void)dns::Message::decode(mutated);
    } catch (const dns::WireError&) {
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DnsFuzz,
                         ::testing::Values(1ULL, 42ULL, 2019ULL, 8484ULL));

// --- base64url round-trip over random data --------------------------------------

class Base64Property : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Base64Property, RoundTripsRandomPayloads) {
  stats::SplitMix64 rng(GetParam());
  for (int round = 0; round < 200; ++round) {
    Bytes data(GetParam() + rng.next_below(7));
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.next());
    const auto encoded = dns::base64url_encode(data);
    // No padding, URL-safe alphabet only.
    for (char c : encoded) {
      EXPECT_TRUE(std::isalnum(static_cast<unsigned char>(c)) || c == '-' ||
                  c == '_')
          << c;
    }
    EXPECT_EQ(dns::base64url_decode(encoded), data);
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, Base64Property,
                         ::testing::Values(0u, 1u, 2u, 3u, 17u, 64u, 255u));

// --- HPACK round-trip over random header lists -----------------------------------

class HpackProperty : public ::testing::TestWithParam<std::uint64_t> {};

std::vector<http2::HeaderField> random_headers(stats::SplitMix64& rng) {
  static const char* kNames[] = {":path",      "accept",      "content-type",
                                 "user-agent", "x-custom",    "cookie",
                                 "etag",       "cache-control"};
  std::vector<http2::HeaderField> headers;
  const std::size_t n = 1 + rng.next_below(10);
  for (std::size_t i = 0; i < n; ++i) {
    http2::HeaderField f;
    f.name = kNames[rng.next_below(std::size(kNames))];
    const std::size_t len = rng.next_below(40);
    for (std::size_t j = 0; j < len; ++j) {
      f.value += static_cast<char>('!' + rng.next_below(94));
    }
    headers.push_back(std::move(f));
  }
  return headers;
}

TEST_P(HpackProperty, RandomBlocksRoundTripThroughSharedTables) {
  stats::SplitMix64 rng(GetParam());
  http2::HpackEncoder encoder;
  http2::HpackDecoder decoder;
  for (int round = 0; round < 300; ++round) {
    const auto headers = random_headers(rng);
    EXPECT_EQ(decoder.decode(encoder.encode(headers)), headers)
        << "round " << round;
  }
  // Tables stayed in lock-step.
  EXPECT_EQ(encoder.table().size(), decoder.table().size());
  EXPECT_EQ(encoder.table().entry_count(), decoder.table().entry_count());
}

TEST_P(HpackProperty, SmallTablesForceEvictionButStayCorrect) {
  stats::SplitMix64 rng(GetParam() ^ 0x77);
  http2::HpackEncoder encoder(128);  // tiny table: constant eviction
  http2::HpackDecoder decoder(128);
  for (int round = 0; round < 300; ++round) {
    const auto headers = random_headers(rng);
    EXPECT_EQ(decoder.decode(encoder.encode(headers)), headers);
    EXPECT_LE(decoder.table().size(), 128u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HpackProperty,
                         ::testing::Values(3ULL, 99ULL, 7541ULL));

// --- Huffman round-trip over random strings ---------------------------------------

class HuffmanProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HuffmanProperty, RandomStringsRoundTrip) {
  stats::SplitMix64 rng(GetParam());
  for (int round = 0; round < 500; ++round) {
    std::string s;
    const std::size_t len = rng.next_below(200);
    for (std::size_t i = 0; i < len; ++i) {
      s += static_cast<char>(rng.next_below(256));
    }
    const auto encoded = http2::huffman_encode(s);
    EXPECT_EQ(http2::huffman_decode(encoded), s);
    EXPECT_EQ(http2::huffman_encoded_size(s), encoded.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HuffmanProperty,
                         ::testing::Values(5ULL, 1234ULL));

// --- HTTP/1.1 parser: any chunking of any message sequence ------------------------

class H1ChunkingProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(H1ChunkingProperty, ParserInvariantUnderChunkSize) {
  const std::size_t chunk = GetParam();
  // Three responses with varied body sizes back to back.
  Bytes wire;
  std::vector<std::size_t> body_sizes{0, 13, 1024};
  for (const auto size : body_sizes) {
    http1::Response r;
    r.status = 200;
    r.headers.add("Content-Type", "application/octet-stream");
    r.body.assign(size, 0x5a);
    const auto one = http1::serialize(r);
    wire.insert(wire.end(), one.begin(), one.end());
  }

  http1::Parser parser(http1::Parser::Mode::kResponse);
  std::vector<std::size_t> seen;
  for (std::size_t off = 0; off < wire.size(); off += chunk) {
    const std::size_t n = std::min(chunk, wire.size() - off);
    parser.feed(std::span(wire.data() + off, n));
    while (auto r = parser.next_response()) seen.push_back(r->body.size());
  }
  EXPECT_EQ(seen, body_sizes);
  EXPECT_FALSE(parser.error());
}

INSTANTIATE_TEST_SUITE_P(ChunkSizes, H1ChunkingProperty,
                         ::testing::Values(1u, 2u, 3u, 7u, 16u, 64u, 1000u,
                                           100000u));

// --- dns-json round-trip over the record space --------------------------------------

class JsonRoundTrip : public ::testing::TestWithParam<dns::RType> {};

TEST_P(JsonRoundTrip, AnswerSurvivesJson) {
  const auto type = GetParam();
  const auto owner = dns::Name::parse("record.example.com");
  dns::ResourceRecord rr;
  switch (type) {
    case dns::RType::kA:
      rr = dns::ResourceRecord::a(owner, "198.51.100.7");
      break;
    case dns::RType::kCNAME:
      rr = dns::ResourceRecord::cname(owner, dns::Name::parse("t.example"));
      break;
    case dns::RType::kTXT:
      rr = dns::ResourceRecord::txt(owner, "v=spf1 -all");
      break;
    case dns::RType::kNS:
      rr = {owner, dns::RType::kNS, dns::RClass::kIN, 300,
            dns::NsRdata{dns::Name::parse("ns.example")}};
      break;
    default:
      GTEST_SKIP();
  }
  const auto query = dns::Message::make_query(0, owner, type);
  const auto response = dns::Message::make_response(query, {rr});
  const auto parsed = dns::from_dns_json(dns::to_dns_json(response));
  ASSERT_EQ(parsed.answers.size(), 1u);
  EXPECT_EQ(parsed.answers[0].type, type);
  EXPECT_EQ(parsed.answers[0].name, owner);
}

INSTANTIATE_TEST_SUITE_P(Types, JsonRoundTrip,
                         ::testing::Values(dns::RType::kA, dns::RType::kCNAME,
                                           dns::RType::kTXT,
                                           dns::RType::kNS));

// --- name invariants -------------------------------------------------------------

class NameProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NameProperty, ParsePrintParseIsStable) {
  stats::SplitMix64 rng(GetParam());
  for (int round = 0; round < 300; ++round) {
    std::string text;
    const std::size_t labels = 1 + rng.next_below(6);
    for (std::size_t i = 0; i < labels; ++i) {
      if (i) text += '.';
      const std::size_t len = 1 + rng.next_below(12);
      for (std::size_t j = 0; j < len; ++j) {
        text += static_cast<char>('a' + rng.next_below(26));
      }
    }
    const auto name = dns::Name::parse(text);
    EXPECT_EQ(dns::Name::parse(name.to_string()), name);
    // Wire round trip preserves equality too.
    dns::ByteWriter w;
    dns::NameCompressor c;
    c.write(w, name);
    dns::ByteReader r(w.data());
    EXPECT_EQ(dns::read_name(r), name);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NameProperty, ::testing::Values(11ULL, 97ULL));

}  // namespace
}  // namespace dohperf
