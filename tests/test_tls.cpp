#include <gtest/gtest.h>

#include "sim_fixture.hpp"
#include "tlssim/connection.hpp"

namespace dohperf::tlssim {
namespace {

using dohperf::testing::TwoHostFixture;
using simnet::Bytes;

/// Fixture wiring a TLS echo server and a TLS client over simulated TCP.
class TlsTest : public TwoHostFixture {
 protected:
  ServerConfig server_config;
  std::unique_ptr<TlsConnection> server_tls;
  std::unique_ptr<TlsConnection> client_tls;

  void start_server(std::uint16_t port = 443) {
    server.tcp_listen(port, [this](std::shared_ptr<simnet::TcpConnection> c) {
      server_tls = std::make_unique<TlsConnection>(
          std::make_unique<simnet::TcpByteStream>(std::move(c)),
          &server_config);
      TlsConnection::Handlers h;
      h.on_data = [this](std::span<const std::uint8_t> d) {
        server_tls->send(Bytes(d.begin(), d.end()));  // echo
      };
      server_tls->set_handlers(std::move(h));
    });
  }

  TlsConnection& connect(ClientConfig config, std::uint16_t port = 443) {
    client_tls = std::make_unique<TlsConnection>(
        std::make_unique<simnet::TcpByteStream>(
            client.tcp_connect({server.id(), port})),
        std::move(config));
    return *client_tls;
  }
};

TEST_F(TlsTest, Tls13FullHandshake) {
  start_server();
  auto& tls = connect({});
  bool opened = false;
  TlsConnection::Handlers h;
  h.on_open = [&]() { opened = true; };
  tls.set_handlers(std::move(h));
  loop.run();
  EXPECT_TRUE(opened);
  EXPECT_TRUE(tls.established());
  EXPECT_EQ(tls.version(), TlsVersion::kTls13);
  EXPECT_FALSE(tls.resumed());
  ASSERT_TRUE(tls.peer_certificate().has_value());
  EXPECT_EQ(tls.peer_certificate()->subject, "example.net");
}

TEST_F(TlsTest, EchoAppData) {
  start_server();
  auto& tls = connect({});
  Bytes echoed;
  TlsConnection::Handlers h;
  h.on_open = [&tls]() { tls.send(Bytes{1, 2, 3}); };
  h.on_data = [&](std::span<const std::uint8_t> d) {
    echoed.assign(d.begin(), d.end());
  };
  tls.set_handlers(std::move(h));
  loop.run();
  EXPECT_EQ(echoed, (Bytes{1, 2, 3}));
}

TEST_F(TlsTest, SendBeforeEstablishedIsQueued) {
  start_server();
  auto& tls = connect({});
  Bytes echoed;
  TlsConnection::Handlers h;
  h.on_data = [&](std::span<const std::uint8_t> d) {
    echoed.assign(d.begin(), d.end());
  };
  tls.set_handlers(std::move(h));
  tls.send(Bytes{7, 8, 9});  // handshake has not even started
  loop.run();
  EXPECT_EQ(echoed, (Bytes{7, 8, 9}));
}

TEST_F(TlsTest, Tls12FullHandshakeTwoRtt) {
  server_config.versions = {TlsVersion::kTls12};
  start_server();
  ClientConfig cc;
  cc.min_version = TlsVersion::kTls10;
  cc.max_version = TlsVersion::kTls13;
  auto& tls = connect(std::move(cc));
  simnet::TimeUs established_at = 0;
  TlsConnection::Handlers h;
  h.on_open = [&]() { established_at = loop.now(); };
  tls.set_handlers(std::move(h));
  loop.run();
  EXPECT_EQ(tls.version(), TlsVersion::kTls12);
  // TCP handshake (1 RTT) + TLS 1.2 (2 RTT) = 3 RTT = 30ms with 5ms one-way.
  EXPECT_GE(established_at, simnet::ms(30));
}

TEST_F(TlsTest, Tls13IsOneRttFasterThan12) {
  start_server();
  auto& tls = connect({});
  simnet::TimeUs established_at = 0;
  TlsConnection::Handlers h;
  h.on_open = [&]() { established_at = loop.now(); };
  tls.set_handlers(std::move(h));
  loop.run();
  // TCP (1 RTT) + TLS 1.3 (1 RTT) = 20ms.
  EXPECT_EQ(established_at, simnet::ms(20));
}

TEST_F(TlsTest, VersionNegotiationPicksHighestCommon) {
  server_config.versions = {TlsVersion::kTls10, TlsVersion::kTls11,
                            TlsVersion::kTls12};
  start_server();
  ClientConfig cc;
  cc.min_version = TlsVersion::kTls10;
  cc.max_version = TlsVersion::kTls13;
  auto& tls = connect(std::move(cc));
  tls.set_handlers({});
  loop.run();
  EXPECT_EQ(tls.version(), TlsVersion::kTls12);
}

TEST_F(TlsTest, NoCommonVersionFailsWithAlert) {
  server_config.versions = {TlsVersion::kTls10};
  start_server();
  ClientConfig cc;
  cc.min_version = TlsVersion::kTls12;
  cc.max_version = TlsVersion::kTls13;
  auto& tls = connect(std::move(cc));
  bool closed = false;
  TlsConnection::Handlers h;
  h.on_close = [&]() { closed = true; };
  tls.set_handlers(std::move(h));
  loop.run();
  EXPECT_TRUE(closed);
  EXPECT_FALSE(tls.established());
  ASSERT_TRUE(tls.failure_alert().has_value());
  EXPECT_EQ(*tls.failure_alert(), AlertDescription::kHandshakeFailure);
}

TEST_F(TlsTest, AlpnSelection) {
  server_config.alpn_preference = {"h2", "http/1.1"};
  start_server();
  ClientConfig cc;
  cc.alpn = {"http/1.1", "h2"};
  auto& tls = connect(std::move(cc));
  tls.set_handlers({});
  loop.run();
  EXPECT_EQ(tls.alpn(), "h2");  // server preference wins
}

TEST_F(TlsTest, AlpnMismatchFails) {
  server_config.alpn_preference = {"h2"};
  start_server();
  ClientConfig cc;
  cc.alpn = {"spdy/3"};
  auto& tls = connect(std::move(cc));
  tls.set_handlers({});
  loop.run();
  EXPECT_TRUE(tls.failed());
  EXPECT_EQ(*tls.failure_alert(), AlertDescription::kNoApplicationProtocol);
}

TEST_F(TlsTest, NoAlpnOfferedIsAccepted) {
  start_server();  // DoT-style: no ALPN
  auto& tls = connect({});
  tls.set_handlers({});
  loop.run();
  EXPECT_TRUE(tls.established());
  EXPECT_TRUE(tls.alpn().empty());
}

TEST_F(TlsTest, SessionResumptionSkipsCertificate) {
  server_config.chain = CertificateChain::google();
  start_server();
  SessionCache cache;

  ClientConfig first;
  first.sni = "dns.google.com";
  first.session_cache = &cache;
  auto& tls1 = connect(std::move(first));
  tls1.set_handlers({});
  loop.run();
  EXPECT_TRUE(tls1.established());
  EXPECT_FALSE(tls1.resumed());
  EXPECT_EQ(cache.size(), 1u);
  const auto full_handshake_bytes = tls1.counters().handshake_bytes_received;

  ClientConfig second;
  second.sni = "dns.google.com";
  second.session_cache = &cache;
  auto& tls2 = connect(std::move(second));
  tls2.set_handlers({});
  loop.run();
  EXPECT_TRUE(tls2.established());
  EXPECT_TRUE(tls2.resumed());
  EXPECT_FALSE(tls2.peer_certificate().has_value());
  // No certificate on the wire: handshake is far smaller.
  EXPECT_LT(tls2.counters().handshake_bytes_received,
            full_handshake_bytes - server_config.chain.wire_bytes / 2);
}

TEST_F(TlsTest, CertificateSizeShowsOnWire) {
  // Google's chain (3,101 B) vs Cloudflare's (1,960 B), as measured in §4.
  server_config.chain = CertificateChain::google();
  start_server();
  auto& tls_google = connect({});
  tls_google.set_handlers({});
  loop.run();
  const auto google_bytes = tls_google.counters().handshake_bytes_received;

  server_config.chain = CertificateChain::cloudflare();
  auto& tls_cf = connect({});
  tls_cf.set_handlers({});
  loop.run();
  const auto cf_bytes = tls_cf.counters().handshake_bytes_received;

  EXPECT_EQ(google_bytes - cf_bytes, 3101u - 1960u);
}

TEST_F(TlsTest, RecordOverheadPerSend) {
  start_server();
  auto& tls = connect({});
  int echoes = 0;
  TlsConnection::Handlers h;
  h.on_open = [&tls]() { tls.send(Bytes(100, 1)); };
  h.on_data = [&](std::span<const std::uint8_t>) {
    if (++echoes < 3) tls.send(Bytes(100, 1));
  };
  tls.set_handlers(std::move(h));
  loop.run();
  const auto& c = tls.counters();
  EXPECT_EQ(c.app_bytes_sent, 300u);
  // TLS 1.3: 5B header + 16B tag + 1B inner type per record.
  EXPECT_EQ(c.record_overhead_sent, 3 * 22u);
  EXPECT_EQ(c.app_bytes_received, 300u);
}

TEST_F(TlsTest, LargePayloadFragmentsIntoRecords) {
  start_server();
  auto& tls = connect({});
  std::size_t received = 0;
  TlsConnection::Handlers h;
  h.on_open = [&tls]() { tls.send(Bytes(40000, 5)); };
  h.on_data = [&](std::span<const std::uint8_t> d) { received += d.size(); };
  tls.set_handlers(std::move(h));
  loop.run();
  EXPECT_EQ(received, 40000u);
  // 40000 / 16384 -> 3 records each way at least.
  EXPECT_GE(tls.counters().records_sent, 3u);
}

TEST_F(TlsTest, CloseNotifyPropagates) {
  start_server();
  auto& tls = connect({});
  bool closed = false;
  TlsConnection::Handlers h;
  h.on_open = [&tls]() { tls.close(); };
  h.on_close = [&]() { closed = true; };
  tls.set_handlers(std::move(h));
  loop.run();
  EXPECT_FALSE(tls.is_open());
  (void)closed;  // our own close() does not re-notify
  EXPECT_FALSE(server_tls->is_open());
}

TEST_F(TlsTest, Tls12ResumptionOneRtt) {
  server_config.versions = {TlsVersion::kTls12};
  start_server();
  SessionCache cache;
  ClientConfig first;
  first.sni = "example.net";
  first.session_cache = &cache;
  first.max_version = TlsVersion::kTls12;
  auto& tls1 = connect(std::move(first));
  tls1.set_handlers({});
  loop.run();
  ASSERT_TRUE(tls1.established());

  ClientConfig second = {};
  second.sni = "example.net";
  second.session_cache = &cache;
  second.max_version = TlsVersion::kTls12;
  // The first connection's trailing timers advanced the clock; measure the
  // second handshake relative to its start.
  const simnet::TimeUs start = loop.now();
  auto& tls2 = connect(std::move(second));
  simnet::TimeUs established_at = 0;
  TlsConnection::Handlers h;
  h.on_open = [&]() { established_at = loop.now(); };
  tls2.set_handlers(std::move(h));
  loop.run();
  EXPECT_TRUE(tls2.resumed());
  // Abbreviated handshake: TCP (1 RTT) + TLS (1 RTT) = 20 ms, vs 30 ms full.
  EXPECT_LE(established_at - start, simnet::ms(25));
}

}  // namespace
}  // namespace dohperf::tlssim
