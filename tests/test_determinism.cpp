// The repository's two foundational claims, tested directly:
//  1. determinism — identical seeds produce bit-identical experiment
//     outcomes (timings, byte counts, orderings);
//  2. conservation — the layered byte accounting is consistent: what the
//     client's CostReport attributes matches what a packet tap observes on
//     the wire, and the per-layer parts never exceed the whole.
#include <gtest/gtest.h>

#include "core/doh_client.hpp"
#include "core/udp_client.hpp"
#include "resolver/engine.hpp"
#include "resolver/doh_server.hpp"
#include "resolver/udp_server.hpp"
#include "simnet/trace.hpp"
#include "workload/names.hpp"

namespace dohperf {
namespace {

/// One self-contained mini-experiment: N DoH queries with Poisson arrivals
/// over a jittery, lossy link; returns a digest of everything observable.
struct ExperimentDigest {
  std::vector<double> resolution_ms;
  std::vector<std::uint64_t> wire_bytes;
  std::uint64_t total_packets = 0;
  std::uint64_t tap_bytes = 0;

  bool operator==(const ExperimentDigest&) const = default;
};

ExperimentDigest run_experiment(std::uint64_t seed) {
  simnet::EventLoop loop;
  simnet::Network net(loop, seed);
  simnet::Host client(net, "client");
  simnet::Host server(net, "server");
  simnet::LinkConfig link;
  link.latency = simnet::ms(7);
  link.loss_rate = 0.05;  // loss makes determinism non-trivial
  net.connect(client.id(), server.id(), link);

  simnet::RecordingTap tap;
  net.add_tap(&tap);

  resolver::Engine engine(loop, {});
  resolver::DohServerConfig server_config;
  server_config.tls.chain = tlssim::CertificateChain::cloudflare();
  resolver::DohServer doh_server(server, engine, server_config, 443);

  core::DohClientConfig client_config;
  client_config.server_name = "cloudflare-dns.com";
  core::DohClient resolver_client(client, {server.id(), 443}, client_config);

  workload::UniqueNameGenerator names("example.com", seed ^ 1);
  stats::PoissonArrivals arrivals(50.0, seed ^ 2);
  const auto times = arrivals.arrival_times(30);

  ExperimentDigest digest;
  digest.resolution_ms.resize(30, -1.0);
  std::vector<std::uint64_t> ids;
  for (std::size_t i = 0; i < 30; ++i) {
    loop.schedule_at(simnet::from_sec(times[i]),
                     [&, i, name = names.next()]() {
                       ids.push_back(resolver_client.resolve(
                           name, dns::RType::kA,
                           [&, i](const core::ResolutionResult& r) {
                             digest.resolution_ms[i] =
                                 simnet::to_ms(r.resolution_time());
                           }));
                     });
  }
  loop.run();
  for (const auto id : ids) {
    digest.wire_bytes.push_back(resolver_client.result(id).cost.wire_bytes);
  }
  digest.total_packets = net.packets_sent();
  digest.tap_bytes = tap.total_bytes();
  net.remove_tap(&tap);
  return digest;
}

TEST(Determinism, IdenticalSeedsIdenticalRuns) {
  const auto a = run_experiment(2019);
  const auto b = run_experiment(2019);
  EXPECT_EQ(a, b);
  // And every query actually resolved.
  for (const double t : a.resolution_ms) EXPECT_GE(t, 0.0);
}

TEST(Determinism, DifferentSeedsDiverge) {
  const auto a = run_experiment(2019);
  const auto c = run_experiment(2020);
  EXPECT_NE(a, c);
}

// --- byte conservation --------------------------------------------------------------

class ConservationTest : public ::testing::Test {
 protected:
  simnet::EventLoop loop;
  simnet::Network net{loop, 3};
  simnet::Host client{net, "client"};
  simnet::Host server{net, "server"};
  resolver::Engine engine{loop, {}};

  ConservationTest() {
    simnet::LinkConfig link;
    link.latency = simnet::ms(5);
    net.connect(client.id(), server.id(), link);
  }
};

TEST_F(ConservationTest, UdpCostMatchesTapExactly) {
  resolver::UdpServer udp_server(server, engine, 53);
  simnet::RecordingTap tap;
  net.add_tap(&tap);
  core::UdpResolverClient resolver_client(client, {server.id(), 53});
  const auto id =
      resolver_client.resolve(dns::Name::parse("x.example.com"),
                              dns::RType::kA, {});
  loop.run();
  net.remove_tap(&tap);
  const auto& cost = resolver_client.result(id).cost;
  EXPECT_EQ(cost.wire_bytes, tap.total_bytes());
  EXPECT_EQ(cost.packets, tap.size());
}

TEST_F(ConservationTest, DohFreshCostMatchesTap) {
  resolver::DohServerConfig server_config;
  server_config.tls.chain = tlssim::CertificateChain::cloudflare();
  resolver::DohServer doh_server(server, engine, server_config, 443);
  simnet::RecordingTap tap;
  net.add_tap(&tap);
  core::DohClientConfig config;
  config.server_name = "cloudflare-dns.com";
  config.persistent = false;
  core::DohClient resolver_client(client, {server.id(), 443}, config);
  const auto id = resolver_client.resolve(
      dns::Name::parse("x.example.com"), dns::RType::kA, {});
  loop.run();  // drain teardown
  net.remove_tap(&tap);

  const auto& cost = resolver_client.result(id).cost;
  // The tap sees everything the connection put on the wire; the client's
  // cost window may miss at most the final boundary ACK.
  EXPECT_LE(cost.wire_bytes, tap.total_bytes());
  EXPECT_GE(cost.wire_bytes + 100, tap.total_bytes());
  EXPECT_LE(cost.packets, tap.size());
  EXPECT_GE(cost.packets + 2, tap.size());
}

TEST_F(ConservationTest, LayerPartsAreConsistent) {
  resolver::DohServerConfig server_config;
  server_config.tls.chain = tlssim::CertificateChain::google();
  resolver::DohServer doh_server(server, engine, server_config, 443);
  core::DohClientConfig config;
  config.server_name = "dns.google.com";
  config.persistent = false;
  core::DohClient resolver_client(client, {server.id(), 443}, config);
  const auto id = resolver_client.resolve(
      dns::Name::parse("layered.example.com"), dns::RType::kA, {});
  loop.run();
  const auto& c = resolver_client.result(id).cost;

  // The layers nest: DNS inside HTTP bodies, HTTP inside TLS app data,
  // TLS inside TCP payload, TCP inside the wire bytes.
  EXPECT_LE(c.dns_message_bytes, c.http_body_bytes);
  const auto http_total =
      c.http_body_bytes + c.http_header_bytes + c.http_mgmt_bytes;
  EXPECT_LT(http_total + c.tls_overhead_bytes + c.tcp_overhead_bytes,
            c.wire_bytes + 1);
  // ...and account for nearly all of it (nothing unattributed beyond the
  // odd boundary packet).
  EXPECT_GT(http_total + c.tls_overhead_bytes + c.tcp_overhead_bytes,
            c.wire_bytes * 95 / 100);
}

TEST_F(ConservationTest, PersistentSteadyStateHasNoHandshakeBytes) {
  resolver::DohServerConfig server_config;
  server_config.tls.chain = tlssim::CertificateChain::cloudflare();
  resolver::DohServer doh_server(server, engine, server_config, 443);
  core::DohClientConfig config;
  config.server_name = "cloudflare-dns.com";
  core::DohClient resolver_client(client, {server.id(), 443}, config);
  resolver_client.resolve(dns::Name::parse("warm.example.com"),
                          dns::RType::kA, {});
  loop.run();
  const auto id = resolver_client.resolve(
      dns::Name::parse("steady.example.com"), dns::RType::kA, {});
  loop.run();
  const auto& c = resolver_client.result(id).cost;
  // TLS overhead in steady state is record framing only: 22 bytes per
  // record, four records (HEADERS/DATA each way).
  EXPECT_EQ(c.tls_overhead_bytes % 22, 0u);
  EXPECT_LE(c.tls_overhead_bytes, 6 * 22u);
}

}  // namespace
}  // namespace dohperf
