// Graceful degradation, end to end: the resilience cache stacked over the
// TRR-style fallback, driven through a mid-run link outage that takes out
// both the DoH primary and the UDP fallback. The stack must coalesce the
// outage-window thundering herd onto one upstream query, answer everyone
// from stale data, refresh on recovery, and replay byte-identically under
// the same seed.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/caching_client.hpp"
#include "core/doh_client.hpp"
#include "core/fallback_client.hpp"
#include "core/udp_client.hpp"
#include "resolver/engine.hpp"
#include "resolver/doh_server.hpp"
#include "resolver/udp_server.hpp"
#include "simnet/fault.hpp"

namespace dohperf {
namespace {

struct ScenarioOutcome {
  std::string fingerprint;  ///< every observable, serialized in event order
  core::CacheStats cache;
  core::FallbackStats fallback;
  bool outage_queries_ok = true;      ///< all three answered successfully
  bool outage_queries_stale = true;   ///< ... and all from stale data
  bool recovery_query_ok = false;
  std::uint64_t post_recovery_hits = 0;
};

/// One full run of the scenario; a pure function of `seed`.
ScenarioOutcome run_scenario(std::uint64_t seed) {
  simnet::EventLoop loop;
  simnet::Network net(loop, seed);
  simnet::Host client(net, "client");
  simnet::Host server(net, "resolver");

  simnet::LinkConfig link;
  link.latency = simnet::ms(5);
  net.connect(client.id(), server.id(), link);
  // The outage window: both resolvers unreachable from 5s to 9s.
  simnet::FaultSchedule schedule;
  schedule.add_outage(simnet::seconds(5), simnet::seconds(4));
  net.inject_faults(client.id(), server.id(), schedule);

  resolver::EngineConfig primary_config;
  primary_config.ttl = 4;  // entries expire before the outage ends
  resolver::Engine primary_engine(loop, primary_config);
  resolver::DohServerConfig doh_config;
  doh_config.tls.chain = tlssim::CertificateChain::cloudflare();
  resolver::DohServer doh_server(server, primary_engine, doh_config, 443);

  resolver::EngineConfig fallback_config;
  fallback_config.ttl = 4;
  resolver::Engine fallback_engine(loop, fallback_config);
  resolver::UdpServer udp_server(server, fallback_engine, 53);

  core::DohClientConfig doh_client_config;
  doh_client_config.server_name = "cloudflare-dns.com";
  doh_client_config.retry.max_retries = 0;
  doh_client_config.retry.query_timeout = simnet::ms(300);
  doh_client_config.retry.seed = seed ^ 0xbf58476d1ce4e5b9ULL;
  core::DohClient doh(client, simnet::Address{server.id(), 443},
                      doh_client_config);
  core::UdpResolverClient udp(
      client, simnet::Address{server.id(), 53},
      core::UdpClientConfig{.timeout = simnet::ms(300), .max_retries = 0});

  core::FallbackConfig trr_config;
  trr_config.primary_deadline = simnet::ms(400);
  core::FallbackResolverClient trr(loop, doh, udp, trr_config);

  core::CacheConfig cache_config;
  cache_config.max_stale = simnet::seconds(60);
  cache_config.stale_serve_delay = simnet::ms(500);
  core::CachingResolverClient cache(loop, trr, cache_config);

  const dns::Name hot = dns::Name::parse("hot.example.com");
  std::vector<std::uint64_t> ids;
  // t=0: populate the cache (expires ~4s in, before the outage lifts).
  ids.push_back(cache.resolve(hot, dns::RType::kA, {}));
  // t=6s, mid-outage: three concurrent lookups of the now-expired entry.
  loop.schedule_at(simnet::seconds(6), [&]() {
    for (int i = 0; i < 3; ++i) {
      ids.push_back(cache.resolve(hot, dns::RType::kA, {}));
    }
  });
  // t=10s, after recovery: the same name again.
  loop.schedule_at(simnet::seconds(10), [&]() {
    ids.push_back(cache.resolve(hot, dns::RType::kA, {}));
  });
  loop.run();

  ScenarioOutcome out;
  for (const std::uint64_t id : ids) {
    const auto& r = cache.result(id);
    out.fingerprint += std::to_string(id) + ":" +
                       (r.success ? "ok" : "fail") + ":" +
                       std::to_string(r.resolution_time()) + ":" +
                       std::to_string(cache.staleness_age(id)) + ";";
  }
  for (std::size_t i = 1; i <= 3; ++i) {
    const auto& r = cache.result(ids[i]);
    out.outage_queries_ok &= r.success;
    out.outage_queries_stale &= cache.staleness_age(ids[i]) > 0;
  }
  out.recovery_query_ok = cache.result(ids[4]).success;
  // After the post-recovery resolution the entry is fresh again: one more
  // lookup must be a pure cache hit.
  const auto hits_before = cache.stats().hits;
  cache.resolve(hot, dns::RType::kA, {});
  loop.run();
  out.post_recovery_hits = cache.stats().hits - hits_before;
  out.cache = cache.stats();
  out.fallback = trr.stats();
  out.fingerprint += "|coalesced=" + std::to_string(out.cache.coalesced) +
                     ",stale=" + std::to_string(out.cache.stale_serves) +
                     ",upstream=" +
                     std::to_string(out.cache.upstream_queries) +
                     ",both_failed=" +
                     std::to_string(out.fallback.both_failed);
  return out;
}

TEST(GracefulDegradation, StaleAnswersCarryClientsThroughOutage) {
  const ScenarioOutcome out = run_scenario(7);
  // The mid-outage herd coalesced onto a single upstream query ...
  EXPECT_EQ(out.cache.coalesced, 2u);
  // ... which failed through both resolver paths ...
  EXPECT_GE(out.fallback.both_failed, 1u);
  // ... and everyone was answered from the expired entry instead.
  EXPECT_TRUE(out.outage_queries_ok);
  EXPECT_TRUE(out.outage_queries_stale);
  EXPECT_EQ(out.cache.stale_serves, 3u);
  // After the link heals, resolution works again and repairs the entry.
  EXPECT_TRUE(out.recovery_query_ok);
  EXPECT_EQ(out.post_recovery_hits, 1u);
}

TEST(GracefulDegradation, SameSeedRunsAreByteIdentical) {
  const ScenarioOutcome a = run_scenario(21);
  const ScenarioOutcome b = run_scenario(21);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_FALSE(a.fingerprint.empty());
}

}  // namespace
}  // namespace dohperf
