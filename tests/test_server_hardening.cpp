// Server hardening against malformed and abusive input: the TCP-DNS and
// DoT front-ends' length-prefix validation, the TLS terminator's handling
// of raw garbage, the DoH server's bad-HTTP/2 and oversized-body paths, and
// the DoH session cap with oldest-idle eviction. Every case must end in a
// deterministic reply or reset — never a hang, crash, or unbounded buffer.
#include <gtest/gtest.h>

#include "core/doh_client.hpp"
#include "dns/message.hpp"
#include "http1/client.hpp"
#include "resolver/doh_server.hpp"
#include "resolver/dot_server.hpp"
#include "resolver/engine.hpp"
#include "resolver/tcp_dns_server.hpp"
#include "sim_fixture.hpp"
#include "tlssim/connection.hpp"

namespace dohperf {
namespace {

using dohperf::testing::TwoHostFixture;
using simnet::Bytes;

dns::Name name(const char* n) { return dns::Name::parse(n); }

// --- TCP-DNS length-prefix validation --------------------------------------

class TcpDnsHardeningTest : public TwoHostFixture {
 protected:
  resolver::EngineConfig engine_config;
  std::unique_ptr<resolver::Engine> engine;
  std::unique_ptr<resolver::TcpDnsServer> tcp_server;

  void start(resolver::TcpDnsServerConfig config = {}) {
    engine = std::make_unique<resolver::Engine>(loop, engine_config);
    tcp_server =
        std::make_unique<resolver::TcpDnsServer>(server, *engine, config, 53);
  }

  /// Open a raw connection and send `bytes` once connected; returns the
  /// connection and collects whatever the server sends back.
  std::shared_ptr<simnet::TcpConnection> send_raw(Bytes bytes, Bytes* reply) {
    auto conn = client.tcp_connect({server.id(), 53});
    simnet::TcpCallbacks cbs;
    cbs.on_connected = [conn, bytes = std::move(bytes)]() {
      conn->send(bytes);
    };
    cbs.on_data = [reply](std::span<const std::uint8_t> d) {
      if (reply) reply->insert(reply->end(), d.begin(), d.end());
    };
    conn->set_callbacks(std::move(cbs));
    return conn;
  }
};

TEST_F(TcpDnsHardeningTest, ZeroLengthPrefixResetsConnection) {
  start();
  Bytes reply;
  auto conn = send_raw({0x00, 0x00}, &reply);
  loop.run();
  EXPECT_EQ(tcp_server->malformed(), 1u);
  EXPECT_FALSE(conn->established());
  EXPECT_TRUE(reply.empty());
}

TEST_F(TcpDnsHardeningTest, OversizedLengthPrefixResetsConnection) {
  resolver::TcpDnsServerConfig config;
  config.max_message_bytes = 512;
  start(config);
  Bytes reply;
  // Prefix declares 0xffff bytes — far past the cap; the server must close
  // immediately rather than buffer 64 KiB of attacker-paced bytes.
  auto conn = send_raw({0xff, 0xff}, &reply);
  loop.run();
  EXPECT_EQ(tcp_server->malformed(), 1u);
  EXPECT_FALSE(conn->established());
  EXPECT_TRUE(reply.empty());
}

TEST_F(TcpDnsHardeningTest, UndecodableFrameResetsConnection) {
  start();
  auto conn = send_raw({0x00, 0x03, 0xde, 0xad, 0xbe}, nullptr);
  loop.run();
  EXPECT_EQ(tcp_server->malformed(), 1u);
  EXPECT_FALSE(conn->established());
}

TEST_F(TcpDnsHardeningTest, TruncatedFrameIsBufferedNotFatal) {
  start();
  // A valid prefix for 100 bytes with only 3 sent: incomplete, not
  // malformed. The server waits for the rest; the client gives up and
  // closes; everything unwinds cleanly.
  auto conn = send_raw({0x00, 0x64, 0x01, 0x02, 0x03}, nullptr);
  loop.schedule_at(simnet::ms(200), [conn]() { conn->close(); });
  loop.run();
  EXPECT_EQ(tcp_server->malformed(), 0u);
}

TEST_F(TcpDnsHardeningTest, WellFormedQueryStillAnswered) {
  start();
  const dns::Bytes query = dns::Message::make_query(7, name("ok.example"))
                               .encode();
  Bytes framed{static_cast<std::uint8_t>(query.size() >> 8),
               static_cast<std::uint8_t>(query.size() & 0xff)};
  framed.insert(framed.end(), query.begin(), query.end());
  Bytes reply;
  send_raw(std::move(framed), &reply);
  loop.run();
  ASSERT_GT(reply.size(), 2u);
  const std::size_t len =
      (static_cast<std::size_t>(reply[0]) << 8) | reply[1];
  ASSERT_EQ(reply.size(), 2 + len);
  const dns::Message response =
      dns::Message::decode({reply.begin() + 2, reply.end()});
  EXPECT_EQ(response.id, 7);
  EXPECT_EQ(response.flags.rcode, dns::Rcode::kNoError);
  EXPECT_EQ(tcp_server->malformed(), 0u);
}

// --- DoT: same framing rules inside TLS ------------------------------------

TEST_F(TwoHostFixture, DotZeroLengthFrameInsideTlsResetsConnection) {
  resolver::Engine engine(loop, {});
  resolver::DotServer dot_server(server, engine, {}, 853);

  tlssim::ClientConfig tls_config;
  tls_config.sni = "example.net";
  auto tls = std::make_unique<tlssim::TlsConnection>(
      std::make_unique<simnet::TcpByteStream>(
          client.tcp_connect({server.id(), 853})),
      std::move(tls_config));
  simnet::ByteStream::Handlers h;
  h.on_open = [&tls]() { tls->send(Bytes{0x00, 0x00}); };
  tls->set_handlers(std::move(h));
  loop.run();

  EXPECT_EQ(dot_server.malformed(), 1u);
  EXPECT_FALSE(tls->is_open());
}

// --- TLS terminator vs raw garbage ------------------------------------------

class DohHardeningTest : public TwoHostFixture {
 protected:
  resolver::EngineConfig engine_config;
  std::unique_ptr<resolver::Engine> engine;
  std::unique_ptr<resolver::DohServer> doh_server;

  void start(resolver::DohServerConfig config = {}) {
    engine = std::make_unique<resolver::Engine>(loop, engine_config);
    doh_server =
        std::make_unique<resolver::DohServer>(server, *engine, config, 443);
  }

  /// One raw HTTP/1.1-over-TLS request; returns the status code (-1 if the
  /// server never answered).
  int raw_request(const std::string& method, const std::string& target,
                  const std::string& content_type, Bytes body) {
    tlssim::ClientConfig tls_config;
    tls_config.sni = "example.net";
    tls_config.alpn = {"http/1.1"};
    auto tls = std::make_unique<tlssim::TlsConnection>(
        std::make_unique<simnet::TcpByteStream>(
            client.tcp_connect({server.id(), 443})),
        std::move(tls_config));
    http1::Http1Client http(std::move(tls));
    http1::Request request;
    request.method = method;
    request.target = target;
    request.headers.add("Host", "example.net");
    request.headers.add("Accept", "application/dns-message");
    if (!content_type.empty()) {
      request.headers.add("Content-Type", content_type);
    }
    request.body = std::move(body);
    int status = -1;
    http.request(std::move(request),
                 [&](const http1::Response& r) { status = r.status; });
    loop.run();
    return status;
  }
};

TEST_F(DohHardeningTest, RawGarbageToTlsPortIsRejectedNotFatal) {
  start();
  auto conn = client.tcp_connect({server.id(), 443});
  simnet::TcpCallbacks cbs;
  cbs.on_connected = [conn]() {
    // A complete record whose body is not a TLS handshake message: the
    // terminator must answer with a decode_error alert and close, not
    // propagate an exception or crash.
    conn->send(Bytes{0x16, 0x03, 0x03, 0x00, 0x03, 0xde, 0xad, 0xbe});
  };
  conn->set_callbacks(std::move(cbs));
  loop.run();
  EXPECT_FALSE(conn->established());

  // The listener survives: a well-formed request afterwards resolves fine.
  EXPECT_EQ(raw_request("POST", "/dns-query", "application/dns-message",
                        dns::Message::make_query(1, name("x.example"))
                            .encode()),
            200);
}

TEST_F(DohHardeningTest, BadHttp2PrefaceAfterTlsResetsSession) {
  start();
  tlssim::ClientConfig tls_config;
  tls_config.sni = "example.net";
  tls_config.alpn = {"h2"};
  auto tls = std::make_unique<tlssim::TlsConnection>(
      std::make_unique<simnet::TcpByteStream>(
          client.tcp_connect({server.id(), 443})),
      std::move(tls_config));
  simnet::ByteStream::Handlers h;
  h.on_open = [&tls]() {
    tls->send(dns::to_bytes("this is not the h2 connection preface"));
  };
  tls->set_handlers(std::move(h));
  loop.run();
  EXPECT_FALSE(tls->is_open());

  EXPECT_EQ(raw_request("POST", "/dns-query", "application/dns-message",
                        dns::Message::make_query(2, name("y.example"))
                            .encode()),
            200);
}

// --- DoH resource limits ----------------------------------------------------

TEST_F(DohHardeningTest, OversizedBodyAnswers413WithoutResolving) {
  resolver::DohServerConfig config;
  config.max_body_bytes = 64;
  start(config);
  EXPECT_EQ(raw_request("POST", "/dns-query", "application/dns-message",
                        Bytes(128, 0x00)),
            413);
  EXPECT_EQ(doh_server->oversized_bodies(), 1u);
}

TEST_F(DohHardeningTest, SessionCapEvictsOldestIdle) {
  resolver::DohServerConfig config;
  config.max_sessions = 2;
  start(config);

  core::DohClientConfig client_config;
  client_config.server_name = "example.net";
  core::DohClient first(client, {server.id(), 443}, client_config);
  core::DohClient second(client, {server.id(), 443}, client_config);
  core::DohClient third(client, {server.id(), 443}, client_config);

  // Connect in order; each resolve holds its session open (persistent).
  const auto a = first.resolve(name("a.example"), dns::RType::kA, {});
  loop.run();
  const auto b = second.resolve(name("b.example"), dns::RType::kA, {});
  loop.run();
  EXPECT_TRUE(first.result(a).success);
  EXPECT_TRUE(second.result(b).success);
  EXPECT_EQ(doh_server->session_count(), 2u);
  EXPECT_GT(doh_server->memory_estimate_bytes(), 0u);

  // A third connection breaches the cap: the oldest-idle session (the
  // first client's) is RST to make room.
  const auto c = third.resolve(name("c.example"), dns::RType::kA, {});
  loop.run();
  EXPECT_TRUE(third.result(c).success);
  EXPECT_EQ(doh_server->evicted_sessions(), 1u);
  EXPECT_LE(doh_server->session_count(), 2u);
  EXPECT_EQ(doh_server->peak_sessions(), 2u);
}

}  // namespace
}  // namespace dohperf
