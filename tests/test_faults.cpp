// Fault-injection fabric and resilient clients: scheduled link impairments
// (outage / latency spike / throttle), Gilbert–Elliott bursty loss,
// server-side fault policies (SERVFAIL/REFUSED/stall), server restarts, and
// the reconnect/retry behaviour of the DoH and DoT clients plus the
// circuit-breaker resolver selector.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/doh_client.hpp"
#include "core/dot_client.hpp"
#include "core/health_client.hpp"
#include "core/retry.hpp"
#include "core/udp_client.hpp"
#include "resolver/engine.hpp"
#include "resolver/doh_server.hpp"
#include "resolver/dot_server.hpp"
#include "resolver/udp_server.hpp"
#include "sim_fixture.hpp"

namespace dohperf {
namespace {

using dohperf::testing::TwoHostFixture;

dns::Name name(const char* n) { return dns::Name::parse(n); }

// --- Link impairments ------------------------------------------------------------

class LinkFaultTest : public TwoHostFixture {
 protected:
  /// Raw one-datagram probe: returns the virtual arrival time, or -1 when
  /// the datagram was lost.
  simnet::TimeUs probe_at(simnet::TimeUs send_time,
                          std::size_t payload_bytes = 32) {
    auto& tx = client.udp_open(10000 + probes_);
    auto& rx = server.udp_open(20000 + probes_);
    ++probes_;
    simnet::TimeUs arrival = -1;
    rx.set_receiver([&arrival, this](const simnet::Bytes&, simnet::Address) {
      arrival = loop.now();
    });
    loop.schedule_at(send_time, [&tx, &rx, payload_bytes]() {
      tx.send_to(rx.local(), simnet::Bytes(payload_bytes, 0xab));
    });
    loop.run();
    return arrival;
  }

  int probes_ = 0;
};

TEST_F(LinkFaultTest, OutageWindowDropsPackets) {
  simnet::FaultSchedule schedule;
  schedule.add_outage(simnet::ms(10), simnet::ms(50));
  net.inject_faults(client.id(), server.id(), schedule);

  EXPECT_EQ(probe_at(simnet::ms(0)), simnet::ms(5));  // before: 5ms link
  EXPECT_EQ(probe_at(simnet::ms(20)), -1);            // inside: dropped
  EXPECT_EQ(probe_at(simnet::ms(59)), -1);            // [start, end) closed
  EXPECT_EQ(probe_at(simnet::ms(60)), simnet::ms(65));  // end is exclusive
  EXPECT_EQ(net.fault_drops(), 2u);
  EXPECT_EQ(net.packets_dropped(), 2u);
}

TEST_F(LinkFaultTest, LatencySpikeDelaysDelivery) {
  simnet::FaultSchedule schedule;
  schedule.add_latency_spike(simnet::ms(0), simnet::ms(100),
                             /*extra=*/simnet::ms(40));
  net.inject_faults(client.id(), server.id(), schedule);

  EXPECT_EQ(probe_at(simnet::ms(0)), simnet::ms(45));    // 5ms + 40ms spike
  EXPECT_EQ(probe_at(simnet::ms(200)), simnet::ms(205));  // back to normal
}

TEST_F(LinkFaultTest, ThrottleCapsBandwidth) {
  // 8000 bit/s cap: a 1000-byte datagram serializes in exactly one second.
  simnet::FaultSchedule schedule;
  schedule.add_throttle(simnet::ms(0), simnet::seconds(10), /*bps=*/8000.0);
  net.inject_faults(client.id(), server.id(), schedule);

  const simnet::TimeUs arrival = probe_at(simnet::ms(0), /*payload=*/1000);
  // Serialization includes UDP+IP framing overhead, so >= payload time.
  EXPECT_GE(arrival, simnet::seconds(1) + simnet::ms(5));
  EXPECT_LT(arrival, simnet::seconds(2));
}

TEST_F(LinkFaultTest, ClearingScheduleRestoresLink) {
  simnet::FaultSchedule schedule;
  schedule.add_outage(simnet::ms(0), simnet::seconds(10));
  net.inject_faults(client.id(), server.id(), schedule);
  net.inject_faults(client.id(), server.id(), simnet::FaultSchedule{});
  EXPECT_EQ(probe_at(simnet::ms(0)), simnet::ms(5));
  EXPECT_EQ(net.fault_drops(), 0u);
}

TEST_F(LinkFaultTest, GilbertElliottBadStateDropsBursts) {
  // Degenerate chain that enters (and never leaves) the bad state on the
  // first packet, with certain loss there: everything drops.
  simnet::LinkConfig link;
  link.latency = simnet::ms(5);
  link.gilbert_elliott.enabled = true;
  link.gilbert_elliott.p_good_to_bad = 1.0;
  link.gilbert_elliott.p_bad_to_good = 0.0;
  link.gilbert_elliott.loss_good = 0.0;
  link.gilbert_elliott.loss_bad = 1.0;
  net.reconfigure(client.id(), server.id(), link);

  EXPECT_EQ(probe_at(simnet::ms(0)), -1);
  EXPECT_EQ(probe_at(simnet::ms(10)), -1);
  EXPECT_EQ(net.packets_dropped(), 2u);
  EXPECT_EQ(net.fault_drops(), 0u);  // stochastic loss, not scheduled
}

TEST(FaultSchedule, RandomOutagesAreDeterministic) {
  const auto a = simnet::FaultSchedule::random_outages(
      /*seed=*/99, /*rate_per_sec=*/0.5, simnet::seconds(2),
      simnet::seconds(600));
  const auto b = simnet::FaultSchedule::random_outages(
      /*seed=*/99, /*rate_per_sec=*/0.5, simnet::seconds(2),
      simnet::seconds(600));
  ASSERT_EQ(a.faults().size(), b.faults().size());
  ASSERT_FALSE(a.empty());
  for (std::size_t i = 0; i < a.faults().size(); ++i) {
    EXPECT_EQ(a.faults()[i].start, b.faults()[i].start);
    EXPECT_EQ(a.faults()[i].end, b.faults()[i].end);
  }
  const auto c = simnet::FaultSchedule::random_outages(
      /*seed=*/100, /*rate_per_sec=*/0.5, simnet::seconds(2),
      simnet::seconds(600));
  ASSERT_FALSE(c.empty());
  EXPECT_NE(c.faults()[0].start, a.faults()[0].start);
}

// --- Engine fault policies -------------------------------------------------------

class EngineFaultTest : public TwoHostFixture {
 protected:
  resolver::EngineConfig engine_config;

  core::ResolutionResult resolve_udp(core::UdpClientConfig client_config) {
    resolver::Engine engine(loop, engine_config);
    resolver::UdpServer udp_server(server, engine, 53);
    core::UdpResolverClient stub(client, {server.id(), 53}, client_config);
    core::ResolutionResult observed;
    stub.resolve(name("a.example"), dns::RType::kA,
                 [&](const core::ResolutionResult& r) { observed = r; });
    loop.run();
    stats_ = engine.stats();
    return observed;
  }

  resolver::EngineStats stats_;
};

TEST_F(EngineFaultTest, ServfailInjection) {
  engine_config.faults.servfail_rate = 1.0;
  const auto r = resolve_udp({});
  ASSERT_TRUE(r.success);  // transport worked; the rcode carries the fault
  EXPECT_EQ(r.response.flags.rcode, dns::Rcode::kServFail);
  EXPECT_EQ(stats_.injected_servfail, 1u);
}

TEST_F(EngineFaultTest, RefusedInjection) {
  engine_config.faults.refused_rate = 1.0;
  const auto r = resolve_udp({});
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.response.flags.rcode, dns::Rcode::kRefused);
  EXPECT_EQ(stats_.injected_refused, 1u);
}

TEST_F(EngineFaultTest, StallNeverAnswers) {
  engine_config.faults.stall_rate = 1.0;
  core::UdpClientConfig c;
  c.timeout = simnet::ms(500);
  const auto r = resolve_udp(c);
  EXPECT_FALSE(r.success);
  EXPECT_EQ(stats_.stalled, 1u);
}

TEST_F(EngineFaultTest, RatesComposeExclusively) {
  // One uniform draw partitions [0,1): with rates summing to 1 every query
  // draws exactly one fault.
  engine_config.faults.stall_rate = 0.3;
  engine_config.faults.servfail_rate = 0.4;
  engine_config.faults.refused_rate = 0.3;
  resolver::Engine engine(loop, engine_config);
  for (int i = 0; i < 50; ++i) {
    engine.handle(dns::Message::make_query(0, name("x.example")),
                  [](dns::Message) {});
  }
  loop.run();
  const auto& s = engine.stats();
  EXPECT_EQ(s.stalled + s.injected_servfail + s.injected_refused, 50u);
  EXPECT_GT(s.stalled, 0u);
  EXPECT_GT(s.injected_servfail, 0u);
  EXPECT_GT(s.injected_refused, 0u);
}

// --- Server restart --------------------------------------------------------------

TEST_F(TwoHostFixture, UdpServerRestartDropsAndRecovers) {
  resolver::Engine engine(loop, {});
  resolver::UdpServer udp_server(server, engine, 53);
  core::UdpClientConfig config;
  config.timeout = simnet::ms(400);
  config.max_retries = 3;
  core::UdpResolverClient stub(client, {server.id(), 53}, config);

  udp_server.restart(simnet::ms(600));
  core::ResolutionResult observed;
  stub.resolve(name("a.example"), dns::RType::kA,
               [&](const core::ResolutionResult& r) { observed = r; });
  loop.run();

  // First datagram (t=0) and first retransmission (t=400ms) hit the dead
  // window; the second retransmission (t=800ms) lands after recovery.
  EXPECT_TRUE(observed.success);
  EXPECT_EQ(udp_server.dropped_while_down(), 2u);
  EXPECT_GE(observed.resolution_time(), simnet::ms(800));
}

// --- Reconnecting DoH client -----------------------------------------------------

class DohChaosTest : public TwoHostFixture {
 protected:
  resolver::EngineConfig engine_config;
  std::unique_ptr<resolver::Engine> engine;
  std::unique_ptr<resolver::DohServer> doh_server;

  void start_server() {
    engine = std::make_unique<resolver::Engine>(loop, engine_config);
    resolver::DohServerConfig config;
    config.tls.chain = tlssim::CertificateChain::cloudflare();
    doh_server =
        std::make_unique<resolver::DohServer>(server, *engine, config, 443);
  }

  core::DohClientConfig client_config(core::HttpVersion version) {
    core::DohClientConfig c;
    c.server_name = "cloudflare-dns.com";
    c.http_version = version;
    c.retry.max_retries = 8;
    c.retry.backoff_initial = simnet::ms(100);
    c.retry.backoff_max = simnet::seconds(1);
    c.retry.query_timeout = simnet::seconds(3);
    return c;
  }
};

TEST_F(DohChaosTest, SurvivesServerRestartMidQuery) {
  start_server();
  core::DohClient stub(client, {server.id(), 443},
                       client_config(core::HttpVersion::kHttp2));

  // Warm the connection, then crash the server for 2 seconds while queries
  // keep arriving every 100ms.
  std::vector<std::uint64_t> ids;
  loop.schedule_at(simnet::ms(500),
                   [&]() { doh_server->restart(simnet::seconds(2)); });
  for (int i = 0; i < 30; ++i) {
    loop.schedule_at(simnet::ms(100) * i, [&, i]() {
      ids.push_back(stub.resolve(name(("q" + std::to_string(i) + ".example")
                                          .c_str()),
                                 dns::RType::kA, {}));
    });
  }
  loop.run();

  std::size_t ok = 0;
  for (const auto id : ids) {
    if (stub.result(id).success) ++ok;
  }
  // >= 99% eventual success through the 2s outage, within the retry budget.
  EXPECT_EQ(ok, ids.size());
  EXPECT_EQ(stub.retry_stats().budget_exhausted, 0u);
  EXPECT_GE(stub.retry_stats().reconnects, 1u);
  EXPECT_GE(stub.retry_stats().retried_queries, 1u);
  EXPECT_EQ(doh_server->restarts(), 1u);
  EXPECT_TRUE(doh_server->listening());
}

TEST_F(DohChaosTest, QueryTimeoutRecoversFromStalledServer) {
  engine_config.faults.stall_rate = 0.5;  // every other query stalls
  start_server();
  auto config = client_config(core::HttpVersion::kHttp2);
  config.retry.query_timeout = simnet::ms(800);
  core::DohClient stub(client, {server.id(), 443}, config);

  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 20; ++i) {
    ids.push_back(stub.resolve(
        name(("s" + std::to_string(i) + ".example").c_str()),
        dns::RType::kA, {}));
  }
  loop.run();

  for (const auto id : ids) EXPECT_TRUE(stub.result(id).success);
  EXPECT_GT(stub.retry_stats().query_timeouts, 0u);
  EXPECT_EQ(stub.retry_stats().budget_exhausted, 0u);
}

TEST_F(DohChaosTest, BudgetBoundsRetries) {
  start_server();
  auto config = client_config(core::HttpVersion::kHttp2);
  config.retry.max_retries = 2;
  config.retry.query_timeout = 0;
  core::DohClient stub(client, {server.id(), 443}, config);

  // Crash while the first connection is still handshaking and never come
  // back: the query must fail after exactly its retry budget.
  loop.schedule_at(simnet::ms(10),
                   [&]() { doh_server->restart(simnet::seconds(3600)); });
  const auto id = stub.resolve(name("doomed.example"), dns::RType::kA, {});
  loop.run_until(simnet::seconds(60));

  EXPECT_FALSE(stub.result(id).success);
  EXPECT_EQ(stub.retry_stats().retried_queries, 2u);
  EXPECT_EQ(stub.retry_stats().budget_exhausted, 1u);
}

TEST_F(DohChaosTest, FailFastWithoutRetryPolicy) {
  start_server();
  core::DohClientConfig config;
  config.server_name = "cloudflare-dns.com";
  core::DohClient stub(client, {server.id(), 443}, config);

  // Crash mid-handshake (the SYN arrives after ~5ms) so the in-flight
  // query sees the reset before it can complete.
  loop.schedule_at(simnet::ms(8),
                   [&]() { doh_server->restart(simnet::seconds(1)); });
  const auto id = stub.resolve(name("a.example"), dns::RType::kA, {});
  loop.run();

  EXPECT_FALSE(stub.result(id).success);
  EXPECT_EQ(stub.retry_stats().retried_queries, 0u);
}

// --- Reconnecting DoT client -----------------------------------------------------

TEST_F(TwoHostFixture, DotClientReconnectsThroughRestart) {
  resolver::Engine engine(loop, {});
  resolver::DotServer dot_server(server, engine, {}, 853);
  core::DotClientConfig config;
  config.retry.max_retries = 8;
  config.retry.backoff_initial = simnet::ms(100);
  config.retry.backoff_max = simnet::seconds(1);
  core::DotClient stub(client, {server.id(), 853}, config);

  std::vector<std::uint64_t> ids;
  loop.schedule_at(simnet::ms(300),
                   [&]() { dot_server.restart(simnet::seconds(2)); });
  for (int i = 0; i < 20; ++i) {
    loop.schedule_at(simnet::ms(150) * i, [&, i]() {
      ids.push_back(stub.resolve(
          name(("d" + std::to_string(i) + ".example").c_str()),
          dns::RType::kA, {}));
    });
  }
  loop.run();

  for (const auto id : ids) EXPECT_TRUE(stub.result(id).success);
  EXPECT_EQ(stub.retry_stats().budget_exhausted, 0u);
  EXPECT_GE(stub.retry_stats().reconnects, 1u);
  EXPECT_EQ(dot_server.restarts(), 1u);
}

TEST_F(DohChaosTest, RecoversFromLinkOutage) {
  start_server();
  auto config = client_config(core::HttpVersion::kHttp2);
  config.retry.query_timeout = simnet::seconds(2);
  core::DohClient stub(client, {server.id(), 443}, config);

  // Black-hole the link (no RSTs, pure silence) while queries keep coming.
  simnet::FaultSchedule schedule;
  schedule.add_outage(simnet::seconds(4), /*duration=*/simnet::seconds(2));
  net.inject_faults(client.id(), server.id(), schedule);

  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 40; ++i) {
    loop.schedule_at(simnet::ms(3000) + simnet::ms(100) * i, [&, i]() {
      ids.push_back(stub.resolve(
          name(("o" + std::to_string(i) + ".example").c_str()),
          dns::RType::kA, {}));
    });
  }
  loop.run();

  ASSERT_EQ(ids.size(), 40u);
  for (const auto id : ids) EXPECT_TRUE(stub.result(id).success);
  EXPECT_EQ(stub.retry_stats().budget_exhausted, 0u);
}

TEST_F(TwoHostFixture, DotClientTimeoutRecoversFromStalledServer) {
  resolver::EngineConfig engine_config;
  engine_config.faults.stall_rate = 0.3;
  resolver::Engine engine(loop, engine_config);
  resolver::DotServer dot_server(server, engine, {}, 853);
  core::DotClientConfig config;
  config.retry.max_retries = 8;
  config.retry.query_timeout = simnet::ms(800);
  core::DotClient stub(client, {server.id(), 853}, config);

  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 20; ++i) {
    loop.schedule_at(simnet::ms(100) * i, [&, i]() {
      ids.push_back(stub.resolve(
          name(("t" + std::to_string(i) + ".example").c_str()),
          dns::RType::kA, {}));
    });
  }
  loop.run();

  ASSERT_EQ(ids.size(), 20u);
  for (const auto id : ids) EXPECT_TRUE(stub.result(id).success);
  EXPECT_GT(stub.retry_stats().query_timeouts, 0u);
  EXPECT_EQ(stub.retry_stats().budget_exhausted, 0u);
}

// --- Circuit-breaker selector ----------------------------------------------------

class HealthTest : public TwoHostFixture {
 protected:
  void start(double primary_servfail_rate) {
    resolver::EngineConfig bad;
    bad.faults.servfail_rate = primary_servfail_rate;
    primary_engine = std::make_unique<resolver::Engine>(loop, bad);
    secondary_engine =
        std::make_unique<resolver::Engine>(loop, resolver::EngineConfig{});
    primary_server = std::make_unique<resolver::UdpServer>(
        server, *primary_engine, 53);
    secondary_server = std::make_unique<resolver::UdpServer>(
        server, *secondary_engine, 54);
    primary = std::make_unique<core::UdpResolverClient>(
        client, simnet::Address{server.id(), 53});
    secondary = std::make_unique<core::UdpResolverClient>(
        client, simnet::Address{server.id(), 54});
  }

  std::unique_ptr<resolver::Engine> primary_engine, secondary_engine;
  std::unique_ptr<resolver::UdpServer> primary_server, secondary_server;
  std::unique_ptr<core::UdpResolverClient> primary, secondary;
};

TEST_F(HealthTest, FailsOverOnServfailAndTripsBreaker) {
  start(/*primary_servfail_rate=*/1.0);
  core::HealthConfig config;
  config.failure_threshold = 3;
  config.open_duration = simnet::seconds(30);
  core::HealthTrackingClient selector(
      loop, {primary.get(), secondary.get()}, config);

  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 6; ++i) {
    loop.schedule_at(simnet::ms(100) * i, [&, i]() {
      ids.push_back(selector.resolve(
          name(("h" + std::to_string(i) + ".example").c_str()),
          dns::RType::kA, {}));
    });
  }
  loop.run();

  for (const auto id : ids) EXPECT_TRUE(selector.result(id).success);
  // First three queries probe the primary, fail over, and trip its breaker;
  // later queries go straight to the secondary.
  EXPECT_EQ(selector.health(0).breaker_trips, 1u);
  EXPECT_EQ(selector.health(0).queries, 3u);
  EXPECT_EQ(selector.health(1).queries, 6u);
  EXPECT_EQ(selector.failovers(), 3u);
  EXPECT_EQ(selector.exhausted(), 0u);
}

TEST_F(HealthTest, HalfOpenProbeClosesBreakerAfterRecovery) {
  start(/*primary_servfail_rate=*/1.0);
  core::HealthConfig config;
  config.failure_threshold = 2;
  config.open_duration = simnet::seconds(5);
  core::HealthTrackingClient selector(
      loop, {primary.get(), secondary.get()}, config);

  // Trip the primary's breaker.
  for (int i = 0; i < 2; ++i) {
    loop.schedule_at(simnet::ms(100) * i, [&, i]() {
      selector.resolve(name(("t" + std::to_string(i) + ".example").c_str()),
                       dns::RType::kA, {});
    });
  }
  loop.run();
  EXPECT_EQ(selector.health(0).state, core::BreakerState::kOpen);

  // After the cool-down the next query is allowed through as a probe.
  std::uint64_t probe_id = 0;
  loop.schedule_at(simnet::seconds(10), [&]() {
    probe_id = selector.resolve(name("probe.example"), dns::RType::kA, {});
  });
  loop.run();
  EXPECT_TRUE(selector.result(probe_id).success);
  // The probe still hit the broken engine (SERVFAIL) and failed over, so
  // the breaker re-opened immediately — half-open behaviour.
  EXPECT_EQ(selector.health(0).breaker_trips, 2u);
  EXPECT_EQ(selector.health(0).state, core::BreakerState::kOpen);
}

// --- Backoff ---------------------------------------------------------------------

TEST(Backoff, GrowsGeometricallyWithinJitterAndResets) {
  core::RetryPolicy policy;
  policy.backoff_initial = simnet::ms(100);
  policy.backoff_max = simnet::seconds(2);
  policy.backoff_multiplier = 2.0;
  policy.jitter = 0.2;
  core::Backoff backoff(policy);

  double expected_base = 100e3;
  for (int i = 0; i < 8; ++i) {
    const auto d = static_cast<double>(backoff.next());
    EXPECT_GE(d, expected_base * 0.8 - 1);
    EXPECT_LE(d, expected_base * 1.2 + 1);
    expected_base = std::min(expected_base * 2.0, 2e6);
  }
  backoff.reset();
  const auto again = static_cast<double>(backoff.next());
  EXPECT_GE(again, 100e3 * 0.8 - 1);
  EXPECT_LE(again, 100e3 * 1.2 + 1);
}

TEST(Backoff, DeterministicForSameSeed) {
  core::RetryPolicy policy;
  policy.seed = 1234;
  core::Backoff a(policy), b(policy);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(a.next(), b.next());
}

}  // namespace
}  // namespace dohperf
