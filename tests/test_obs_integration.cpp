// Observability end to end: spans and metrics recorded by the real client /
// server stacks over the simulated network. Covers the ISSUE acceptance
// criteria — byte-identical exports across identically seeded runs, spans
// surviving teardown-on-timeout, retry spans under exhaustion, and the fig5
// invariant (span byte attributes == the CostReport the client returns).
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/doh_client.hpp"
#include "core/udp_client.hpp"
#include "obs/export.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "resolver/engine.hpp"
#include "resolver/doh_server.hpp"
#include "resolver/udp_server.hpp"
#include "sim_fixture.hpp"

namespace dohperf::core {
namespace {

using dohperf::testing::TwoHostFixture;

dns::Name name(const std::string& n) { return dns::Name::parse(n); }

std::int64_t attr_int(const obs::Span& span, const std::string& key) {
  const obs::AttrValue* value = span.attr(key);
  return value ? std::get<std::int64_t>(*value) : -1;
}

// --- determinism -------------------------------------------------------------

struct Export {
  std::string trace;
  std::string metrics;
};

// One self-contained seeded DoH scenario: fresh loop/network/engine/server,
// three sequential resolutions, exports returned as strings.
Export run_seeded_doh_scenario() {
  obs::Tracer tracer;
  obs::Registry registry;
  simnet::EventLoop loop;
  tracer.bind(loop);
  simnet::Network net(loop, /*seed=*/7);
  simnet::Host client_host(net, "client");
  simnet::Host server_host(net, "resolver");
  simnet::LinkConfig link;
  link.latency = simnet::ms(5);
  net.connect(client_host.id(), server_host.id(), link);

  const obs::SpanContext obs_ctx{&tracer, 0, &registry};
  resolver::EngineConfig engine_config;
  engine_config.obs = obs_ctx;
  resolver::Engine engine(loop, engine_config);
  resolver::DohServerConfig server_config;
  server_config.tls.chain = tlssim::CertificateChain::cloudflare();
  resolver::DohServer doh_server(server_host, engine, server_config, 443);

  DohClientConfig client_config;
  client_config.server_name = "cloudflare-dns.com";
  client_config.obs = obs_ctx;
  DohClient client(client_host, {server_host.id(), 443}, client_config);
  for (const char* n : {"a.example.com", "b.example.com", "c.example.com"}) {
    const auto id = client.resolve(name(n), dns::RType::kA, {});
    loop.run();
    (void)client.result(id);  // finalize lazy costs into span attributes
  }
  return {obs::chrome_trace_json(tracer), registry.to_json().dump()};
}

TEST(ObsDeterminism, SameSeedRunsExportByteIdenticalJson) {
  const Export first = run_seeded_doh_scenario();
  const Export second = run_seeded_doh_scenario();
  EXPECT_EQ(first.trace, second.trace);
  EXPECT_EQ(first.metrics, second.metrics);
  // Sanity: the exports actually carry content, not two empty documents.
  EXPECT_NE(first.trace.find("\"tls_handshake\""), std::string::npos);
  EXPECT_NE(first.metrics.find("client.doh_h2.success"), std::string::npos);
}

// --- span lifecycle under failure -------------------------------------------

class ObsResolveTest : public TwoHostFixture {
 protected:
  obs::Tracer tracer;
  obs::Registry registry;

  ObsResolveTest() { tracer.bind(loop); }

  obs::SpanContext obs_ctx() { return {&tracer, 0, &registry}; }

  // Spans with this name, in begin order.
  std::vector<const obs::Span*> spans_named(const std::string& n) const {
    std::vector<const obs::Span*> out;
    for (const auto& span : tracer.spans()) {
      if (span.name == n) out.push_back(&span);
    }
    return out;
  }
};

// A server that accepts the connection and never answers forces the DoH
// client's query timeout to tear the stack down; every span opened on the
// way up must still close on the way down (no leaked-open spans).
TEST_F(ObsResolveTest, TimeoutTeardownClosesEverySpan) {
  resolver::EngineConfig engine_config;
  engine_config.faults.stall_rate = 1.0;  // accept, never answer
  resolver::Engine engine(loop, engine_config);
  resolver::DohServerConfig server_config;
  server_config.tls.chain = tlssim::CertificateChain::cloudflare();
  resolver::DohServer doh_server(server, engine, server_config, 443);

  DohClientConfig config;
  config.server_name = "cloudflare-dns.com";
  config.retry.query_timeout = simnet::ms(400);
  config.obs = obs_ctx();
  DohClient client_stub(client, {server.id(), 443}, config);

  ResolutionResult observed;
  observed.success = true;
  client_stub.resolve(name("stalled.example.com"), dns::RType::kA,
                      [&](const ResolutionResult& r) { observed = r; });
  loop.run();

  EXPECT_FALSE(observed.success);
  EXPECT_EQ(tracer.open_spans(), 0u);
  const auto resolutions = spans_named("resolution");
  ASSERT_EQ(resolutions.size(), 1u);
  const obs::AttrValue* success = resolutions[0]->attr("success");
  ASSERT_NE(success, nullptr);
  EXPECT_FALSE(std::get<bool>(*success));
  EXPECT_EQ(registry.counter("client.doh_h2.failures"), 1u);
}

// Retry exhaustion on UDP against a dead server: one request span per
// attempt, one retry span per retransmission (with reason/attempt attrs),
// and the retries/timeouts counters tally exactly.
TEST_F(ObsResolveTest, UdpRetryExhaustionRecordsEveryAttempt) {
  UdpClientConfig config;
  config.timeout = simnet::ms(200);
  config.max_retries = 2;  // 3 attempts total, all doomed (no server)
  config.obs = obs_ctx();
  UdpResolverClient client_stub(client, {server.id(), 53}, config);

  ResolutionResult observed;
  observed.success = true;
  client_stub.resolve(name("dead.example.com"), dns::RType::kA,
                      [&](const ResolutionResult& r) { observed = r; });
  loop.run();

  EXPECT_FALSE(observed.success);
  EXPECT_EQ(tracer.open_spans(), 0u);
  EXPECT_EQ(spans_named("request").size(), 3u);
  const auto retries = spans_named("retry");
  ASSERT_EQ(retries.size(), 2u);
  for (std::size_t i = 0; i < retries.size(); ++i) {
    const obs::AttrValue* reason = retries[i]->attr("reason");
    ASSERT_NE(reason, nullptr);
    EXPECT_EQ(std::get<std::string>(*reason), "timeout");
    EXPECT_EQ(attr_int(*retries[i], "attempt"),
              static_cast<std::int64_t>(i + 1));
  }
  EXPECT_EQ(registry.counter("client.udp.retries"), 2u);
  EXPECT_EQ(registry.counter("client.udp.timeouts"), 1u);
  EXPECT_EQ(registry.counter("client.udp.failures"), 1u);
}

// Successful UDP resolution for contrast: the span tree carries the
// transport/query attributes and the success histogram gets one sample.
TEST_F(ObsResolveTest, UdpSuccessRecordsResolutionSpanAndHistogram) {
  resolver::Engine engine(loop, {});
  resolver::UdpServer udp_server(server, engine, 53);
  UdpClientConfig config;
  config.obs = obs_ctx();
  UdpResolverClient client_stub(client, {server.id(), 53}, config);

  client_stub.resolve(name("ok.example.com"), dns::RType::kA, {});
  loop.run();

  const auto resolutions = spans_named("resolution");
  ASSERT_EQ(resolutions.size(), 1u);
  const obs::AttrValue* transport = resolutions[0]->attr("transport");
  const obs::AttrValue* query = resolutions[0]->attr("query");
  ASSERT_NE(transport, nullptr);
  ASSERT_NE(query, nullptr);
  EXPECT_EQ(std::get<std::string>(*transport), "udp");
  EXPECT_EQ(std::get<std::string>(*query), "ok.example.com");
  EXPECT_EQ(tracer.open_spans(), 0u);
  EXPECT_EQ(registry.counter("client.udp.success"), 1u);
  EXPECT_EQ(registry.histogram_summary("client.udp.resolution_ms").count, 1u);
}

// --- the fig5 invariant ------------------------------------------------------

// The per-layer byte attributes on the resolution span, the bytes.* counters
// in the registry, and the CostReport result() returns must all agree — the
// property fig5_overhead_breakdown's --trace output rests on.
TEST_F(ObsResolveTest, SpanByteAttributesMatchCostReport) {
  resolver::Engine engine(loop, {});
  resolver::DohServerConfig server_config;
  server_config.tls.chain = tlssim::CertificateChain::cloudflare();
  resolver::DohServer doh_server(server, engine, server_config, 443);

  DohClientConfig config;
  config.server_name = "cloudflare-dns.com";
  config.obs = obs_ctx();
  DohClient client_stub(client, {server.id(), 443}, config);

  const auto id =
      client_stub.resolve(name("abcde.example.com"), dns::RType::kA, {});
  loop.run();
  const CostReport& cost = client_stub.result(id).cost;

  const auto resolutions = spans_named("resolution");
  ASSERT_EQ(resolutions.size(), 1u);
  const obs::Span& span = *resolutions[0];
  const auto u64 = [](std::int64_t v) { return static_cast<std::uint64_t>(v); };
  EXPECT_EQ(u64(attr_int(span, "bytes.wire")), cost.wire_bytes);
  EXPECT_EQ(u64(attr_int(span, "bytes.dns")), cost.dns_message_bytes);
  EXPECT_EQ(u64(attr_int(span, "bytes.tcp")), cost.tcp_overhead_bytes);
  EXPECT_EQ(u64(attr_int(span, "bytes.tls")), cost.tls_overhead_bytes);
  EXPECT_EQ(u64(attr_int(span, "bytes.http_hdr")), cost.http_header_bytes);
  EXPECT_EQ(u64(attr_int(span, "bytes.http_body")), cost.http_body_bytes);
  EXPECT_EQ(u64(attr_int(span, "bytes.http_mgmt")), cost.http_mgmt_bytes);
  EXPECT_EQ(u64(attr_int(span, "packets")), cost.packets);
  // One resolution on a fresh registry: the global counters equal the report.
  EXPECT_EQ(registry.counter("bytes.wire"), cost.wire_bytes);
  EXPECT_EQ(registry.counter("bytes.tls"), cost.tls_overhead_bytes);
  EXPECT_EQ(registry.counter("bytes.http_hdr"), cost.http_header_bytes);
  // The handshake span tree the trace viewer shows is present and closed.
  EXPECT_EQ(spans_named("connect").size(), 1u);
  EXPECT_EQ(spans_named("tcp_handshake").size(), 1u);
  EXPECT_EQ(spans_named("tls_handshake").size(), 1u);
  EXPECT_EQ(tracer.open_spans(), 0u);
}

}  // namespace
}  // namespace dohperf::core
