// Unit tests for the per-shard memory arena (src/simnet/arena.*).
//
// This suite exercises ShardMemory through its direct API only — it links
// no allocator hooks, so `new`/`delete` here hit the stock global heap and
// the arena under test never intercepts the test fixture's own
// allocations. The hooked behaviour (operator-new routing, steady-state
// zero-global-alloc accounting, run_sharded byte-identity) lives in
// test_arena_hooks.cpp.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <set>
#include <vector>

#include "simnet/arena.hpp"

namespace dohperf::simnet {
namespace {

TEST(ArenaClasses, ClassBytesLadder) {
  // Powers of two interleaved with half-steps: 32, 48, 64, 96, 128, ...
  EXPECT_EQ(ShardMemory::class_bytes(0), 32u);
  EXPECT_EQ(ShardMemory::class_bytes(1), 48u);
  EXPECT_EQ(ShardMemory::class_bytes(2), 64u);
  EXPECT_EQ(ShardMemory::class_bytes(3), 96u);
  EXPECT_EQ(ShardMemory::class_bytes(4), 128u);
  EXPECT_EQ(ShardMemory::class_bytes(ShardMemory::kNumClasses - 1),
            ShardMemory::kMaxClassBytes);
  for (std::size_t cls = 1; cls < ShardMemory::kNumClasses; ++cls) {
    EXPECT_LT(ShardMemory::class_bytes(cls - 1), ShardMemory::class_bytes(cls));
  }
}

TEST(ArenaClasses, ClassForRoundTripsAndBoundaries) {
  for (std::size_t cls = 0; cls < ShardMemory::kNumClasses; ++cls) {
    const std::size_t bytes = ShardMemory::class_bytes(cls);
    // A class's exact capacity maps to itself; one more byte spills to the
    // next class (or to huge past the last one).
    EXPECT_EQ(ShardMemory::class_for(bytes), cls);
    if (cls + 1 < ShardMemory::kNumClasses) {
      EXPECT_EQ(ShardMemory::class_for(bytes + 1), cls + 1);
    } else {
      EXPECT_EQ(ShardMemory::class_for(bytes + 1), ShardMemory::kHugeClass);
    }
  }
  EXPECT_EQ(ShardMemory::class_for(1), 0u);
  EXPECT_EQ(ShardMemory::class_for(ShardMemory::kMinClassBytes), 0u);
}

TEST(ArenaAlloc, ServesDistinctWritableBlocks) {
  ShardMemory* arena = ShardMemory::create();
  void* a = arena->allocate(100, 16);
  void* b = arena->allocate(100, 16);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a, b);
  std::memset(a, 0xAA, 100);
  std::memset(b, 0xBB, 100);
  EXPECT_EQ(static_cast<unsigned char*>(a)[99], 0xAA);
  EXPECT_EQ(static_cast<unsigned char*>(b)[0], 0xBB);
  EXPECT_EQ(ShardMemory::owner_of(a), arena);
  EXPECT_EQ(ShardMemory::owner_of(b), arena);

  const ShardMemoryStats s = arena->stats();
  EXPECT_EQ(s.arena_allocs, 2u);
  EXPECT_EQ(s.freelist_hits, 0u);
  EXPECT_EQ(s.live_blocks, 2u);
  EXPECT_EQ(s.arena_chunks, 1u);
  EXPECT_EQ(s.arena_bytes, ShardMemory::kChunkPayload);

  ShardMemory::deallocate(a);
  ShardMemory::deallocate(b);
  arena->release();
}

TEST(ArenaAlloc, FreelistRecyclesSameClass) {
  ShardMemory* arena = ShardMemory::create();
  void* a = arena->allocate(100, 16);
  ShardMemory::deallocate(a);
  // Same class (100 + header -> 128B class) must be served by recycling the
  // block just freed, not by advancing the bump cursor.
  void* b = arena->allocate(110, 16);
  EXPECT_EQ(b, a);
  const ShardMemoryStats s = arena->stats();
  EXPECT_EQ(s.arena_allocs, 2u);
  EXPECT_EQ(s.freelist_hits, 1u);
  EXPECT_EQ(s.live_blocks, 1u);
  ShardMemory::deallocate(b);
  arena->release();
}

TEST(ArenaAlloc, BumpChunksGrowAndSlabsAreDedicated) {
  ShardMemory* arena = ShardMemory::create();
  // 65 x 4KiB-class blocks exceed one 256KiB chunk.
  std::vector<void*> blocks;
  for (int i = 0; i < 65; ++i) blocks.push_back(arena->allocate(4000, 16));
  ShardMemoryStats s = arena->stats();
  EXPECT_GE(s.arena_chunks, 2u);
  EXPECT_EQ(s.arena_bytes, s.arena_chunks * ShardMemory::kChunkPayload);

  // A class bigger than the chunk payload gets its own slab chunk sized to
  // the class, not a bump chunk.
  const std::uint64_t chunks_before = s.arena_chunks;
  void* big = arena->allocate(ShardMemory::kChunkPayload + 1, 16);
  EXPECT_EQ(ShardMemory::owner_of(big), arena);
  s = arena->stats();
  EXPECT_EQ(s.arena_chunks, chunks_before + 1);
  EXPECT_GT(s.arena_bytes, chunks_before * ShardMemory::kChunkPayload);
  EXPECT_EQ(s.huge_allocs, 0u);

  ShardMemory::deallocate(big);
  for (void* p : blocks) ShardMemory::deallocate(p);
  arena->release();
}

TEST(ArenaAlloc, HugeBlocksPassThroughToGlobalHeap) {
  ShardMemory* arena = ShardMemory::create();
  void* huge = arena->allocate((std::size_t{4} << 20) + 1, 16);
  ASSERT_NE(huge, nullptr);
  std::memset(huge, 0xCC, (std::size_t{4} << 20) + 1);
  // Routed by header: no owner, so the arena holds no reference to it.
  EXPECT_EQ(ShardMemory::owner_of(huge), nullptr);
  const ShardMemoryStats s = arena->stats();
  EXPECT_EQ(s.huge_allocs, 1u);
  EXPECT_EQ(s.arena_allocs, 0u);
  EXPECT_EQ(s.live_blocks, 0u);
  ShardMemory::deallocate(huge);
  arena->release();
}

TEST(ArenaAlloc, RespectsLargeAlignments) {
  ShardMemory* arena = ShardMemory::create();
  for (std::size_t align : {std::size_t{16}, std::size_t{64},
                            std::size_t{128}, std::size_t{4096}}) {
    void* p = arena->allocate(200, align);
    ASSERT_NE(p, nullptr);
    // detlint: allow(DET005) address inspected only for the alignment assertion
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u)
        << "align=" << align;
    EXPECT_EQ(ShardMemory::owner_of(p), arena);
    std::memset(p, 0x5A, 200);
    ShardMemory::deallocate(p);
  }
  // Sub-header alignments use the no-padding fast path and still give 16.
  void* p = arena->allocate(24, 8);
  // detlint: allow(DET005) address inspected only for the alignment assertion
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 16, 0u);
  ShardMemory::deallocate(p);
  arena->release();
}

TEST(ArenaReset, RefusesWithLiveBlocksThenRecyclesChunks) {
  ShardMemory* arena = ShardMemory::create();
  std::vector<void*> blocks;
  for (int i = 0; i < 200; ++i) blocks.push_back(arena->allocate(1000, 16));
  void* slab = arena->allocate(ShardMemory::kChunkPayload + 1, 16);
  const std::uint64_t chunks_warm = arena->stats().arena_chunks;
  ASSERT_GE(chunks_warm, 2u);

  EXPECT_FALSE(arena->reset());  // blocks still live

  ShardMemory::deallocate(slab);
  for (void* p : blocks) ShardMemory::deallocate(p);
  ASSERT_TRUE(arena->reset());

  // The same workload replayed on the reset arena reuses the warm chunks:
  // no new chunk is fetched from the global heap.
  blocks.clear();
  for (int i = 0; i < 200; ++i) blocks.push_back(arena->allocate(1000, 16));
  slab = arena->allocate(ShardMemory::kChunkPayload + 1, 16);
  EXPECT_EQ(arena->stats().arena_chunks, chunks_warm);

  ShardMemory::deallocate(slab);
  for (void* p : blocks) ShardMemory::deallocate(p);
  arena->release();
}

TEST(ArenaLifetime, OrphanSurvivesUntilLastEscapedBlockFreed) {
  ShardMemory* arena = ShardMemory::create();
  void* escaped = arena->allocate(64, 16);
  std::memset(escaped, 0x11, 64);
  arena->release();  // creator gone; block still routes to the orphan
  EXPECT_EQ(ShardMemory::owner_of(escaped), arena);
  EXPECT_EQ(static_cast<unsigned char*>(escaped)[63], 0x11);
  // Freeing the last escaped block destroys the orphaned arena (sanitizer
  // builds verify no leak and no use-after-free here).
  ShardMemory::deallocate(escaped);
}

TEST(ArenaStats, LiveBlockCountTracksAllocAndFree) {
  ShardMemory* arena = ShardMemory::create();
  std::vector<void*> blocks;
  for (int i = 0; i < 10; ++i) blocks.push_back(arena->allocate(48, 16));
  EXPECT_EQ(arena->stats().live_blocks, 10u);
  for (int i = 0; i < 4; ++i) {
    ShardMemory::deallocate(blocks.back());
    blocks.pop_back();
  }
  EXPECT_EQ(arena->stats().live_blocks, 6u);
  EXPECT_EQ(arena->stats().arena_allocs, 10u);
  for (void* p : blocks) ShardMemory::deallocate(p);
  EXPECT_EQ(arena->stats().live_blocks, 0u);
  arena->release();
}

TEST(ArenaStats, AccumulateSumsEveryField) {
  ShardMemoryStats a{1, 2, 3, 4, 5, 6, 7};
  const ShardMemoryStats b{10, 20, 30, 40, 50, 60, 70};
  a.accumulate(b);
  EXPECT_EQ(a.arena_bytes, 11u);
  EXPECT_EQ(a.arena_chunks, 22u);
  EXPECT_EQ(a.arena_allocs, 33u);
  EXPECT_EQ(a.freelist_hits, 44u);
  EXPECT_EQ(a.huge_allocs, 55u);
  EXPECT_EQ(a.live_blocks, 66u);
  EXPECT_EQ(a.global_allocs, 77u);
}

}  // namespace
}  // namespace dohperf::simnet
