#include <gtest/gtest.h>

#include <cmath>

#include "stats/cdf.hpp"
#include "stats/rng.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"

namespace dohperf::stats {
namespace {

TEST(SplitMix64, Deterministic) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiffer) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(SplitMix64, DoubleInUnitInterval) {
  SplitMix64 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(SplitMix64, NextBelowRespectsBound) {
  SplitMix64 rng(9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(SplitMix64, NextInInclusiveRange) {
  SplitMix64 rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.next_in(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(PoissonArrivals, MeanGapMatchesRate) {
  PoissonArrivals arrivals(10.0, 3);  // the paper's 10 queries/second
  double total = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) total += arrivals.next_gap_sec();
  EXPECT_NEAR(total / n, 0.1, 0.005);
}

TEST(PoissonArrivals, ArrivalTimesMonotonic) {
  PoissonArrivals arrivals(10.0, 5);
  const auto times = arrivals.arrival_times(100);
  ASSERT_EQ(times.size(), 100u);
  for (std::size_t i = 1; i < times.size(); ++i) {
    EXPECT_GT(times[i], times[i - 1]);
  }
}

TEST(ZipfSampler, RanksInRange) {
  ZipfSampler zipf(100, 1.0, 17);
  for (int i = 0; i < 10000; ++i) {
    const auto r = zipf.sample();
    EXPECT_GE(r, 1u);
    EXPECT_LE(r, 100u);
  }
}

TEST(ZipfSampler, HeadIsHot) {
  // With s=1 over 1000 ranks, the top-15 ranks should capture a large
  // share — the paper found 25% of queries going to 15 names.
  ZipfSampler zipf(1000, 1.0, 23);
  int head = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (zipf.sample() <= 15) ++head;
  }
  const double share = static_cast<double>(head) / n;
  EXPECT_GT(share, 0.3);
  EXPECT_LT(share, 0.6);
}

TEST(LogNormalSampler, MedianNearExpMu) {
  LogNormalSampler ln(std::log(50.0), 0.5, 31);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(ln.sample());
  EXPECT_NEAR(median(xs), 50.0, 3.0);
}

TEST(Summary, BasicMoments) {
  Summary s;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(x);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 2.5);
  EXPECT_DOUBLE_EQ(s.sum(), 15.0);
}

TEST(Summary, EmptyIsSafe) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(Percentile, Interpolates) {
  std::vector<double> xs{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 4.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 2.5);
}

TEST(Percentile, SingleElement) {
  std::vector<double> xs{42};
  EXPECT_DOUBLE_EQ(percentile(xs, 37.5), 42.0);
}

TEST(BoxWhisker, FiveNumbers) {
  std::vector<double> xs;
  for (int i = 1; i <= 101; ++i) xs.push_back(i);
  const auto bw = BoxWhisker::from(xs);
  EXPECT_DOUBLE_EQ(bw.min, 1);
  EXPECT_DOUBLE_EQ(bw.q1, 26);
  EXPECT_DOUBLE_EQ(bw.median, 51);
  EXPECT_DOUBLE_EQ(bw.q3, 76);
  EXPECT_DOUBLE_EQ(bw.max, 101);
}

TEST(Cdf, FractionAtValue) {
  Cdf cdf;
  for (double x : {1.0, 2.0, 3.0, 4.0}) cdf.add(x);
  EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at(2.0), 0.5);
  EXPECT_DOUBLE_EQ(cdf.at(10.0), 1.0);
}

TEST(Cdf, Quantile) {
  Cdf cdf;
  for (int i = 1; i <= 100; ++i) cdf.add(i);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 50.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 100.0);
  EXPECT_THROW(cdf.quantile(0.0), std::domain_error);
}

TEST(Cdf, QuantileEmptyThrows) {
  Cdf cdf;
  EXPECT_THROW(cdf.quantile(0.5), std::domain_error);
}

// Shard merges build CDFs by add_all()-ing the sorted samples of per-shard
// CDFs (which takes the sorted-merge fast path). Every quantile must be
// identical to the serial CDF built by add()-ing the same values one at a
// time, whatever the shard split.
TEST(Cdf, ShardMergeQuantileIdentity) {
  SplitMix64 rng(17);
  std::vector<double> values;
  for (int i = 0; i < 5000; ++i) values.push_back(rng.next_double() * 1e3);

  Cdf serial;
  for (const double v : values) serial.add(v);

  for (const std::size_t shards : {1u, 3u, 7u, 16u}) {
    std::vector<Cdf> parts(shards);
    for (std::size_t i = 0; i < values.size(); ++i) {
      parts[i % shards].add(values[i]);
    }
    Cdf merged;
    for (const Cdf& part : parts) merged.add_all(part.sorted_values());

    ASSERT_EQ(merged.count(), serial.count());
    for (const double q : {0.01, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
      EXPECT_DOUBLE_EQ(merged.quantile(q), serial.quantile(q))
          << "shards=" << shards << " q=" << q;
    }
    EXPECT_EQ(merged.sorted_values(), serial.sorted_values());
  }
}

// The sorted-merge fast path must not engage when either side is unsorted;
// interleaving add() and add_all() stays correct.
TEST(Cdf, MixedAddAndMergeStaysCorrect) {
  Cdf cdf;
  cdf.add(5.0);
  cdf.add(1.0);  // now unsorted
  const std::vector<double> sorted_batch = {2.0, 3.0, 4.0};
  cdf.add_all(sorted_batch);
  const std::vector<double> unsorted_batch = {9.0, 0.0};
  cdf.add_all(unsorted_batch);
  const std::vector<double> expect = {0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 9.0};
  EXPECT_EQ(cdf.sorted_values(), expect);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 9.0);
}

TEST(Cdf, CurveIsMonotone) {
  Cdf cdf;
  SplitMix64 rng(3);
  for (int i = 0; i < 1000; ++i) cdf.add(rng.next_double() * 100);
  const auto curve = cdf.curve(0, 100, 50);
  ASSERT_EQ(curve.size(), 50u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].second, curve[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(curve.back().second, 1.0);
}

TEST(Histogram, BinningAndOverflow) {
  Histogram h(0, 10, 10);
  h.add(-1);
  h.add(0);
  h.add(5.5);
  h.add(10);
  h.add(100);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(5), 1u);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_DOUBLE_EQ(h.bin_lo(5), 5.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(5), 6.0);
}

TEST(TextTable, AlignsColumns) {
  TextTable t;
  t.add_row({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"long-name", "22"});
  const std::string rendered = t.render();
  EXPECT_NE(rendered.find("name       value"), std::string::npos);
  EXPECT_NE(rendered.find("long-name  22"), std::string::npos);
}

TEST(Format, Bytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(2048), "2.00 KB");
  EXPECT_EQ(format_bytes(3 * 1024 * 1024), "3.00 MB");
}

TEST(RenderSeries, GnuplotShape) {
  std::vector<std::pair<double, double>> pts{{0, 0}, {1, 0.5}};
  const std::string out = render_series("test", pts);
  EXPECT_NE(out.find("# test"), std::string::npos);
  EXPECT_NE(out.find("1.0000 0.500000"), std::string::npos);
}

}  // namespace
}  // namespace dohperf::stats
