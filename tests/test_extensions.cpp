// Tests for the extensions beyond the paper's core experiments:
// DNS-over-TCP (RFC 7766) and the packet-trace tooling.
#include <gtest/gtest.h>

#include "core/tcp_dns_client.hpp"
#include "resolver/engine.hpp"
#include "resolver/tcp_dns_server.hpp"
#include "sim_fixture.hpp"
#include "simnet/trace.hpp"

namespace dohperf {
namespace {

using testing::TwoHostFixture;

class TcpDnsTest : public TwoHostFixture {
 protected:
  resolver::EngineConfig engine_config;
  std::unique_ptr<resolver::Engine> engine;

  resolver::Engine& make_engine() {
    engine = std::make_unique<resolver::Engine>(loop, engine_config);
    return *engine;
  }
};

TEST_F(TcpDnsTest, EndToEndResolution) {
  resolver::TcpDnsServer dns_server(server, make_engine(), {}, 53);
  core::TcpDnsClient client_stub(client, {server.id(), 53});

  core::ResolutionResult observed;
  client_stub.resolve(dns::Name::parse("abcde.example.com"), dns::RType::kA,
                      [&](const core::ResolutionResult& r) { observed = r; });
  loop.run();
  ASSERT_TRUE(observed.success);
  EXPECT_EQ(std::get<dns::ARdata>(observed.response.answers.at(0).rdata)
                .to_string(),
            "192.0.2.1");
  // TCP handshake (1 RTT) + query (1 RTT), no TLS.
  EXPECT_GE(observed.resolution_time(), simnet::ms(20));
  EXPECT_LT(observed.resolution_time(), simnet::ms(30));
}

TEST_F(TcpDnsTest, ConnectionReuseAcrossQueries) {
  resolver::TcpDnsServer dns_server(server, make_engine(), {}, 53);
  core::TcpDnsClient client_stub(client, {server.id(), 53});
  simnet::TimeUs first = 0, second = 0;
  client_stub.resolve(dns::Name::parse("a.example.com"), dns::RType::kA,
                      [&](const core::ResolutionResult& r) {
                        first = r.resolution_time();
                      });
  loop.run();
  client_stub.resolve(dns::Name::parse("b.example.com"), dns::RType::kA,
                      [&](const core::ResolutionResult& r) {
                        second = r.resolution_time();
                      });
  loop.run();
  EXPECT_LT(second, first);  // no handshake the second time
  EXPECT_EQ(dns_server.session_count(), 1u);
}

TEST_F(TcpDnsTest, InOrderServerExhibitsHolBlocking) {
  engine_config.delay_policy.every_n = 2;
  engine_config.delay_policy.delay = simnet::ms(300);
  resolver::TcpDnsServer dns_server(server, make_engine(), {}, 53);
  core::TcpDnsClient client_stub(client, {server.id(), 53});

  simnet::TimeUs slow = 0, fast = 0;
  client_stub.resolve(dns::Name::parse("one.example.com"), dns::RType::kA,
                      {});
  client_stub.resolve(dns::Name::parse("two.example.com"), dns::RType::kA,
                      [&](const core::ResolutionResult& r) {
                        slow = r.completed_at;
                      });
  client_stub.resolve(dns::Name::parse("three.example.com"), dns::RType::kA,
                      [&](const core::ResolutionResult& r) {
                        fast = r.completed_at;
                      });
  loop.run();
  EXPECT_GE(fast, slow);  // same blocking as in-order DoT, minus the TLS
}

TEST_F(TcpDnsTest, OutOfOrderServerDoesNot) {
  engine_config.delay_policy.every_n = 2;
  engine_config.delay_policy.delay = simnet::ms(300);
  resolver::TcpDnsServerConfig ooo;
  ooo.out_of_order = true;
  resolver::TcpDnsServer dns_server(server, make_engine(), ooo, 53);
  core::TcpDnsClient client_stub(client, {server.id(), 53});

  simnet::TimeUs slow = 0, fast = 0;
  client_stub.resolve(dns::Name::parse("one.example.com"), dns::RType::kA,
                      {});
  client_stub.resolve(dns::Name::parse("two.example.com"), dns::RType::kA,
                      [&](const core::ResolutionResult& r) {
                        slow = r.completed_at;
                      });
  client_stub.resolve(dns::Name::parse("three.example.com"), dns::RType::kA,
                      [&](const core::ResolutionResult& r) {
                        fast = r.completed_at;
                      });
  loop.run();
  EXPECT_LT(fast, slow);
}

TEST_F(TcpDnsTest, ServerCloseFailsOutstanding) {
  engine_config.delay_policy.every_n = 1;
  engine_config.delay_policy.delay = simnet::seconds(10);
  auto server_holder = std::make_unique<resolver::TcpDnsServer>(
      server, make_engine(), resolver::TcpDnsServerConfig{}, 53);
  core::TcpDnsClient client_stub(client, {server.id(), 53});
  core::ResolutionResult observed;
  client_stub.resolve(dns::Name::parse("x.example.com"), dns::RType::kA,
                      [&](const core::ResolutionResult& r) { observed = r; });
  loop.run_until(simnet::ms(100));
  client_stub.disconnect();  // client gives up
  loop.run_until(simnet::seconds(1));
  EXPECT_FALSE(observed.success);
  EXPECT_EQ(client_stub.completed(), 1u);
}

TEST_F(TcpDnsTest, CheaperThanDotButMoreThanUdp) {
  resolver::TcpDnsServer dns_server(server, make_engine(), {}, 53);
  core::TcpDnsClient client_stub(client, {server.id(), 53});
  client_stub.resolve(dns::Name::parse("a.example.com"), dns::RType::kA, {});
  loop.run();
  client_stub.disconnect();
  loop.run();
  const auto* counters = client_stub.tcp_counters();
  ASSERT_NE(counters, nullptr);
  const auto total = counters->total_wire_bytes();
  EXPECT_GT(total, 176u);   // more than the UDP exchange
  EXPECT_LT(total, 1200u);  // far less than any TLS-bearing transport
}

// --- packet traces ------------------------------------------------------------------

TEST_F(TcpDnsTest, RecordingTapCapturesExchange) {
  simnet::RecordingTap tap;
  net.add_tap(&tap);
  resolver::TcpDnsServer dns_server(server, make_engine(), {}, 53);
  core::TcpDnsClient client_stub(client, {server.id(), 53});
  client_stub.resolve(dns::Name::parse("traced.example.com"), dns::RType::kA,
                      {});
  loop.run();
  net.remove_tap(&tap);

  ASSERT_GE(tap.size(), 5u);  // SYN, SYN-ACK, ACK, query, response, ...
  // First three packets are the TCP handshake.
  const auto& syn = std::get<simnet::TcpSegment>(tap.entries()[0].packet.body);
  EXPECT_TRUE(syn.syn);
  EXPECT_FALSE(syn.ack_flag);
  const auto& synack =
      std::get<simnet::TcpSegment>(tap.entries()[1].packet.body);
  EXPECT_TRUE(synack.syn);
  EXPECT_TRUE(synack.ack_flag);

  const std::string text = tap.render(net);
  EXPECT_NE(text.find("client:"), std::string::npos);
  EXPECT_NE(text.find("> server:53 TCP"), std::string::npos);
  EXPECT_NE(text.find("S seq="), std::string::npos);
  EXPECT_GT(tap.total_bytes(), 0u);
}

TEST_F(TcpDnsTest, FilteredTapIgnoresOtherNodes) {
  simnet::Host bystander(net, "bystander");
  net.connect(client.id(), bystander.id(), {});
  simnet::RecordingTap tap(bystander.id());
  net.add_tap(&tap);

  resolver::TcpDnsServer dns_server(server, make_engine(), {}, 53);
  core::TcpDnsClient client_stub(client, {server.id(), 53});
  client_stub.resolve(dns::Name::parse("x.example.com"), dns::RType::kA, {});
  loop.run();
  EXPECT_EQ(tap.size(), 0u);  // nothing touched the bystander

  auto& sock = client.udp_open();
  bystander.udp_open(9).set_receiver([](const dns::Bytes&, simnet::Address) {});
  sock.send_to({bystander.id(), 9}, dns::Bytes{1});
  loop.run();
  EXPECT_EQ(tap.size(), 1u);
  net.remove_tap(&tap);
}

TEST_F(TcpDnsTest, TapRecordsDrops) {
  simnet::LinkConfig lossy;
  lossy.latency = simnet::ms(1);
  lossy.loss_rate = 1.0;  // everything dropped
  net.reconfigure(client.id(), server.id(), lossy);
  simnet::RecordingTap tap;
  net.add_tap(&tap);
  auto& sock = client.udp_open();
  sock.send_to({server.id(), 53}, dns::Bytes{1, 2, 3});
  loop.run();
  ASSERT_EQ(tap.size(), 1u);
  EXPECT_TRUE(tap.entries()[0].dropped);
  EXPECT_EQ(tap.total_bytes(), 0u);  // dropped packets excluded
  EXPECT_NE(tap.render(net).find("[DROPPED]"), std::string::npos);
  net.remove_tap(&tap);
}

}  // namespace
}  // namespace dohperf
