#include <gtest/gtest.h>

#include "http2/hpack.hpp"

namespace dohperf::http2 {
namespace {

using dns::ByteReader;
using dns::Bytes;

// --- integers (RFC 7541 §5.1) ----------------------------------------------------

TEST(HpackInteger, FitsInPrefix) {
  Bytes out;
  encode_integer(out, 5, 0x00, 10);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 10);
  ByteReader r(out);
  EXPECT_EQ(decode_integer(r, 5), 10u);
}

TEST(HpackInteger, Rfc7541ExampleC11) {
  // C.1.2: encoding 1337 with a 5-bit prefix -> 1f 9a 0a.
  Bytes out;
  encode_integer(out, 5, 0x00, 1337);
  EXPECT_EQ(out, (Bytes{0x1f, 0x9a, 0x0a}));
  ByteReader r(out);
  EXPECT_EQ(decode_integer(r, 5), 1337u);
}

TEST(HpackInteger, PreservesFlagBits) {
  Bytes out;
  encode_integer(out, 7, 0x80, 2);
  EXPECT_EQ(out[0], 0x82);
  ByteReader r(out);
  std::uint8_t flags = 0;
  EXPECT_EQ(decode_integer(r, 7, &flags), 2u);
  EXPECT_EQ(flags, 0x80);
}

TEST(HpackInteger, RoundTripSweep) {
  for (std::uint8_t prefix = 1; prefix <= 8; ++prefix) {
    for (std::uint64_t value : {0ULL, 1ULL, 30ULL, 127ULL, 128ULL, 255ULL,
                                16384ULL, 1000000ULL}) {
      Bytes out;
      encode_integer(out, prefix, 0, value);
      ByteReader r(out);
      EXPECT_EQ(decode_integer(r, prefix), value)
          << "prefix=" << int{prefix} << " value=" << value;
    }
  }
}

// --- Huffman ---------------------------------------------------------------------

TEST(Huffman, RoundTripCommonStrings) {
  for (const char* s :
       {"", "a", "www.example.com", "application/dns-message",
        "no-cache", ":authority", "GET", "accept-encoding",
        "Mozilla/5.0 (X11; Linux x86_64)", "max-age=300"}) {
    const Bytes encoded = huffman_encode(s);
    EXPECT_EQ(huffman_decode(encoded), s) << s;
    EXPECT_EQ(huffman_encoded_size(s), encoded.size()) << s;
  }
}

TEST(Huffman, RoundTripAllByteValues) {
  std::string all;
  for (int i = 0; i < 256; ++i) all += static_cast<char>(i);
  EXPECT_EQ(huffman_decode(huffman_encode(all)), all);
}

TEST(Huffman, CompressesHeaderText) {
  // Typical header text (lowercase + digits + punctuation) must shrink.
  const std::string text = "cache-control: max-age=300, stale-while-revalidate";
  EXPECT_LT(huffman_encoded_size(text), text.size());
}

TEST(Huffman, RejectsBrokenPadding) {
  // A full byte of EOS-padding (0xff after a complete symbol boundary is
  // more than 7 bits of padding).
  Bytes encoded = huffman_encode("hi");
  for (int i = 0; i < 6; ++i) encoded.push_back(0xff);
  EXPECT_THROW(huffman_decode(encoded), HpackError);
}

// --- dynamic table ------------------------------------------------------------------

TEST(DynamicTable, InsertAndIndex) {
  DynamicTable t(4096);
  t.insert({"a", "1"});
  t.insert({"b", "2"});
  EXPECT_EQ(t.entry_count(), 2u);
  EXPECT_EQ(t.at(1).name, "b");  // most recent first
  EXPECT_EQ(t.at(2).name, "a");
  EXPECT_THROW(t.at(3), HpackError);
  EXPECT_THROW(t.at(0), HpackError);
}

TEST(DynamicTable, SizeAccountingAndEviction) {
  // Entry size = name + value + 32.
  DynamicTable t(100);
  t.insert({"aaaa", "bbbb"});  // 40
  t.insert({"cccc", "dddd"});  // 40 -> total 80
  EXPECT_EQ(t.size(), 80u);
  t.insert({"eeee", "ffff"});  // 40 -> evicts oldest
  EXPECT_EQ(t.entry_count(), 2u);
  EXPECT_EQ(t.at(2).name, "cccc");
}

TEST(DynamicTable, OversizedEntryClearsTable) {
  DynamicTable t(50);
  t.insert({"a", "b"});
  t.insert({std::string(100, 'x'), "y"});
  EXPECT_EQ(t.entry_count(), 0u);
  EXPECT_EQ(t.size(), 0u);
}

TEST(DynamicTable, ShrinkEvicts) {
  DynamicTable t(4096);
  t.insert({"aaaa", "bbbb"});
  t.insert({"cccc", "dddd"});
  t.set_max_size(40);
  EXPECT_EQ(t.entry_count(), 1u);
  EXPECT_EQ(t.at(1).name, "cccc");
}

// --- encoder/decoder ------------------------------------------------------------------

std::vector<HeaderField> doh_request_headers() {
  return {
      {":method", "POST"},
      {":scheme", "https"},
      {":authority", "cloudflare-dns.com"},
      {":path", "/dns-query"},
      {"accept", "application/dns-message"},
      {"content-type", "application/dns-message"},
      {"content-length", "47"},
      {"user-agent", "dohperf/1.0"},
  };
}

TEST(Hpack, RoundTripBasic) {
  HpackEncoder encoder;
  HpackDecoder decoder;
  const auto headers = doh_request_headers();
  const Bytes block = encoder.encode(headers);
  EXPECT_EQ(decoder.decode(block), headers);
}

TEST(Hpack, StaticTableFullMatchIsOneByte) {
  HpackEncoder encoder;
  const Bytes block = encoder.encode({{":method", "GET"}});
  EXPECT_EQ(block.size(), 1u);
  EXPECT_EQ(block[0], 0x82);  // static index 2
}

TEST(Hpack, DifferentialHeadersShrinkOnRepeat) {
  // The HPACK dynamic table means the second identical request costs a
  // fraction of the first — the paper's "differential transmission"
  // mechanism that shrinks persistent-connection header overhead (Fig 5).
  HpackEncoder encoder;
  HpackDecoder decoder;
  const auto headers = doh_request_headers();
  const Bytes first = encoder.encode(headers);
  const Bytes second = encoder.encode(headers);
  EXPECT_EQ(decoder.decode(first), headers);
  EXPECT_EQ(decoder.decode(second), headers);
  EXPECT_LT(second.size(), first.size() / 4);
}

TEST(Hpack, RepeatIsAllIndexed) {
  HpackEncoder encoder;
  const auto headers = doh_request_headers();
  encoder.encode(headers);
  const Bytes second = encoder.encode(headers);
  // Every field collapses to a 1-2 byte indexed representation.
  EXPECT_LE(second.size(), headers.size() * 2);
}

TEST(Hpack, ValueChangeReusesName) {
  HpackEncoder encoder;
  HpackDecoder decoder;
  const Bytes first = encoder.encode({{"content-length", "100"}});
  const Bytes second = encoder.encode({{"content-length", "101"}});
  EXPECT_EQ(decoder.decode(first),
            (std::vector<HeaderField>{{"content-length", "100"}}));
  EXPECT_EQ(decoder.decode(second),
            (std::vector<HeaderField>{{"content-length", "101"}}));
  // Name comes from the static table, so the second block is just the
  // name index + the new value.
  EXPECT_LT(second.size(), first.size() + 2);
}

TEST(Hpack, DisabledDynamicTableStaysVerbose) {
  HpackEncoder encoder;
  encoder.disable_dynamic_table();
  HpackDecoder decoder;
  const auto headers = doh_request_headers();
  const Bytes first = encoder.encode(headers);
  const Bytes second = encoder.encode(headers);
  EXPECT_EQ(decoder.decode(first), headers);
  EXPECT_EQ(decoder.decode(second), headers);
  // Without the dynamic table there is no differential win.
  EXPECT_GE(second.size() + 2, first.size());
}

TEST(Hpack, DecoderTracksTableSizeUpdate) {
  HpackEncoder encoder;
  encoder.disable_dynamic_table();
  HpackDecoder decoder;
  // The size update (0) is carried at the start of the next block.
  EXPECT_EQ(decoder.decode(encoder.encode({{"x-custom", "v"}})),
            (std::vector<HeaderField>{{"x-custom", "v"}}));
  EXPECT_EQ(decoder.table().max_size(), 0u);
  EXPECT_EQ(decoder.table().entry_count(), 0u);
}

TEST(Hpack, LongValuesRoundTrip) {
  HpackEncoder encoder;
  HpackDecoder decoder;
  const std::vector<HeaderField> headers{
      {":path", "/dns-query?dns=" + std::string(500, 'A')}};
  EXPECT_EQ(decoder.decode(encoder.encode(headers)), headers);
}

TEST(Hpack, ManyBlocksKeepTablesInSync) {
  HpackEncoder encoder;
  HpackDecoder decoder;
  for (int i = 0; i < 200; ++i) {
    const std::vector<HeaderField> headers{
        {":method", "POST"},
        {"x-request-id", std::to_string(i)},
        {"x-batch", std::to_string(i / 10)},
    };
    EXPECT_EQ(decoder.decode(encoder.encode(headers)), headers) << i;
  }
  EXPECT_EQ(encoder.table().entry_count(), decoder.table().entry_count());
  EXPECT_EQ(encoder.table().size(), decoder.table().size());
}

TEST(Hpack, DecoderRejectsBadIndex) {
  HpackDecoder decoder;
  const Bytes bogus{0xff, 0xff, 0x0f};  // indexed field, enormous index
  EXPECT_THROW(decoder.decode(bogus), HpackError);
}

TEST(Hpack, StaticTableMatchesRfcAppendixA) {
  const auto& table = static_table();
  ASSERT_EQ(table.size(), 61u);
  EXPECT_EQ(table[0], (HeaderField{":authority", ""}));
  EXPECT_EQ(table[1], (HeaderField{":method", "GET"}));
  EXPECT_EQ(table[7], (HeaderField{":status", "200"}));
  EXPECT_EQ(table[53], (HeaderField{"server", ""}));
  EXPECT_EQ(table[60], (HeaderField{"www-authenticate", ""}));
}

}  // namespace
}  // namespace dohperf::http2
