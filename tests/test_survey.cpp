#include <gtest/gtest.h>

#include "survey/deployment.hpp"
#include "survey/prober.hpp"
#include "survey/report.hpp"

namespace dohperf::survey {
namespace {

using tlssim::TlsVersion;

class SurveyTest : public ::testing::Test {
 protected:
  SurveyTest()
      : net(loop, 3), prober_host(net, "prober"),
        deployment(net, prober_host, paper_providers()),
        prober(prober_host, deployment) {}

  /// Probe every provider and drain the loop.
  void run_survey() {
    for (const auto& spec : paper_providers()) prober.probe(spec);
    loop.run();
  }

  simnet::EventLoop loop;
  simnet::Network net;
  simnet::Host prober_host;
  ProviderDeployment deployment;
  Prober prober;
};

TEST_F(SurveyTest, ProviderListMatchesTable1) {
  const auto& providers = paper_providers();
  ASSERT_EQ(providers.size(), 10u);  // 9 providers, Google counted twice
  EXPECT_EQ(providers[0].marker, "G1");
  EXPECT_EQ(providers[1].marker, "G2");
  EXPECT_EQ(providers[2].marker, "CF");
  EXPECT_EQ(providers.back().marker, "CH");
}

TEST_F(SurveyTest, ContentTypesMatchTable2) {
  run_survey();
  // Row 1-2 of Table 2.
  const std::map<std::string, std::pair<bool, bool>> expected{
      // marker -> {dns-message, dns-json}
      {"G1", {false, true}}, {"G2", {true, false}}, {"CF", {true, true}},
      {"Q9", {true, true}},  {"CB", {true, false}}, {"PD", {true, false}},
      {"BD", {true, true}},  {"SD", {true, false}}, {"RF", {true, true}},
      {"CH", {true, false}},
  };
  for (const auto& [marker, flags] : expected) {
    const auto& r = prober.result(marker);
    EXPECT_EQ(r.dns_message, flags.first) << marker;
    EXPECT_EQ(r.dns_json, flags.second) << marker;
  }
}

TEST_F(SurveyTest, TlsVersionsMatchTable2) {
  run_survey();
  const auto has = [&](const std::string& marker, TlsVersion v) {
    const auto& tls = prober.result(marker).tls;
    const auto it = tls.find(v);
    return it != tls.end() && it->second;
  };
  // All providers speak TLS 1.2.
  for (const auto& p : paper_providers()) {
    EXPECT_TRUE(has(p.marker, TlsVersion::kTls12)) << p.marker;
  }
  // Legacy versions: only CF, PD, SD, RF.
  for (const auto& marker : {"CF", "PD", "SD", "RF"}) {
    EXPECT_TRUE(has(marker, TlsVersion::kTls10)) << marker;
    EXPECT_TRUE(has(marker, TlsVersion::kTls11)) << marker;
  }
  for (const auto& marker : {"G1", "G2", "Q9", "CB", "BD", "CH"}) {
    EXPECT_FALSE(has(marker, TlsVersion::kTls10)) << marker;
  }
  // TLS 1.3: everyone except CleanBrowsing and Rubyfish.
  for (const auto& marker : {"G1", "G2", "CF", "Q9", "PD", "BD", "SD", "CH"}) {
    EXPECT_TRUE(has(marker, TlsVersion::kTls13)) << marker;
  }
  EXPECT_FALSE(has("CB", TlsVersion::kTls13));
  EXPECT_FALSE(has("RF", TlsVersion::kTls13));
}

TEST_F(SurveyTest, PkiFeaturesMatchTable2) {
  run_survey();
  for (const auto& p : paper_providers()) {
    const auto& r = prober.result(p.marker);
    // Every provider's certificate is CT-logged; none demands OCSP MS.
    EXPECT_TRUE(r.certificate_transparency) << p.marker;
    EXPECT_FALSE(r.ocsp_must_staple) << p.marker;
    // Only Google publishes CAA.
    EXPECT_EQ(r.dns_caa, p.marker == "G1" || p.marker == "G2") << p.marker;
  }
}

TEST_F(SurveyTest, QuicAndDotMatchTable2) {
  run_survey();
  for (const auto& p : paper_providers()) {
    const auto& r = prober.result(p.marker);
    EXPECT_EQ(r.quic, p.marker == "G1" || p.marker == "G2") << p.marker;
  }
  for (const auto& marker : {"G1", "G2", "CF", "Q9", "CB"}) {
    EXPECT_TRUE(prober.result(marker).dns_over_tls) << marker;
  }
  for (const auto& marker : {"PD", "BD", "SD", "RF", "CH"}) {
    EXPECT_FALSE(prober.result(marker).dns_over_tls) << marker;
  }
}

TEST_F(SurveyTest, WorkingPathsAreTheConfiguredOnes) {
  run_survey();
  EXPECT_TRUE(prober.result("CF").working_paths.count("/dns-query"));
  EXPECT_TRUE(prober.result("CB").working_paths.count("/doh/family-filter"));
  EXPECT_TRUE(prober.result("G1").working_paths.count("/resolve"));
  EXPECT_TRUE(prober.result("PD").working_paths.count("/"));
}

TEST_F(SurveyTest, Table1RendersEveryProvider) {
  const std::string table = render_table1(paper_providers());
  EXPECT_NE(table.find("https://cloudflare-dns.com/dns-query"),
            std::string::npos);
  EXPECT_NE(table.find("https://doh.cleanbrowsing.org/doh/family-filter"),
            std::string::npos);
  EXPECT_NE(table.find("Commons Host"), std::string::npos);
}

TEST_F(SurveyTest, Table2RendersFeatureMatrix) {
  run_survey();
  const std::string table =
      render_table2(paper_providers(), prober.results());
  EXPECT_NE(table.find("dns-message"), std::string::npos);
  EXPECT_NE(table.find("TLS 1.3"), std::string::npos);
  EXPECT_NE(table.find("Traf. Steering"), std::string::npos);
  EXPECT_NE(table.find("DL"), std::string::npos);  // Google's steering
}

}  // namespace
}  // namespace dohperf::survey
