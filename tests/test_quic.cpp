// Tests for the QUIC simulation and DNS-over-QUIC (RFC 9250) extension.
#include <gtest/gtest.h>

#include "core/doq_client.hpp"
#include "quicsim/endpoint.hpp"
#include "resolver/engine.hpp"
#include "resolver/doq_server.hpp"
#include "sim_fixture.hpp"

namespace dohperf::quicsim {
namespace {

using dohperf::testing::TwoHostFixture;

// --- packet codec ---------------------------------------------------------------

TEST(QuicPacket, RoundTripAllFrameTypes) {
  Packet p;
  p.long_header = true;
  p.connection_id = 0xdeadbeefcafe;
  p.packet_number = 42;
  p.frames = {
      PingFrame{},
      AckFrame{{1, 2, 5}},
      CryptoFrame{100, Bytes{9, 9, 9}},
      StreamFrame{4, 10, true, Bytes{1, 2}},
      PaddingFrame{32},
      HandshakeDoneFrame{},
      ConnectionCloseFrame{7},
  };
  const Bytes wire = p.encode();
  const Packet out = Packet::decode(wire);
  EXPECT_EQ(out.long_header, true);
  EXPECT_EQ(out.connection_id, p.connection_id);
  EXPECT_EQ(out.packet_number, 42u);
  ASSERT_EQ(out.frames.size(), p.frames.size());
  EXPECT_EQ(std::get<AckFrame>(out.frames[1]).acked,
            (std::vector<std::uint64_t>{1, 2, 5}));
  EXPECT_EQ(std::get<CryptoFrame>(out.frames[2]).offset, 100u);
  const auto& sf = std::get<StreamFrame>(out.frames[3]);
  EXPECT_EQ(sf.stream_id, 4u);
  EXPECT_TRUE(sf.fin);
  EXPECT_EQ(std::get<ConnectionCloseFrame>(out.frames[6]).error_code, 7u);
}

TEST(QuicPacket, AckElicitingClassification) {
  Packet acks_only;
  acks_only.frames = {AckFrame{{1}}, PaddingFrame{10}};
  EXPECT_FALSE(acks_only.ack_eliciting());
  Packet with_data;
  with_data.frames = {AckFrame{{1}}, StreamFrame{0, 0, false, Bytes{1}}};
  EXPECT_TRUE(with_data.ack_eliciting());
}

TEST(QuicPacket, GarbageRejected) {
  Bytes garbage{1, 2, 3};
  EXPECT_THROW(Packet::decode(garbage), dns::WireError);
}

// --- connection handshake & streams ------------------------------------------------

class QuicTest : public TwoHostFixture {
 protected:
  tlssim::ServerConfig server_tls;
  std::unique_ptr<QuicServer> quic_server;
  QuicConnection* accepted = nullptr;

  void start_echo_server(std::uint16_t port = 853) {
    quic_server = std::make_unique<QuicServer>(
        server, port, &server_tls, [this](QuicConnection& conn) {
          accepted = &conn;
          conn.set_on_stream_data([&conn](std::uint64_t id,
                                          std::span<const std::uint8_t> d,
                                          bool fin) {
            if (!d.empty() || fin) {
              conn.send_stream(id, Bytes(d.begin(), d.end()), fin);
            }
          });
        });
  }
};

TEST_F(QuicTest, HandshakeIsOneRoundTrip) {
  start_echo_server();
  QuicClientEndpoint endpoint(client, {server.id(), 853}, {});
  simnet::TimeUs established_at = 0;
  endpoint.connection().set_on_established(
      [&]() { established_at = loop.now(); });
  loop.run();
  EXPECT_TRUE(endpoint.connection().established());
  ASSERT_NE(accepted, nullptr);
  EXPECT_TRUE(accepted->established());
  // One RTT (10ms with 5ms one-way): the defining QUIC advantage over
  // TCP+TLS1.3's two round trips.
  EXPECT_EQ(established_at, simnet::ms(10));
  EXPECT_EQ(endpoint.connection().alpn(), "doq");
}

TEST_F(QuicTest, InitialIsPaddedTo1200) {
  start_echo_server();
  simnet::CountingTap tap;
  net.add_tap(&tap);
  QuicClientEndpoint endpoint(client, {server.id(), 853}, {});
  loop.step();  // only the first send
  net.remove_tap(&tap);
  EXPECT_GE(tap.bytes(), kMinInitialPayload);
  loop.run();
}

TEST_F(QuicTest, StreamEcho) {
  start_echo_server();
  QuicClientEndpoint endpoint(client, {server.id(), 853}, {});
  auto& conn = endpoint.connection();
  Bytes echoed;
  bool fin_seen = false;
  conn.set_on_stream_data(
      [&](std::uint64_t, std::span<const std::uint8_t> d, bool fin) {
        echoed.insert(echoed.end(), d.begin(), d.end());
        fin_seen |= fin;
      });
  const auto id = conn.open_stream();
  conn.send_stream(id, Bytes{1, 2, 3}, true);  // queued until established
  loop.run();
  EXPECT_EQ(echoed, (Bytes{1, 2, 3}));
  EXPECT_TRUE(fin_seen);
}

TEST_F(QuicTest, ManyIndependentStreams) {
  start_echo_server();
  QuicClientEndpoint endpoint(client, {server.id(), 853}, {});
  auto& conn = endpoint.connection();
  std::map<std::uint64_t, Bytes> received;
  conn.set_on_stream_data(
      [&](std::uint64_t id, std::span<const std::uint8_t> d, bool) {
        received[id].insert(received[id].end(), d.begin(), d.end());
      });
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 10; ++i) {
    const auto id = conn.open_stream();
    ids.push_back(id);
    conn.send_stream(id, Bytes(static_cast<std::size_t>(i + 1),
                               static_cast<std::uint8_t>(i)),
                     true);
  }
  loop.run();
  ASSERT_EQ(received.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(received[ids[static_cast<std::size_t>(i)]].size(),
              static_cast<std::size_t>(i + 1));
  }
}

TEST_F(QuicTest, LargeStreamSplitsAcrossPackets) {
  start_echo_server();
  QuicClientEndpoint endpoint(client, {server.id(), 853}, {});
  auto& conn = endpoint.connection();
  Bytes echoed;
  conn.set_on_stream_data(
      [&](std::uint64_t, std::span<const std::uint8_t> d, bool) {
        echoed.insert(echoed.end(), d.begin(), d.end());
      });
  Bytes big(10000);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<std::uint8_t>(i);
  }
  conn.send_stream(conn.open_stream(), big, true);
  loop.run();
  EXPECT_EQ(echoed, big);
  EXPECT_GT(conn.counters().packets_sent, big.size() / kMaxPacketPayload);
}

TEST_F(QuicTest, RecoversFromLoss) {
  simnet::LinkConfig lossy;
  lossy.latency = simnet::ms(5);
  lossy.loss_rate = 0.25;
  net.reconfigure(client.id(), server.id(), lossy);
  start_echo_server();
  QuicClientEndpoint endpoint(client, {server.id(), 853}, {});
  auto& conn = endpoint.connection();
  Bytes echoed;
  conn.set_on_stream_data(
      [&](std::uint64_t, std::span<const std::uint8_t> d, bool) {
        echoed.insert(echoed.end(), d.begin(), d.end());
      });
  Bytes data(5000, 0x7e);
  conn.send_stream(conn.open_stream(), data, true);
  loop.run();
  EXPECT_EQ(echoed, data);
  EXPECT_GT(conn.counters().retransmits + accepted->counters().retransmits,
            0u);
}

TEST_F(QuicTest, CloseNotifiesBothSides) {
  start_echo_server();
  QuicClientEndpoint endpoint(client, {server.id(), 853}, {});
  bool server_closed = false;
  loop.run();
  ASSERT_NE(accepted, nullptr);
  accepted->set_on_closed([&]() { server_closed = true; });
  endpoint.connection().close();
  loop.run();
  EXPECT_TRUE(endpoint.connection().closed());
  EXPECT_TRUE(server_closed);
}

// --- DoQ end to end ------------------------------------------------------------------

class DoqTest : public TwoHostFixture {
 protected:
  resolver::EngineConfig engine_config;
  std::unique_ptr<resolver::Engine> engine;
  std::unique_ptr<resolver::DoqServer> doq_server;

  void start_server() {
    engine = std::make_unique<resolver::Engine>(loop, engine_config);
    resolver::DoqServerConfig config;
    config.tls.chain = tlssim::CertificateChain::generic("doq.example");
    doq_server =
        std::make_unique<resolver::DoqServer>(server, *engine, config, 853);
  }
};

TEST_F(DoqTest, EndToEndResolution) {
  start_server();
  core::DoqClient client_stub(client, {server.id(), 853});
  core::ResolutionResult observed;
  client_stub.resolve(dns::Name::parse("abcde.example.com"), dns::RType::kA,
                      [&](const core::ResolutionResult& r) { observed = r; });
  loop.run();
  ASSERT_TRUE(observed.success);
  EXPECT_EQ(std::get<dns::ARdata>(observed.response.answers.at(0).rdata)
                .to_string(),
            "192.0.2.1");
  // 1-RTT handshake + 1-RTT query = 20ms (+processing): one RTT faster
  // than DoT over TCP+TLS1.3.
  EXPECT_LT(observed.resolution_time(), simnet::ms(25));
}

TEST_F(DoqTest, WarmConnectionIsSingleRtt) {
  start_server();
  core::DoqClient client_stub(client, {server.id(), 853});
  client_stub.resolve(dns::Name::parse("warm.example.com"), dns::RType::kA,
                      {});
  loop.run();
  core::ResolutionResult observed;
  client_stub.resolve(dns::Name::parse("next.example.com"), dns::RType::kA,
                      [&](const core::ResolutionResult& r) { observed = r; });
  loop.run();
  ASSERT_TRUE(observed.success);
  EXPECT_LT(observed.resolution_time(), simnet::ms(11));
  EXPECT_EQ(doq_server->connection_count(), 1u);
}

TEST_F(DoqTest, DelayedQueryDoesNotBlockOthers) {
  engine_config.delay_policy.every_n = 2;
  engine_config.delay_policy.delay = simnet::ms(500);
  start_server();
  core::DoqClient client_stub(client, {server.id(), 853});
  simnet::TimeUs slow = 0, fast = 0;
  client_stub.resolve(dns::Name::parse("one.example.com"), dns::RType::kA,
                      {});
  client_stub.resolve(dns::Name::parse("two.example.com"), dns::RType::kA,
                      [&](const core::ResolutionResult& r) {
                        slow = r.completed_at;
                      });
  client_stub.resolve(dns::Name::parse("three.example.com"), dns::RType::kA,
                      [&](const core::ResolutionResult& r) {
                        fast = r.completed_at;
                      });
  loop.run();
  EXPECT_LT(fast, slow);  // streams are independent, like DoH/2
}

TEST_F(DoqTest, SurvivesPacketLoss) {
  simnet::LinkConfig lossy;
  lossy.latency = simnet::ms(5);
  lossy.loss_rate = 0.2;
  net.reconfigure(client.id(), server.id(), lossy);
  start_server();
  core::DoqClient client_stub(client, {server.id(), 853});
  int succeeded = 0;
  for (int i = 0; i < 10; ++i) {
    client_stub.resolve(
        dns::Name::parse("q" + std::to_string(i) + ".example.com"),
        dns::RType::kA, [&](const core::ResolutionResult& r) {
          if (r.success) ++succeeded;
        });
  }
  loop.run();
  EXPECT_EQ(succeeded, 10);
}

TEST_F(DoqTest, DisconnectFailsOutstanding) {
  engine_config.delay_policy.every_n = 1;
  engine_config.delay_policy.delay = simnet::seconds(30);
  start_server();
  core::DoqClient client_stub(client, {server.id(), 853});
  core::ResolutionResult observed;
  client_stub.resolve(dns::Name::parse("x.example.com"), dns::RType::kA,
                      [&](const core::ResolutionResult& r) { observed = r; });
  loop.run_until(simnet::ms(100));
  client_stub.disconnect();
  loop.run_until(simnet::seconds(1));
  EXPECT_FALSE(observed.success);
  EXPECT_EQ(client_stub.completed(), 1u);
}

}  // namespace
}  // namespace dohperf::quicsim
