# ctest driver for the `obs_schema_check` gate: emit fresh JSON from two
# bench harnesses (--json on both, --trace on fig5), then validate every
# file against the documented schemas with tools/obs_schema_check. Invoked
# as a -P script so one test covers the emit + validate round trip.
#
# Expects: -DBENCH_FIG5=... -DBENCH_TABLE1=... -DBENCH_OVERLOAD=...
#          -DCHECKER=... -DOUT_DIR=...
foreach(var BENCH_FIG5 BENCH_TABLE1 BENCH_OVERLOAD CHECKER OUT_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "obs_schema_check.cmake: missing -D${var}")
  endif()
endforeach()

file(MAKE_DIRECTORY "${OUT_DIR}")
set(fig5_json "${OUT_DIR}/fig5.json")
set(fig5_trace "${OUT_DIR}/fig5_trace.json")
set(table1_json "${OUT_DIR}/table1.json")

execute_process(
  COMMAND "${BENCH_FIG5}" --names=10
          --json=${fig5_json} --trace=${fig5_trace}
  RESULT_VARIABLE rc
  OUTPUT_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "fig5_overhead_breakdown failed (exit ${rc})")
endif()

execute_process(
  COMMAND "${BENCH_TABLE1}" --json=${table1_json}
  RESULT_VARIABLE rc
  OUTPUT_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "table1_landscape failed (exit ${rc})")
endif()

# Short run, gates off: this test checks the emitted document structure
# (the overload_matrix cell schema), not the overload-control ladder —
# determinism is still enforced by the bench itself.
set(overload_json "${OUT_DIR}/overload.json")
execute_process(
  COMMAND "${BENCH_OVERLOAD}" --duration=2 --no-gate --jobs=2
          --json=${overload_json}
  RESULT_VARIABLE rc
  OUTPUT_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "overload_matrix failed (exit ${rc})")
endif()

execute_process(
  COMMAND "${CHECKER}" "${fig5_json}" "${fig5_trace}" "${table1_json}"
          "${overload_json}"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "obs_schema_check found schema violations (exit ${rc})")
endif()
