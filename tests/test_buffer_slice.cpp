// BufferSlice: the zero-copy invariants the byte path depends on —
// subslices alias (never copy), slices keep the storage alive, and
// equality is by content like the Bytes it replaced.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <utility>
#include <vector>

#include "simnet/buffer.hpp"

namespace dohperf::simnet {
namespace {

using Bytes = dns::Bytes;

Bytes iota_bytes(std::size_t n) {
  Bytes b(n);
  std::iota(b.begin(), b.end(), std::uint8_t{0});
  return b;
}

TEST(BufferSlice, WrapsBytesWithoutChangingContent) {
  const Bytes original = iota_bytes(64);
  const BufferSlice slice{Bytes(original)};
  ASSERT_EQ(slice.size(), 64u);
  EXPECT_TRUE(slice == original);
  EXPECT_EQ(slice[0], 0);
  EXPECT_EQ(slice[63], 63);
}

TEST(BufferSlice, SubsliceAliasesSameStorage) {
  const BufferSlice whole{iota_bytes(100)};
  const BufferSlice mid = whole.subslice(10, 20);
  ASSERT_EQ(mid.size(), 20u);
  // Aliasing, not copying: the subslice points into the parent's storage.
  EXPECT_EQ(mid.data(), whole.data() + 10);
  EXPECT_EQ(mid[0], 10);
  EXPECT_EQ(mid[19], 29);

  // Subslice of a subslice composes offsets against the same storage.
  const BufferSlice inner = mid.subslice(5, 5);
  EXPECT_EQ(inner.data(), whole.data() + 15);
  EXPECT_EQ(inner[0], 15);
}

TEST(BufferSlice, SubsliceClampsToBounds) {
  const BufferSlice whole{iota_bytes(10)};
  EXPECT_EQ(whole.subslice(4).size(), 6u);         // open-ended tail
  EXPECT_EQ(whole.subslice(4, 100).size(), 6u);    // length clamped
  EXPECT_EQ(whole.subslice(10).size(), 0u);        // at the end
  EXPECT_EQ(whole.subslice(100, 5).size(), 0u);    // past the end
}

TEST(BufferSlice, SlicesKeepStorageAliveAfterParentDies) {
  BufferSlice tail;
  {
    BufferSlice whole{iota_bytes(32)};
    tail = whole.subslice(16);
    EXPECT_EQ(whole.use_count(), 2);
  }  // parent slice destroyed; storage must survive via tail's reference
  EXPECT_EQ(tail.use_count(), 1);
  ASSERT_EQ(tail.size(), 16u);
  for (std::size_t i = 0; i < tail.size(); ++i) {
    EXPECT_EQ(tail[i], 16 + i);
  }
}

TEST(BufferSlice, CopyBumpsRefcountInsteadOfCopyingBytes) {
  const BufferSlice a{iota_bytes(1024)};
  const BufferSlice b = a;  // slice copy: refcount bump, no byte copy
  EXPECT_EQ(a.use_count(), 2);
  EXPECT_EQ(b.data(), a.data());
}

TEST(BufferSlice, EqualityIsByContentNotIdentity) {
  const BufferSlice a{Bytes{1, 2, 3}};
  const BufferSlice b{Bytes{1, 2, 3}};  // different storage, same bytes
  const BufferSlice c{Bytes{1, 2, 4}};
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);

  // Windows with the same content compare equal wherever they live.
  const BufferSlice whole{Bytes{9, 1, 2, 3, 9}};
  EXPECT_TRUE(whole.subslice(1, 3) == a);
  EXPECT_TRUE(whole.subslice(1, 3) == Bytes({1, 2, 3}));
}

TEST(BufferSlice, EmptyAndDefaultSlices) {
  const BufferSlice def;
  EXPECT_TRUE(def.empty());
  EXPECT_EQ(def.size(), 0u);
  EXPECT_EQ(def.use_count(), 0);
  EXPECT_TRUE(def == BufferSlice{Bytes{}});
}

TEST(BufferSlice, SpanViewCoversExactWindow) {
  const BufferSlice whole{iota_bytes(16)};
  const std::span<const std::uint8_t> view = whole.subslice(4, 8);
  ASSERT_EQ(view.size(), 8u);
  EXPECT_EQ(view.data(), whole.data() + 4);
  EXPECT_EQ(view[0], 4);
}

TEST(BufferSlice, ToBytesIsTheOneDeliberateCopy) {
  const BufferSlice whole{iota_bytes(8)};
  const Bytes copy = whole.subslice(2, 4).to_bytes();
  EXPECT_EQ(copy, Bytes({2, 3, 4, 5}));
}

TEST(BufferSlice, CoalesceConcatenatesChainInOrder) {
  const BufferSlice body{iota_bytes(10)};
  const std::vector<BufferSlice> chain = {
      body.subslice(0, 3), body.subslice(3, 4), body.subslice(7)};
  EXPECT_EQ(coalesce(chain), iota_bytes(10));

  const std::vector<BufferSlice> with_empty = {BufferSlice{},
                                               body.subslice(0, 2)};
  EXPECT_EQ(coalesce(with_empty), Bytes({0, 1}));
}

}  // namespace
}  // namespace dohperf::simnet
