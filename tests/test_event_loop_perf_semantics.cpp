// Semantics the event loop's heap fast path must preserve, exercised in the
// shapes the optimizations changed: same-instant FIFO across heap rebuilds,
// lazy cancellation with compaction, scheduling/cancelling from inside
// callbacks, and pending() counting live events only.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "simnet/event_loop.hpp"
#include "stats/rng.hpp"

namespace dohperf::simnet {
namespace {

TEST(EventLoopSemantics, SameInstantFifoAcrossManyEvents) {
  EventLoop loop;
  std::vector<int> order;
  // Enough same-instant events that the heap rebalances many times; the
  // (when, seq) key must keep them in schedule order regardless.
  for (int i = 0; i < 1000; ++i) {
    loop.schedule_at(100, [&order, i]() { order.push_back(i); });
  }
  loop.run();
  ASSERT_EQ(order.size(), 1000u);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventLoopSemantics, SameInstantFifoSurvivesCompaction) {
  EventLoop loop;
  std::vector<int> order;
  // Interleave far-future events (cancelled below) with same-instant ones,
  // so compaction rebuilds the heap while the FIFO run is still pending.
  std::vector<EventId> doomed;
  for (int i = 0; i < 300; ++i) {
    doomed.push_back(loop.schedule_at(1000000 + i, []() {}));
    loop.schedule_at(500, [&order, i]() { order.push_back(i); });
  }
  for (const auto& id : doomed) loop.cancel(id);  // triggers compaction
  loop.run();
  ASSERT_EQ(order.size(), 300u);
  for (int i = 0; i < 300; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventLoopSemantics, PendingCountsLiveEventsOnly) {
  EventLoop loop;
  std::vector<EventId> ids;
  for (int i = 0; i < 10; ++i) {
    ids.push_back(loop.schedule_at(10 + i, []() {}));
  }
  EXPECT_EQ(loop.pending(), 10u);
  // Cancelled events leave tombstones in the heap, but pending() must drop
  // immediately — it reports live events, not heap occupancy.
  for (int i = 0; i < 6; ++i) loop.cancel(ids[i]);
  EXPECT_EQ(loop.pending(), 4u);
  loop.cancel(ids[0]);  // double-cancel is a no-op
  EXPECT_EQ(loop.pending(), 4u);
  EXPECT_TRUE(loop.step());
  EXPECT_EQ(loop.pending(), 3u);
  loop.run();
  EXPECT_EQ(loop.pending(), 0u);
  EXPECT_EQ(loop.executed(), 4u);
}

TEST(EventLoopSemantics, CancelFromInsideCallback) {
  EventLoop loop;
  bool victim_ran = false;
  EventId victim;
  loop.schedule_at(10, [&]() { loop.cancel(victim); });
  victim = loop.schedule_at(20, [&]() { victim_ran = true; });
  loop.run();
  EXPECT_FALSE(victim_ran);
  EXPECT_EQ(loop.executed(), 1u);
  EXPECT_EQ(loop.pending(), 0u);
}

TEST(EventLoopSemantics, ScheduleFromInsideCallback) {
  EventLoop loop;
  std::vector<TimeUs> fired_at;
  // Chained timers: each firing schedules the next, like protocol RTOs.
  std::uint64_t remaining = 50;
  std::function<void()> chain = [&]() {
    fired_at.push_back(loop.now());
    if (--remaining > 0) loop.schedule_in(7, [&]() { chain(); });
  };
  loop.schedule_in(7, [&]() { chain(); });
  loop.run();
  ASSERT_EQ(fired_at.size(), 50u);
  for (std::size_t i = 0; i < fired_at.size(); ++i) {
    EXPECT_EQ(fired_at[i], 7 * (i + 1));
  }
}

TEST(EventLoopSemantics, StaleIdCannotCancelReusedSlot) {
  EventLoop loop;
  int fired = 0;
  const EventId first = loop.schedule_at(10, [&]() { ++fired; });
  loop.cancel(first);
  // The slot is recycled for a new event; the stale handle (same slot,
  // older generation) must not cancel it.
  loop.schedule_at(20, [&]() { ++fired; });
  loop.cancel(first);
  loop.run();
  EXPECT_EQ(fired, 1);
}

// Differential test: drive the heap-based loop and a simple reference model
// with the same randomized schedule/cancel workload and require the exact
// same execution order. This is the regression net for the sift/compaction
// fast paths — any heap bug that reorders events trips it.
TEST(EventLoopSemantics, RandomizedDifferentialOrder) {
  stats::SplitMix64 rng(2026);

  // Reference: (when, seq) pairs sorted lazily; cancellation by flag.
  struct RefEvent {
    TimeUs when;
    std::uint64_t seq;
    int tag;
    bool cancelled = false;
  };
  std::vector<RefEvent> ref;

  EventLoop loop;
  std::vector<int> loop_order;
  std::vector<EventId> ids;

  for (int tag = 0; tag < 2000; ++tag) {
    const TimeUs when = 1 + static_cast<TimeUs>(rng.next() % 97);
    ids.push_back(loop.schedule_at(
        when, [&loop_order, tag]() { loop_order.push_back(tag); }));
    ref.push_back({when, static_cast<std::uint64_t>(tag), tag});
    // Cancel a random earlier event now and then (stresses tombstones and
    // the compaction threshold).
    if (tag % 3 == 0) {
      const std::size_t victim = rng.next() % ids.size();
      loop.cancel(ids[victim]);
      ref[victim].cancelled = true;
    }
  }
  loop.run();

  std::vector<int> ref_order;
  std::vector<const RefEvent*> live;
  for (const auto& e : ref) {
    if (!e.cancelled) live.push_back(&e);
  }
  std::sort(live.begin(), live.end(),
            [](const RefEvent* a, const RefEvent* b) {
              return a->when != b->when ? a->when < b->when : a->seq < b->seq;
            });
  for (const auto* e : live) ref_order.push_back(e->tag);

  EXPECT_EQ(loop_order, ref_order);
}

}  // namespace
}  // namespace dohperf::simnet
