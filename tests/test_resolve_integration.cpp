// End-to-end integration: core clients against resolver servers over the
// simulated network — the exact stacks the benchmark harnesses use.
#include <gtest/gtest.h>

#include "core/doh_client.hpp"
#include "core/dot_client.hpp"
#include "core/udp_client.hpp"
#include "resolver/engine.hpp"
#include "resolver/doh_server.hpp"
#include "resolver/dot_server.hpp"
#include "resolver/udp_server.hpp"
#include "sim_fixture.hpp"

namespace dohperf::core {
namespace {

using dohperf::testing::TwoHostFixture;

class ResolveTest : public TwoHostFixture {
 protected:
  resolver::EngineConfig engine_config;
  std::unique_ptr<resolver::Engine> engine;

  resolver::Engine& make_engine() {
    engine = std::make_unique<resolver::Engine>(loop, engine_config);
    return *engine;
  }

  static dns::Name name(const std::string& n) { return dns::Name::parse(n); }
};

// --- UDP --------------------------------------------------------------------------

TEST_F(ResolveTest, UdpEndToEnd) {
  resolver::UdpServer udp_server(server, make_engine(), 53);
  UdpResolverClient client_stub(client, {server.id(), 53});

  ResolutionResult observed;
  client_stub.resolve(name("abcde.example.com"), dns::RType::kA,
                      [&](const ResolutionResult& r) { observed = r; });
  loop.run();

  ASSERT_TRUE(observed.success);
  ASSERT_EQ(observed.response.answers.size(), 1u);
  EXPECT_EQ(std::get<dns::ARdata>(observed.response.answers[0].rdata)
                .to_string(),
            "192.0.2.1");
  // RTT (10ms) + server processing (100us).
  EXPECT_EQ(observed.resolution_time(), simnet::ms(10) + simnet::us(100));
  // The paper's Fig 3/4 medians: a UDP exchange is ~182 B in 2 packets.
  EXPECT_EQ(observed.cost.packets, 2u);
  EXPECT_GT(observed.cost.wire_bytes, 120u);
  EXPECT_LT(observed.cost.wire_bytes, 260u);
}

TEST_F(ResolveTest, UdpZoneOverride) {
  auto& eng = make_engine();
  eng.add_record(name("special.example.com"), "203.0.113.77");
  resolver::UdpServer udp_server(server, eng, 53);
  UdpResolverClient client_stub(client, {server.id(), 53});

  dns::Message answer;
  client_stub.resolve(name("special.example.com"), dns::RType::kA,
                      [&](const ResolutionResult& r) { answer = r.response; });
  loop.run();
  EXPECT_EQ(std::get<dns::ARdata>(answer.answers.at(0).rdata).to_string(),
            "203.0.113.77");
}

TEST_F(ResolveTest, UdpTimeoutWithoutServer) {
  UdpClientConfig config;
  config.timeout = simnet::ms(300);
  UdpResolverClient client_stub(client, {server.id(), 53}, config);
  ResolutionResult observed;
  client_stub.resolve(name("x.example.com"), dns::RType::kA,
                      [&](const ResolutionResult& r) { observed = r; });
  loop.run();
  EXPECT_FALSE(observed.success);
  EXPECT_EQ(client_stub.timeouts(), 1u);
  EXPECT_EQ(observed.resolution_time(), simnet::ms(300));
}

TEST_F(ResolveTest, UdpRetryRecoversFromLoss) {
  simnet::LinkConfig lossy;
  lossy.latency = simnet::ms(5);
  lossy.loss_rate = 0.4;
  net.reconfigure(client.id(), server.id(), lossy);

  resolver::UdpServer udp_server(server, make_engine(), 53);
  UdpClientConfig config;
  config.timeout = simnet::ms(200);
  config.max_retries = 10;
  UdpResolverClient client_stub(client, {server.id(), 53}, config);
  int succeeded = 0;
  for (int i = 0; i < 20; ++i) {
    client_stub.resolve(name("q" + std::to_string(i) + ".example.com"),
                        dns::RType::kA, [&](const ResolutionResult& r) {
                          if (r.success) ++succeeded;
                        });
  }
  loop.run();
  EXPECT_EQ(succeeded, 20);
}

// --- DoT --------------------------------------------------------------------------

TEST_F(ResolveTest, DotEndToEnd) {
  resolver::DotServerConfig server_config;
  resolver::DotServer dot_server(server, make_engine(), server_config, 853);
  DotClient client_stub(client, {server.id(), 853});

  ResolutionResult observed;
  client_stub.resolve(name("abcde.example.com"), dns::RType::kA,
                      [&](const ResolutionResult& r) { observed = r; });
  loop.run();
  ASSERT_TRUE(observed.success);
  EXPECT_EQ(std::get<dns::ARdata>(observed.response.answers.at(0).rdata)
                .to_string(),
            "192.0.2.1");
  // TCP (1 RTT) + TLS 1.3 (1 RTT) + query (1 RTT) = 30ms + processing.
  EXPECT_GE(observed.resolution_time(), simnet::ms(30));
}

TEST_F(ResolveTest, DotReusesConnection) {
  resolver::DotServer dot_server(server, make_engine(), {}, 853);
  DotClient client_stub(client, {server.id(), 853});

  simnet::TimeUs first_time = 0;
  simnet::TimeUs second_time = 0;
  client_stub.resolve(name("a.example.com"), dns::RType::kA,
                      [&](const ResolutionResult& r) {
                        first_time = r.resolution_time();
                      });
  loop.run();
  client_stub.resolve(name("b.example.com"), dns::RType::kA,
                      [&](const ResolutionResult& r) {
                        second_time = r.resolution_time();
                      });
  loop.run();
  // Second query skips TCP+TLS setup: single RTT.
  EXPECT_LT(second_time, first_time / 2);
  EXPECT_EQ(dot_server.session_count(), 1u);
}

TEST_F(ResolveTest, DotInOrderServerBlocksBehindDelayedQuery) {
  engine_config.delay_policy.every_n = 2;  // warm=1, slow=2 (delayed), fast=3
  engine_config.delay_policy.delay = simnet::ms(400);
  auto& eng = make_engine();
  resolver::DotServerConfig in_order;
  in_order.out_of_order = false;
  resolver::DotServer dot_server(server, eng, in_order, 853);
  DotClient client_stub(client, {server.id(), 853});

  // Pre-establish the connection so both timed queries share it.
  client_stub.resolve(name("warm.example.com"), dns::RType::kA, {});
  loop.run();

  simnet::TimeUs slow_done = 0;
  simnet::TimeUs fast_done = 0;
  client_stub.resolve(name("slow.example.com"), dns::RType::kA,
                      [&](const ResolutionResult& r) {
                        slow_done = r.completed_at;
                      });
  client_stub.resolve(name("fast.example.com"), dns::RType::kA,
                      [&](const ResolutionResult& r) {
                        fast_done = r.completed_at;
                      });
  loop.run();
  // In-order DoT: the fast answer waits for the delayed one (Fig 2, TLS).
  EXPECT_GE(fast_done, slow_done);
}

TEST_F(ResolveTest, DotOutOfOrderServerDoesNotBlock) {
  engine_config.delay_policy.every_n = 2;  // every 2nd query delayed
  engine_config.delay_policy.delay = simnet::ms(400);
  resolver::DotServerConfig ooo;
  ooo.out_of_order = true;  // Cloudflare-style
  resolver::DotServer dot_server(server, make_engine(), ooo, 853);
  DotClient client_stub(client, {server.id(), 853});

  simnet::TimeUs slow_done = 0;
  simnet::TimeUs fast_done = 0;
  // Query 1 fast, query 2 delayed, query 3 fast.
  client_stub.resolve(name("one.example.com"), dns::RType::kA, {});
  client_stub.resolve(name("two.example.com"), dns::RType::kA,
                      [&](const ResolutionResult& r) {
                        slow_done = r.completed_at;
                      });
  client_stub.resolve(name("three.example.com"), dns::RType::kA,
                      [&](const ResolutionResult& r) {
                        fast_done = r.completed_at;
                      });
  loop.run();
  EXPECT_LT(fast_done, slow_done);  // overtakes the delayed query
}

// --- DoH --------------------------------------------------------------------------

class DohTest : public ResolveTest {
 protected:
  resolver::DohServerConfig server_config;
  std::unique_ptr<resolver::DohServer> doh_server;

  DohTest() {
    server_config.tls.chain = tlssim::CertificateChain::cloudflare();
    server_config.support_dns_json = true;  // tests may override
  }

  void start_server() {
    doh_server = std::make_unique<resolver::DohServer>(
        server, make_engine(), server_config, 443);
  }

  DohClientConfig base_config() {
    DohClientConfig c;
    c.server_name = "cloudflare-dns.com";
    return c;
  }
};

TEST_F(DohTest, PostOverH2EndToEnd) {
  start_server();
  DohClient client_stub(client, {server.id(), 443}, base_config());
  ResolutionResult observed;
  const auto id = client_stub.resolve(
      name("abcde.example.com"), dns::RType::kA,
      [&](const ResolutionResult& r) { observed = r; });
  loop.run();
  ASSERT_TRUE(observed.success);
  EXPECT_EQ(std::get<dns::ARdata>(observed.response.answers.at(0).rdata)
                .to_string(),
            "192.0.2.1");
  // Cost finalized after drain.
  const auto& final = client_stub.result(id);
  EXPECT_GT(final.cost.wire_bytes, 3000u);       // handshake-dominated
  EXPECT_GT(final.cost.tls_overhead_bytes, 2000u);
  EXPECT_GT(final.cost.http_header_bytes, 0u);
  EXPECT_GT(final.cost.http_mgmt_bytes, 0u);
  EXPECT_GT(final.cost.packets, 10u);
}

TEST_F(DohTest, GetOverH2) {
  start_server();
  auto config = base_config();
  config.method = DohMethod::kGet;
  DohClient client_stub(client, {server.id(), 443}, config);
  ResolutionResult observed;
  client_stub.resolve(name("fghij.example.com"), dns::RType::kA,
                      [&](const ResolutionResult& r) { observed = r; });
  loop.run();
  ASSERT_TRUE(observed.success);
  EXPECT_EQ(observed.response.answers.size(), 1u);
}

TEST_F(DohTest, JsonApi) {
  start_server();
  auto config = base_config();
  config.method = DohMethod::kJsonGet;
  DohClient client_stub(client, {server.id(), 443}, config);
  ResolutionResult observed;
  client_stub.resolve(name("klmno.example.com"), dns::RType::kA,
                      [&](const ResolutionResult& r) { observed = r; });
  loop.run();
  ASSERT_TRUE(observed.success);
  EXPECT_EQ(std::get<dns::ARdata>(observed.response.answers.at(0).rdata)
                .to_string(),
            "192.0.2.1");
}

TEST_F(DohTest, JsonApiRejectedWhenUnsupported) {
  server_config.support_dns_json = false;
  start_server();
  auto config = base_config();
  config.method = DohMethod::kJsonGet;
  DohClient client_stub(client, {server.id(), 443}, config);
  ResolutionResult observed;
  client_stub.resolve(name("x.example.com"), dns::RType::kA,
                      [&](const ResolutionResult& r) { observed = r; });
  loop.run();
  EXPECT_FALSE(observed.success);
  EXPECT_EQ(client_stub.failures(), 1u);
}

TEST_F(DohTest, WrongPathIs404) {
  server_config.paths = {"/resolve"};
  start_server();
  DohClient client_stub(client, {server.id(), 443}, base_config());
  ResolutionResult observed;
  client_stub.resolve(name("x.example.com"), dns::RType::kA,
                      [&](const ResolutionResult& r) { observed = r; });
  loop.run();
  EXPECT_FALSE(observed.success);
}

TEST_F(DohTest, PostOverHttp11) {
  start_server();
  auto config = base_config();
  config.http_version = HttpVersion::kHttp1;
  DohClient client_stub(client, {server.id(), 443}, config);
  ResolutionResult observed;
  client_stub.resolve(name("abcde.example.com"), dns::RType::kA,
                      [&](const ResolutionResult& r) { observed = r; });
  loop.run();
  ASSERT_TRUE(observed.success);
  EXPECT_EQ(observed.response.answers.size(), 1u);
}

TEST_F(DohTest, PersistentConnectionAmortizesSetup) {
  start_server();
  DohClient client_stub(client, {server.id(), 443}, base_config());
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 5; ++i) {
    ids.push_back(client_stub.resolve(
        name("q" + std::to_string(i) + ".example.com"), dns::RType::kA, {}));
    loop.run();
  }
  // First query pays the TCP+TLS+SETTINGS setup; the rest are cheap.
  const auto& first = client_stub.result(ids[0]);
  const auto& later = client_stub.result(ids[3]);
  EXPECT_GT(first.cost.wire_bytes, 4 * later.cost.wire_bytes);
  // HEADERS and DATA each travel in their own record (2019-era stacks):
  // two records per direction, no handshake bytes.
  EXPECT_EQ(later.cost.tls_overhead_bytes, 4 * 22u);
  EXPECT_EQ(doh_server->session_count(), 1u);
  // The paper: persistent-connection median ~864 B / 8 packets (CF).
  EXPECT_LT(later.cost.wire_bytes, 1500u);
  EXPECT_GE(later.cost.packets, 4u);
  EXPECT_LE(later.cost.packets, 12u);
}

TEST_F(DohTest, FreshConnectionsPayFullPrice) {
  start_server();
  auto config = base_config();
  config.persistent = false;
  DohClient client_stub(client, {server.id(), 443}, config);
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 3; ++i) {
    ids.push_back(client_stub.resolve(
        name("q" + std::to_string(i) + ".example.com"), dns::RType::kA, {}));
    loop.run();
  }
  // Every query pays the handshake (paper: ~5.7 KB / 27 packets for CF).
  for (const auto id : ids) {
    const auto& r = client_stub.result(id);
    EXPECT_GT(r.cost.wire_bytes, 3000u);
    EXPECT_GT(r.cost.packets, 12u);
  }
}

TEST_F(DohTest, GoogleCertCostsMoreThanCloudflare) {
  // The §4 finding: Google's larger certificate makes its fresh-connection
  // resolutions systematically bigger than Cloudflare's.
  start_server();  // Cloudflare chain
  auto config = base_config();
  config.persistent = false;
  DohClient cf_client(client, {server.id(), 443}, config);
  const auto cf_id =
      cf_client.resolve(name("a.example.com"), dns::RType::kA, {});
  loop.run();

  server_config.tls.chain = tlssim::CertificateChain::google();
  doh_server = std::make_unique<resolver::DohServer>(server, *engine,
                                                     server_config, 8443);
  config.server_name = "dns.google.com";
  DohClient go_client(client, {server.id(), 8443}, config);
  const auto go_id =
      go_client.resolve(name("a.example.com"), dns::RType::kA, {});
  loop.run();

  EXPECT_GT(go_client.result(go_id).cost.wire_bytes,
            cf_client.result(cf_id).cost.wire_bytes + 800);
}

TEST_F(DohTest, H2StreamsAvoidHolBlocking) {
  engine_config.delay_policy.every_n = 2;
  engine_config.delay_policy.delay = simnet::ms(500);
  start_server();
  DohClient client_stub(client, {server.id(), 443}, base_config());
  simnet::TimeUs slow_done = 0;
  simnet::TimeUs fast_done = 0;
  client_stub.resolve(name("one.example.com"), dns::RType::kA, {});
  client_stub.resolve(name("two.example.com"), dns::RType::kA,
                      [&](const ResolutionResult& r) {
                        slow_done = r.completed_at;
                      });
  client_stub.resolve(name("three.example.com"), dns::RType::kA,
                      [&](const ResolutionResult& r) {
                        fast_done = r.completed_at;
                      });
  loop.run();
  EXPECT_LT(fast_done, slow_done);
}

TEST_F(DohTest, H1PipeliningSuffersHolBlocking) {
  engine_config.delay_policy.every_n = 2;
  engine_config.delay_policy.delay = simnet::ms(500);
  start_server();
  auto config = base_config();
  config.http_version = HttpVersion::kHttp1;
  DohClient client_stub(client, {server.id(), 443}, config);
  simnet::TimeUs slow_done = 0;
  simnet::TimeUs fast_done = 0;
  client_stub.resolve(name("one.example.com"), dns::RType::kA, {});
  client_stub.resolve(name("two.example.com"), dns::RType::kA,
                      [&](const ResolutionResult& r) {
                        slow_done = r.completed_at;
                      });
  client_stub.resolve(name("three.example.com"), dns::RType::kA,
                      [&](const ResolutionResult& r) {
                        fast_done = r.completed_at;
                      });
  loop.run();
  EXPECT_GE(fast_done, slow_done);  // blocked, unlike HTTP/2
}

TEST_F(DohTest, SessionResumptionShrinksFreshConnections) {
  start_server();
  tlssim::SessionCache cache;
  auto config = base_config();
  config.persistent = false;
  config.session_cache = &cache;
  DohClient client_stub(client, {server.id(), 443}, config);
  const auto first =
      client_stub.resolve(name("a.example.com"), dns::RType::kA, {});
  loop.run();
  const auto second =
      client_stub.resolve(name("b.example.com"), dns::RType::kA, {});
  loop.run();
  // The resumed handshake omits the certificate.
  EXPECT_LT(client_stub.result(second).cost.wire_bytes + 1500,
            client_stub.result(first).cost.wire_bytes);
}

TEST_F(DohTest, DelayPolicyDelaysEveryNth) {
  engine_config.delay_policy.every_n = 25;
  engine_config.delay_policy.delay = simnet::ms(1000);
  start_server();
  DohClient client_stub(client, {server.id(), 443}, base_config());
  std::vector<simnet::TimeUs> times;
  for (int i = 0; i < 50; ++i) {
    client_stub.resolve(name("q" + std::to_string(i) + ".example.com"),
                        dns::RType::kA, [&](const ResolutionResult& r) {
                          times.push_back(r.resolution_time());
                        });
    loop.run();
  }
  ASSERT_EQ(times.size(), 50u);
  int slow = 0;
  for (const auto t : times) {
    if (t >= simnet::ms(1000)) ++slow;
  }
  EXPECT_EQ(slow, 2);  // queries 25 and 50
}

}  // namespace
}  // namespace dohperf::core
