// Tests for the detlint determinism lint itself: the lexer, every DET/HYG
// diagnostic against its fixture file, the allow-pragma path, and the
// baseline path. The fixtures live in tests/detlint_fixtures/ and are
// excluded from the repo-wide detlint_repo_clean scan.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "baseline.hpp"
#include "checks.hpp"
#include "conc.hpp"
#include "engine.hpp"
#include "lexer.hpp"

namespace {

using detlint::Code;
using detlint::Diagnostic;

std::string fixture_path(const std::string& name) {
  return std::string(DETLINT_FIXTURE_DIR) + "/" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::vector<Diagnostic> lint_fixture(const std::string& name) {
  return detlint::run_checks(name, detlint::lex(read_file(fixture_path(name))));
}

std::map<Code, int> live_counts(const std::vector<Diagnostic>& diags) {
  std::map<Code, int> counts;
  for (const Diagnostic& d : diags)
    if (!d.suppressed) counts[d.code]++;
  return counts;
}

/// Runs the cross-file CONC pass over the named fixtures (in order).
std::vector<Diagnostic> conc_fixtures(const std::vector<std::string>& names) {
  detlint::ConcAnalyzer conc;
  for (const std::string& name : names)
    conc.add_file(name, detlint::lex(read_file(fixture_path(name))));
  return conc.finish();
}

// ---------------------------------------------------------------- lexer --

TEST(DetlintLexer, CommentsAndStringsProduceNoIdentifierTokens) {
  auto lexed = detlint::lex(
      "// rand() in a comment\n"
      "/* time(nullptr) in a block\n   spanning lines */\n"
      "const char* s = \"rand() time() unordered_map\";\n"
      "int x = 1;\n");
  for (const auto& t : lexed.tokens) {
    if (t.kind == detlint::TokenKind::Identifier) {
      EXPECT_NE(t.text, "rand");
      EXPECT_NE(t.text, "time");
      EXPECT_NE(t.text, "unordered_map");
    }
  }
  ASSERT_EQ(lexed.comments.size(), 2u);
  EXPECT_EQ(lexed.comments[0].first_line, 1);
  EXPECT_EQ(lexed.comments[1].first_line, 2);
  EXPECT_EQ(lexed.comments[1].last_line, 3);
}

TEST(DetlintLexer, TracksLineNumbersAcrossLiteralsAndComments) {
  auto lexed = detlint::lex(
      "int a;\n"
      "/* two\nline comment */ int b;\n"
      "int c;\n");
  std::map<std::string, int> lines;
  for (const auto& t : lexed.tokens)
    if (t.kind == detlint::TokenKind::Identifier && t.text.size() == 1)
      lines[t.text] = t.line;
  EXPECT_EQ(lines["a"], 1);
  EXPECT_EQ(lines["b"], 3);
  EXPECT_EQ(lines["c"], 4);
}

TEST(DetlintLexer, RawStringsAreOneToken) {
  auto lexed = detlint::lex("auto s = R\"(rand() // not a comment)\";\n");
  int strings = 0;
  for (const auto& t : lexed.tokens)
    if (t.kind == detlint::TokenKind::String) ++strings;
  EXPECT_EQ(strings, 1);
  EXPECT_TRUE(lexed.comments.empty());
}

TEST(DetlintLexer, CollectsPreprocessorDirectives) {
  auto lexed = detlint::lex("#pragma once\n#include <map>\nint x;\n");
  ASSERT_EQ(lexed.directives.size(), 2u);
  EXPECT_EQ(lexed.directives[0].text, "pragma once");
  EXPECT_EQ(lexed.directives[1].text, "include <map>");
}

// ---------------------------------------------------- diagnostic checks --

TEST(DetlintChecks, Det001WallClockSources) {
  auto counts = live_counts(lint_fixture("det001_wall_clock.cpp"));
  EXPECT_EQ(counts[Code::DET001], 6);  // system, steady, time, std::time,
                                       // clock, gettimeofday
  EXPECT_EQ(counts.size(), 1u) << "only DET001 expected in this fixture";
}

TEST(DetlintChecks, Det002Randomness) {
  auto diags = lint_fixture("det002_randomness.cpp");
  auto counts = live_counts(diags);
  // rand, srand, random_device, default_random_engine, two unseeded
  // mt19937_64 declarations; the two seeded declarations are fine.
  EXPECT_EQ(counts[Code::DET002], 6);
  EXPECT_EQ(counts.size(), 1u);
}

TEST(DetlintChecks, Det002ExemptsTheRngModule) {
  std::string source = read_file(fixture_path("det002_randomness.cpp"));
  auto diags = detlint::run_checks("src/stats/rng.cpp", detlint::lex(source));
  EXPECT_EQ(live_counts(diags)[Code::DET002], 0);
}

TEST(DetlintChecks, Det003UnorderedContainers) {
  auto counts = live_counts(lint_fixture("det003_unordered.cpp"));
  EXPECT_EQ(counts[Code::DET003], 2);
  EXPECT_EQ(counts.size(), 1u);
}

TEST(DetlintChecks, Det004Concurrency) {
  auto counts = live_counts(lint_fixture("det004_concurrency.cpp"));
  // std::thread, std::mutex, std::async, sleep(), this_thread + sleep_for.
  EXPECT_EQ(counts[Code::DET004], 6);
  EXPECT_EQ(counts.size(), 1u);
}

TEST(DetlintChecks, Det005PointerIdentity) {
  auto counts = live_counts(lint_fixture("det005_pointer_identity.cpp"));
  // format-string pointer + C cast on the same line, hash<T*>,
  // reinterpret_cast<uintptr_t>, static_cast<const void*>.
  EXPECT_EQ(counts[Code::DET005], 5);
  EXPECT_EQ(counts.size(), 1u);
}

TEST(DetlintChecks, Hyg001PragmaOnce) {
  auto missing = live_counts(lint_fixture("hyg001_missing_pragma.hpp"));
  EXPECT_EQ(missing[Code::HYG001], 1);
  auto present = live_counts(lint_fixture("hyg001_has_pragma.hpp"));
  EXPECT_EQ(present[Code::HYG001], 0);
}

TEST(DetlintChecks, Hyg001DoesNotApplyToSourceFiles) {
  auto diags = detlint::run_checks("src/foo.cpp", detlint::lex("int x;\n"));
  EXPECT_EQ(live_counts(diags)[Code::HYG001], 0);
}

TEST(DetlintChecks, Hyg002RawNewDelete) {
  auto counts = live_counts(lint_fixture("hyg002_raw_new.cpp"));
  // new Widget, delete w, new int[], delete[]; `= delete` members exempt.
  EXPECT_EQ(counts[Code::HYG002], 4);
  EXPECT_EQ(counts.size(), 1u);
}

TEST(DetlintChecks, Hyg003FloatAccounting) {
  auto counts = live_counts(lint_fixture("hyg003_float.cpp"));
  EXPECT_EQ(counts[Code::HYG003], 2);  // float type + 0.5f literal
  EXPECT_EQ(counts.size(), 1u);
}

TEST(DetlintChecks, CleanFixtureHasZeroFindings) {
  auto diags = lint_fixture("clean.cpp");
  EXPECT_TRUE(diags.empty())
      << "unexpected: " << detlint::format_diagnostic(diags.front());
}

TEST(DetlintChecks, EveryCodeHasANameAndSummary) {
  for (Code c : detlint::kAllCodes) {
    EXPECT_FALSE(detlint::code_name(c).empty());
    EXPECT_FALSE(detlint::code_summary(c).empty());
    Code parsed;
    ASSERT_TRUE(detlint::parse_code(detlint::code_name(c), parsed));
    EXPECT_EQ(parsed, c);
  }
  Code ignored;
  EXPECT_FALSE(detlint::parse_code("DET999", ignored));
}

// ------------------------------------------------- CONC (parallelism) --

TEST(DetlintConc, Conc001MutableStaticState) {
  auto diags = conc_fixtures({"conc001_static_state.cpp"});
  auto counts = live_counts(diags);
  // The function-local static in helper() plus the reference to the
  // namespace-scope static g_counter from the same reachable function.
  EXPECT_EQ(counts[Code::CONC001], 2);
  EXPECT_EQ(counts.size(), 1u);
}

TEST(DetlintConc, Conc002EscapingCaptureWrites) {
  auto diags = conc_fixtures({"conc002_escaping_capture.cpp"});
  auto counts = live_counts(diags);
  // `total += ...` and `partials.push_back(...)` escape the shard; the
  // writes to the shard-local `s` do not.
  EXPECT_EQ(counts[Code::CONC002], 2);
  EXPECT_EQ(counts.size(), 1u);
}

TEST(DetlintConc, Conc003FalseSharingSlots) {
  auto diags = conc_fixtures({"conc003_false_sharing.cpp"});
  auto counts = live_counts(diags);
  // The unaligned run_sharded result type + the unaligned hot-slot
  // annotated struct; the aligned one is clean.
  EXPECT_EQ(counts[Code::CONC003], 2);
  EXPECT_EQ(counts.size(), 1u);
}

TEST(DetlintConc, Conc004SharedRng) {
  auto diags = conc_fixtures({"conc004_shared_rng.cpp"});
  auto counts = live_counts(diags);
  // Only the lambda drawing from the outer `rng`; the per-shard SplitMix64
  // in the second lambda is fine.
  EXPECT_EQ(counts[Code::CONC004], 1);
  EXPECT_EQ(counts.size(), 1u);
}

TEST(DetlintConc, Conc005SyncInParallelReachableCode) {
  auto diags = conc_fixtures({"conc005_sync_in_sim.cpp"});
  auto counts = live_counts(diags);
  // fetch_add + memory_order_relaxed inside the reachable count_hit(); the
  // namespace-scope atomic declaration itself is not inside a function.
  EXPECT_EQ(counts[Code::CONC005], 2);
  EXPECT_EQ(counts.size(), 1u);
}

TEST(DetlintConc, Conc006HotLoopAllocations) {
  auto diags = conc_fixtures({"conc006_hot_loop_alloc.cpp"});
  auto counts = live_counts(diags);
  // new + make_unique + to_string in hot_fire(), the non-reserved push_back
  // in hot_append(); the pragma'd push_back in hot_amortized() is suppressed
  // and the un-annotated slow_path() is never scanned.
  EXPECT_EQ(counts[Code::CONC006], 4);
  EXPECT_EQ(counts.size(), 1u);
  int suppressed = 0;
  for (const Diagnostic& d : diags) {
    if (d.suppressed) {
      ++suppressed;
      EXPECT_EQ(d.code, Code::CONC006);
      EXPECT_FALSE(d.suppress_reason.empty());
    }
  }
  EXPECT_EQ(suppressed, 1);
}

TEST(DetlintConc, Conc006ReservedGrowthStaysSilent) {
  auto diags = conc_fixtures({"conc006_clean.cpp"});
  ASSERT_TRUE(diags.empty()) << detlint::format_diagnostic(diags.front());
}

TEST(DetlintConc, JustifiedPragmaSuppressesConcFindings) {
  auto diags = conc_fixtures({"conc_allow_pragma.cpp"});
  int suppressed = 0, live = 0;
  for (const Diagnostic& d : diags) {
    ASSERT_EQ(d.code, Code::CONC001);
    if (d.suppressed) {
      ++suppressed;
      EXPECT_FALSE(d.suppress_reason.empty());
    } else {
      ++live;
    }
  }
  EXPECT_EQ(suppressed, 1);
  EXPECT_EQ(live, 1);
}

TEST(DetlintConc, CleanParallelPostureHasZeroFindings) {
  auto diags = conc_fixtures({"conc_clean.cpp"});
  EXPECT_TRUE(diags.empty())
      << "unexpected: " << detlint::format_diagnostic(diags.front());
}

TEST(DetlintConc, ReachabilityCrossesFileBoundaries) {
  // The hazard file alone is clean — no shard site reaches its static.
  EXPECT_TRUE(conc_fixtures({"conc_xfile_lib.cpp"}).empty());

  // Linked with the file holding the shard site, the static is reachable
  // and the finding lands in the *defining* file.
  auto diags =
      conc_fixtures({"conc_xfile_main.cpp", "conc_xfile_lib.cpp"});
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].code, Code::CONC001);
  EXPECT_EQ(diags[0].file, "conc_xfile_lib.cpp");
}

TEST(DetlintConc, EngineRunsConcPassUnlessDisabled) {
  detlint::ScanOptions options;
  options.root = DETLINT_FIXTURE_DIR;
  options.paths = {fixture_path("conc001_static_state.cpp")};
  auto with_conc = detlint::scan(options);
  EXPECT_EQ(live_counts(with_conc.diagnostics)[Code::CONC001], 2);

  options.conc = false;
  auto without = detlint::scan(options);
  EXPECT_EQ(live_counts(without.diagnostics)[Code::CONC001], 0);
}

TEST(DetlintConc, BaselineEntriesApplyToConcFindings) {
  detlint::ScanOptions options;
  options.root = DETLINT_FIXTURE_DIR;
  options.paths = {fixture_path("conc001_static_state.cpp")};
  std::vector<std::string> errors;
  options.baseline = detlint::parse_baseline(
      "conc001_static_state.cpp:*:CONC001\n", errors);
  ASSERT_TRUE(errors.empty());
  auto result = detlint::scan(options);
  EXPECT_EQ(result.live_count(/*strict=*/false), 0u);
  EXPECT_EQ(result.live_count(/*strict=*/true), 2u);
}

// ------------------------------------------------------- allow pragmas --

TEST(DetlintPragmas, JustifiedAllowSuppresses) {
  auto diags = lint_fixture("allow_pragma.cpp");
  int suppressed = 0, live = 0;
  for (const Diagnostic& d : diags) {
    ASSERT_EQ(d.code, Code::DET003);
    if (d.suppressed) {
      ++suppressed;
      EXPECT_FALSE(d.suppress_reason.empty());
    } else {
      ++live;
    }
  }
  // Same-line and previous-line pragmas suppress; the reason-less pragma
  // and the wrong-code pragma do not.
  EXPECT_EQ(suppressed, 2);
  EXPECT_EQ(live, 2);
}

// ------------------------------------------------------------ baseline --

TEST(DetlintBaseline, ParsesEntriesAndRejectsGarbage) {
  std::vector<std::string> errors;
  auto b = detlint::parse_baseline(
      "# comment\n"
      "\n"
      "src/a.cpp:10:DET001\n"
      "src/b.cpp:*:HYG002\n"
      "nonsense\n"
      "src/c.cpp:xx:DET001\n"
      "src/d.cpp:5:NOPE01\n",
      errors);
  EXPECT_EQ(b.entries.size(), 2u);
  EXPECT_EQ(errors.size(), 3u);
  Diagnostic hit{"src/a.cpp", 10, Code::DET001, "m"};
  Diagnostic miss_line{"src/a.cpp", 11, Code::DET001, "m"};
  Diagnostic wildcard{"src/b.cpp", 999, Code::HYG002, "m"};
  EXPECT_TRUE(b.matches(hit));
  EXPECT_FALSE(b.matches(miss_line));
  EXPECT_TRUE(b.matches(wildcard));
}

TEST(DetlintBaseline, SuppressesInNormalModeButNotStrict) {
  std::vector<std::string> errors;
  detlint::ScanOptions options;
  options.root = DETLINT_FIXTURE_DIR;
  options.paths = {fixture_path("baseline_target.cpp")};
  options.baseline =
      detlint::parse_baseline(read_file(fixture_path("fixtures.baseline")),
                              errors);
  ASSERT_TRUE(errors.empty());

  auto result = detlint::scan(options);
  ASSERT_EQ(result.files_scanned, 1u);
  ASSERT_EQ(result.diagnostics.size(), 2u);
  for (const Diagnostic& d : result.diagnostics) EXPECT_TRUE(d.baselined);
  EXPECT_EQ(result.live_count(/*strict=*/false), 0u);
  EXPECT_EQ(result.live_count(/*strict=*/true), 2u);
}

TEST(DetlintBaseline, RenderRoundTrips) {
  std::vector<Diagnostic> diags = {
      {"src/a.cpp", 3, Code::DET002, "m"},
      {"src/b.hpp", 1, Code::HYG001, "m"},
  };
  std::string text = detlint::render_baseline(diags);
  std::vector<std::string> errors;
  auto b = detlint::parse_baseline(text, errors);
  EXPECT_TRUE(errors.empty());
  ASSERT_EQ(b.entries.size(), 2u);
  EXPECT_TRUE(b.matches(diags[0]));
  EXPECT_TRUE(b.matches(diags[1]));
}

// -------------------------------------------------------------- engine --

TEST(DetlintEngine, FixtureDirectoryIsExcludedFromDirectoryWalks) {
  detlint::ScanOptions options;
  options.root = DETLINT_TESTS_DIR;  // tests/ — contains detlint_fixtures
  options.paths = {"detlint_fixtures"};
  auto result = detlint::scan(options);
  EXPECT_EQ(result.files_scanned, 0u)
      << "fixture snippets must never be scanned via a directory walk";
}

TEST(DetlintEngine, ScannableExtensions) {
  EXPECT_TRUE(detlint::scannable_file("src/a.cpp"));
  EXPECT_TRUE(detlint::scannable_file("src/a.hpp"));
  EXPECT_TRUE(detlint::scannable_file("src/a.h"));
  EXPECT_TRUE(detlint::scannable_file("src/a.cc"));
  EXPECT_FALSE(detlint::scannable_file("src/a.py"));
  EXPECT_FALSE(detlint::scannable_file("CMakeLists.txt"));
}

TEST(DetlintEngine, SummaryRendersPerCodeCounts) {
  detlint::ScanOptions options;
  options.root = DETLINT_FIXTURE_DIR;
  options.paths = {fixture_path("det003_unordered.cpp")};
  auto result = detlint::scan(options);
  std::string summary = detlint::render_summary(result, /*strict=*/true);
  EXPECT_NE(summary.find("DET003"), std::string::npos);
  EXPECT_NE(summary.find("scanned 1 files"), std::string::npos);
  EXPECT_NE(summary.find("2 finding(s)"), std::string::npos);
  EXPECT_NE(summary.find("[strict]"), std::string::npos);
}

}  // namespace
