// Tests for the replaced operator new/delete (src/simnet/arena_hooks.cpp).
//
// This binary — unlike every other test — links dohperf::arena_hooks, so
// its `new`/`delete` route exactly the way the bench executables' do: to
// the thread's current ShardMemory while a MemoryScope is active, to the
// global heap (with a routing header) otherwise. The suite pins down the
// properties the benches rely on:
//   - scope routing and header-based frees,
//   - zero global-heap allocations in shard steady state (the tentpole's
//     whole point),
//   - shard results escaping their arena's scope and lifetime,
//   - run_sharded producing identical results at any --jobs value.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bench/shard_runner.hpp"
#include "simnet/arena.hpp"
#include "simnet/event_loop.hpp"

namespace dohperf {
namespace {

using simnet::MemoryScope;
using simnet::ShardMemory;
using simnet::ShardMemoryStats;

TEST(ArenaHooks, ScopeRoutesNewToCurrentArena) {
  // make_unique's internal `new` goes through the replaced operator, same
  // as every allocation in the benches.
  auto outside = std::make_unique<std::uint64_t>(7);
  EXPECT_EQ(ShardMemory::owner_of(outside.get()), nullptr);

  ShardMemory* arena = ShardMemory::create();
  std::unique_ptr<std::uint64_t> inside;
  {
    MemoryScope scope(*arena);
    EXPECT_EQ(simnet::current_arena(), arena);
    inside = std::make_unique<std::uint64_t>(9);
    EXPECT_EQ(ShardMemory::owner_of(inside.get()), arena);
  }
  EXPECT_EQ(simnet::current_arena(), nullptr);
  // Frees route on the block header, not the (now empty) thread scope.
  EXPECT_EQ(*inside, 9u);
  inside.reset();
  outside.reset();
  EXPECT_EQ(arena->stats().live_blocks, 0u);
  arena->release();
}

TEST(ArenaHooks, NestedScopesRestoreThePreviousArena) {
  ShardMemory* a = ShardMemory::create();
  ShardMemory* b = ShardMemory::create();
  {
    MemoryScope outer(*a);
    {
      MemoryScope inner(*b);
      auto p = std::make_unique<int>(1);
      EXPECT_EQ(ShardMemory::owner_of(p.get()), b);
    }
    EXPECT_EQ(simnet::current_arena(), a);
    auto q = std::make_unique<int>(2);
    EXPECT_EQ(ShardMemory::owner_of(q.get()), a);
  }
  a->release();
  b->release();
}

// The deterministic allocation churn of a mock shard: container growth,
// short-lived strings, node-based scratch — the shapes the real benches
// allocate in their event loops.
std::uint64_t churn_once(std::uint64_t seed) {
  std::vector<std::string> names;
  names.reserve(64);
  std::uint64_t acc = seed;
  for (int i = 0; i < 64; ++i) {
    acc = acc * 6364136223846793005ull + 1442695040888963407ull;
    names.push_back("q" + std::to_string(acc % 100000) + ".example.com");
  }
  std::vector<std::uint64_t> lens;
  lens.reserve(names.size());
  for (const std::string& n : names) lens.push_back(n.size());
  for (std::uint64_t l : lens) acc += l;
  return acc;
}

TEST(ArenaHooks, SteadyStateMakesZeroGlobalAllocations) {
  ShardMemory* arena = ShardMemory::create();
  std::uint64_t warm = 0, steady = 0;
  {
    MemoryScope scope(*arena);
    warm = churn_once(1);  // faults in the arena's chunks
    const ShardMemoryStats after_warm = arena->stats();
    const std::uint64_t g0 = simnet::scope_global_allocs();

    steady = churn_once(1);  // identical pattern: freelists serve everything

    const ShardMemoryStats after_steady = arena->stats();
    EXPECT_EQ(simnet::scope_global_allocs() - g0, 0u)
        << "steady-state shard code must not touch the global heap";
    EXPECT_EQ(after_steady.arena_chunks, after_warm.arena_chunks);
    EXPECT_EQ(after_steady.huge_allocs, after_warm.huge_allocs);
    EXPECT_GT(after_steady.arena_allocs, after_warm.arena_allocs);
    EXPECT_GT(after_steady.freelist_hits, after_warm.freelist_hits);
  }
  EXPECT_EQ(warm, steady);
  arena->release();
}

TEST(ArenaHooks, EscapedResultsOutliveScopeAndArenaRelease) {
  ShardMemory* arena = ShardMemory::create();
  std::vector<std::uint64_t> result;
  {
    MemoryScope scope(*arena);
    for (std::uint64_t i = 0; i < 1000; ++i) result.push_back(i * i);
  }
  EXPECT_EQ(ShardMemory::owner_of(result.data()), arena);
  arena->release();  // orphaned: the result's buffer keeps it alive
  EXPECT_EQ(result[999], 999u * 999u);
  std::uint64_t sum = 0;
  for (std::uint64_t v : result) sum += v;
  EXPECT_EQ(sum, 332833500u);
  // result's destructor frees the last escaped block and with it the
  // orphaned arena (sanitizer builds verify no leak / use-after-free).
}

// A miniature sharded simulation: each shard runs its own EventLoop with a
// seeded timer cascade and digests the (time, executed) sequence. Results
// are a pure function of the shard index, so run_sharded must produce the
// same merged vector at any jobs value.
struct alignas(64) MiniResult {
  std::uint64_t digest = 0;
  std::vector<std::uint64_t> fire_times;
};

MiniResult run_mini_shard(std::size_t index) {
  MiniResult out;
  out.fire_times.reserve(200);
  simnet::EventLoop loop;
  std::uint64_t rng = 0x9E3779B97F4A7C15ull * (index + 1);
  for (int i = 0; i < 200; ++i) {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    loop.schedule_in(static_cast<simnet::TimeUs>(rng % 5000),
                     [&out, &loop] { out.fire_times.push_back(loop.now()); });
  }
  loop.run();
  out.digest = loop.executed();
  for (std::uint64_t t : out.fire_times) {
    out.digest = out.digest * 1099511628211ull + t;
  }
  return out;
}

TEST(ArenaHooks, RunShardedIsByteIdenticalAcrossJobs) {
  constexpr std::size_t kShards = 8;
  ShardMemoryStats serial_mem, parallel_mem;
  const auto serial = bench::run_sharded<MiniResult>(
      kShards, 1, run_mini_shard, &serial_mem);
  const auto parallel = bench::run_sharded<MiniResult>(
      kShards, 4, run_mini_shard, &parallel_mem);

  ASSERT_EQ(serial.size(), kShards);
  ASSERT_EQ(parallel.size(), kShards);
  for (std::size_t i = 0; i < kShards; ++i) {
    EXPECT_EQ(serial[i].digest, parallel[i].digest) << "shard " << i;
    EXPECT_EQ(serial[i].fire_times, parallel[i].fire_times) << "shard " << i;
  }

  // Both runs did real arena work, and every global-heap hit inside a
  // shard scope was a warm-up chunk fetch — steady state never left the
  // arena (huge passthroughs would break the equality).
  for (const ShardMemoryStats* mem : {&serial_mem, &parallel_mem}) {
    EXPECT_GT(mem->arena_allocs, 0u);
    EXPECT_EQ(mem->global_allocs, mem->arena_chunks);
    EXPECT_EQ(mem->huge_allocs, 0u);
  }
}

}  // namespace
}  // namespace dohperf
