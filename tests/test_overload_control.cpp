// Overload-control units and the RecursiveTier they compose into: exact
// trajectories for the deterministic primitives (token bucket, AIMD
// admission controller, retry budget, fairness arbiter) and event-loop
// tests for every tier decision path (cache hit, coalesce, queue bound,
// deadline shed, admission shed, fairness shed, retry-budget shed, upstream
// service timeout).
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "dns/message.hpp"
#include "resolver/overload.hpp"
#include "resolver/recursive_tier.hpp"
#include "simnet/event_loop.hpp"

namespace dohperf {
namespace {

dns::Name name(const char* n) { return dns::Name::parse(n); }

// --- TokenBucket -----------------------------------------------------------

TEST(TokenBucket, StartsFullAndRefillsExactly) {
  // 2 tokens/s, burst 2: the refill trajectory is exact integer arithmetic.
  resolver::TokenBucket bucket(2000, 2000);
  EXPECT_TRUE(bucket.try_take(0));
  EXPECT_TRUE(bucket.try_take(0));
  EXPECT_FALSE(bucket.try_take(0));  // burst drained
  // 250ms at 2000 milli/s = 500 milli: not yet a whole token.
  EXPECT_EQ(bucket.balance_milli(simnet::ms(250)), 500u);
  EXPECT_FALSE(bucket.try_take(simnet::ms(250)));
  // 500ms = exactly 1000 milli.
  EXPECT_TRUE(bucket.try_take(simnet::ms(500)));
  EXPECT_FALSE(bucket.try_take(simnet::ms(500)));
}

TEST(TokenBucket, FractionalRefillCarriesWithoutDrift) {
  // 1 milli-token/s: each microsecond contributes 1/1e6 of a milli-token.
  // After exactly 1e6 us the balance must be exactly 1 milli — no rounding
  // loss from intermediate reads.
  resolver::TokenBucket bucket(1, 1000);
  ASSERT_TRUE(bucket.try_take(0, 1000));  // drain the burst
  EXPECT_EQ(bucket.balance_milli(simnet::us(999'999)), 0u);
  EXPECT_EQ(bucket.balance_milli(simnet::us(1'000'000)), 1u);
  EXPECT_EQ(bucket.balance_milli(simnet::us(500'000'000)), 500u);
}

TEST(TokenBucket, BurstCapsAccumulation) {
  resolver::TokenBucket bucket(1000, 3000);
  EXPECT_EQ(bucket.balance_milli(simnet::seconds(100)), 3000u);
  EXPECT_TRUE(bucket.try_take(simnet::seconds(100)));
  EXPECT_TRUE(bucket.try_take(simnet::seconds(100)));
  EXPECT_TRUE(bucket.try_take(simnet::seconds(100)));
  EXPECT_FALSE(bucket.try_take(simnet::seconds(100)));
}

TEST(TokenBucket, CostParameterTakesMultipleTokens) {
  resolver::TokenBucket bucket(1000, 5000);
  EXPECT_TRUE(bucket.try_take(0, 4000));
  EXPECT_FALSE(bucket.try_take(0, 2000));
  EXPECT_TRUE(bucket.try_take(0, 1000));
}

// --- AdmissionController ---------------------------------------------------

resolver::AdmissionConfig admission_config() {
  resolver::AdmissionConfig config;
  config.min_limit = 2;
  config.max_limit = 100;
  config.initial_limit = 10;
  config.window = 4;
  config.inflate_permille = 2000;  // avg > 2x best => congested
  config.decrease_permille = 800;
  config.increase_step = 1;
  return config;
}

TEST(AdmissionController, HealthyWindowsClimbAdditively) {
  resolver::AdmissionController adm(admission_config());
  EXPECT_EQ(adm.limit(), 10u);
  // Four samples at the best latency: avg == best <= 2x best => +1.
  for (int i = 0; i < 4; ++i) adm.record(simnet::ms(10));
  EXPECT_EQ(adm.limit(), 11u);
  EXPECT_EQ(adm.increases(), 1u);
  EXPECT_EQ(adm.decreases(), 0u);
  EXPECT_EQ(adm.best_latency(), simnet::ms(10));
  for (int i = 0; i < 4; ++i) adm.record(simnet::ms(15));
  EXPECT_EQ(adm.limit(), 12u);  // 15ms <= 20ms threshold: still healthy
}

TEST(AdmissionController, InflatedWindowDecreasesMultiplicatively) {
  resolver::AdmissionController adm(admission_config());
  for (int i = 0; i < 4; ++i) adm.record(simnet::ms(10));  // best=10, limit=11
  for (int i = 0; i < 4; ++i) adm.record(simnet::ms(50));  // avg 50 > 20
  EXPECT_EQ(adm.limit(), 8u);  // 11 * 800 / 1000 = 8
  EXPECT_EQ(adm.decreases(), 1u);
  // Recovery: healthy windows climb back one step at a time.
  for (int i = 0; i < 4; ++i) adm.record(simnet::ms(12));
  EXPECT_EQ(adm.limit(), 9u);
}

TEST(AdmissionController, LimitStaysWithinBounds) {
  resolver::AdmissionController adm(admission_config());
  adm.record(simnet::ms(1));  // establish best = 1ms
  for (int w = 0; w < 20; ++w) {
    for (int i = 0; i < 4; ++i) adm.record(simnet::ms(100));
  }
  EXPECT_EQ(adm.limit(), 2u);  // clamped at min_limit
  for (int w = 0; w < 200; ++w) {
    for (int i = 0; i < 4; ++i) adm.record(simnet::ms(1));
  }
  EXPECT_EQ(adm.limit(), 100u);  // clamped at max_limit
}

TEST(AdmissionController, BestLatencyIsMinimumEverSeen) {
  resolver::AdmissionController adm(admission_config());
  adm.record(simnet::ms(30));
  EXPECT_EQ(adm.best_latency(), simnet::ms(30));
  adm.record(simnet::ms(5));
  EXPECT_EQ(adm.best_latency(), simnet::ms(5));
  adm.record(simnet::ms(40));
  EXPECT_EQ(adm.best_latency(), simnet::ms(5));
}

// --- RetryBudget -----------------------------------------------------------

TEST(RetryBudget, ReserveAllowsColdStartRetries) {
  resolver::RetryBudget budget(100, 2500, 10000);
  EXPECT_TRUE(budget.try_withdraw());   // 2500 -> 1500
  EXPECT_TRUE(budget.try_withdraw());   // 1500 -> 500
  EXPECT_FALSE(budget.try_withdraw());  // < 1000: shed
  EXPECT_EQ(budget.balance_milli(), 500u);
}

TEST(RetryBudget, DepositsGrowTenPercentOfFreshTraffic) {
  resolver::RetryBudget budget(100, 0, 10000);
  EXPECT_FALSE(budget.try_withdraw());
  for (int i = 0; i < 10; ++i) budget.deposit();  // 10 x 100 = 1000 milli
  EXPECT_TRUE(budget.try_withdraw());
  EXPECT_FALSE(budget.try_withdraw());
}

TEST(RetryBudget, CapBoundsTheBalance) {
  resolver::RetryBudget budget(100, 0, 1500);
  for (int i = 0; i < 100; ++i) budget.deposit();
  EXPECT_EQ(budget.balance_milli(), 1500u);
  EXPECT_TRUE(budget.try_withdraw());
  EXPECT_FALSE(budget.try_withdraw());  // 500 left
}

// --- FairnessArbiter -------------------------------------------------------

TEST(FairnessArbiter, PerClientBucketsAreIndependent) {
  resolver::FairnessConfig config;
  config.rate_milli = 1000;   // 1 q/s
  config.burst_milli = 2000;  // burst of 2
  resolver::FairnessArbiter fair(config);

  EXPECT_TRUE(fair.admit(1, 0));
  EXPECT_TRUE(fair.admit(1, 0));
  EXPECT_FALSE(fair.admit(1, 0));  // client 1 drained its burst
  EXPECT_TRUE(fair.admit(2, 0));   // client 2 unaffected
  // After 1s client 1 has exactly one token back.
  EXPECT_TRUE(fair.admit(1, simnet::seconds(1)));
  EXPECT_FALSE(fair.admit(1, simnet::seconds(1)));

  const auto& shares = fair.shares();
  ASSERT_EQ(shares.size(), 2u);
  EXPECT_EQ(shares.at(1).admitted, 3u);
  EXPECT_EQ(shares.at(1).throttled, 2u);
  EXPECT_EQ(shares.at(2).admitted, 1u);
  EXPECT_EQ(shares.at(2).throttled, 0u);
}

// --- RecursiveTier ---------------------------------------------------------

/// Scriptable back-end: answers every query with one A record after
/// `delay`, unless `respond` is off (stall).
class ScriptedUpstream final : public resolver::QueryHandler {
 public:
  explicit ScriptedUpstream(simnet::EventLoop& loop) : loop_(loop) {}

  simnet::TimeUs delay = simnet::ms(10);
  std::uint32_t ttl = 60;
  bool respond = true;
  int calls = 0;

  void handle(const dns::Message& query, const resolver::QueryContext&,
              Continuation done) override {
    ++calls;
    if (!respond) return;  // stall: accept, never answer
    dns::Message response = dns::Message::make_response(
        query, {dns::ResourceRecord::a(query.questions.front().qname,
                                       "192.0.2.1", ttl)});
    loop_.schedule_in(delay, [response = std::move(response),
                              done = std::move(done)]() mutable {
      done(std::move(response));
    });
  }

 private:
  simnet::EventLoop& loop_;
};

class RecursiveTierTest : public ::testing::Test {
 protected:
  /// Issue a query through the tier at `at`, recording the response.
  void ask(resolver::RecursiveTier& tier, const char* qname,
           std::uint64_t client, simnet::TimeUs at,
           std::optional<dns::Message>* out) {
    const std::uint16_t id = next_id_++;
    loop.schedule_at(at, [this, &tier, qname, client, id, out]() {
      const dns::Message query = dns::Message::make_query(id, name(qname));
      resolver::QueryContext context;
      context.client = client;
      tier.handle(query, context,
                  [out](dns::Message response) { *out = std::move(response); });
    });
  }

  simnet::EventLoop loop;
  std::uint16_t next_id_ = 1;
};

TEST_F(RecursiveTierTest, CacheHitSkipsUpstreamAndKeepsQueryId) {
  ScriptedUpstream upstream(loop);
  resolver::RecursiveTier tier(loop, upstream, {});
  std::optional<dns::Message> first, second;
  ask(tier, "a.example.com", 1, 0, &first);
  ask(tier, "a.example.com", 2, simnet::ms(100), &second);
  loop.run();
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(upstream.calls, 1);
  EXPECT_EQ(second->id, 2);  // rewritten to the second query's id
  EXPECT_EQ(second->flags.rcode, dns::Rcode::kNoError);
  EXPECT_EQ(tier.stats().cache_hits, 1u);
  EXPECT_EQ(tier.stats().cache_misses, 1u);
  EXPECT_EQ(tier.stats().served, 2u);
}

TEST_F(RecursiveTierTest, TtlExpiryMakesTheNextQueryAMiss) {
  ScriptedUpstream upstream(loop);
  upstream.ttl = 2;
  resolver::RecursiveTier tier(loop, upstream, {});
  std::optional<dns::Message> first, second;
  ask(tier, "a.example.com", 1, 0, &first);
  ask(tier, "a.example.com", 1, simnet::seconds(3), &second);
  loop.run();
  EXPECT_EQ(upstream.calls, 2);
  EXPECT_EQ(tier.stats().cache_misses, 2u);
}

TEST_F(RecursiveTierTest, ConcurrentMissesCoalesceOntoOneUpstreamCall) {
  ScriptedUpstream upstream(loop);
  upstream.delay = simnet::ms(50);
  resolver::TierConfig config;
  config.workers = 4;
  resolver::RecursiveTier tier(loop, upstream, config);
  std::optional<dns::Message> a, b, c;
  ask(tier, "a.example.com", 1, 0, &a);
  ask(tier, "a.example.com", 2, simnet::ms(10), &b);
  ask(tier, "a.example.com", 3, simnet::ms(20), &c);
  loop.run();
  EXPECT_EQ(upstream.calls, 1);
  ASSERT_TRUE(b.has_value());
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(b->flags.rcode, dns::Rcode::kNoError);
  EXPECT_EQ(tier.stats().coalesced, 2u);
  EXPECT_EQ(tier.stats().served, 3u);
}

TEST_F(RecursiveTierTest, BoundedQueueShedsRefusedWhenFull) {
  ScriptedUpstream upstream(loop);
  upstream.delay = simnet::ms(100);
  resolver::TierConfig config;
  config.workers = 1;
  config.bound_queue = true;
  config.queue_capacity = 1;
  resolver::RecursiveTier tier(loop, upstream, config);
  // Three distinct names at t=0: one dispatches, one queues, one sheds.
  std::optional<dns::Message> a, b, c;
  ask(tier, "a.example.com", 1, 0, &a);
  ask(tier, "b.example.com", 1, 0, &b);
  ask(tier, "c.example.com", 1, 0, &c);
  loop.run();
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->flags.rcode, dns::Rcode::kRefused);
  EXPECT_EQ(tier.stats().shed_queue_full, 1u);
  EXPECT_EQ(tier.stats().served, 2u);
  EXPECT_EQ(tier.stats().sheds(), 1u);
  EXPECT_EQ(tier.stats().per_client.at(1).shed, 1u);
}

TEST_F(RecursiveTierTest, DeadlineShedsStaleRequestsAtDequeue) {
  ScriptedUpstream upstream(loop);
  upstream.delay = simnet::ms(500);
  resolver::TierConfig config;
  config.workers = 1;
  config.deadline = simnet::ms(200);
  config.expected_service = simnet::ms(10);
  resolver::RecursiveTier tier(loop, upstream, config);
  // b waits 500ms behind a's slow resolution: 500 + 10 > 200 => shed.
  std::optional<dns::Message> a, b;
  ask(tier, "a.example.com", 1, 0, &a);
  ask(tier, "b.example.com", 1, 0, &b);
  loop.run();
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->flags.rcode, dns::Rcode::kNoError);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->flags.rcode, dns::Rcode::kRefused);
  EXPECT_EQ(tier.stats().shed_deadline, 1u);
}

TEST_F(RecursiveTierTest, AdmissionLimitBoundsOutstandingWork) {
  ScriptedUpstream upstream(loop);
  upstream.delay = simnet::ms(100);
  resolver::TierConfig config;
  config.workers = 1;
  config.admission_enabled = true;
  config.admission.min_limit = 2;
  config.admission.max_limit = 2;
  config.admission.initial_limit = 2;
  resolver::RecursiveTier tier(loop, upstream, config);
  std::optional<dns::Message> a, b, c;
  ask(tier, "a.example.com", 1, 0, &a);
  ask(tier, "b.example.com", 1, 0, &b);
  ask(tier, "c.example.com", 1, 0, &c);  // queued + inflight = 2 = limit
  loop.run();
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->flags.rcode, dns::Rcode::kRefused);
  EXPECT_EQ(tier.stats().shed_admission, 1u);
  EXPECT_EQ(tier.admission_limit(), 2u);
}

TEST_F(RecursiveTierTest, FairnessShedsOnlyTheGreedyClient) {
  ScriptedUpstream upstream(loop);
  resolver::TierConfig config;
  config.workers = 4;
  config.fairness_enabled = true;
  config.fairness.rate_milli = 1000;
  config.fairness.burst_milli = 1000;  // one query, then throttled
  resolver::RecursiveTier tier(loop, upstream, config);
  std::optional<dns::Message> a1, a2, b1;
  ask(tier, "a.example.com", 1, 0, &a1);
  ask(tier, "b.example.com", 1, 0, &a2);  // client 1 over budget
  ask(tier, "c.example.com", 2, 0, &b1);  // client 2 unaffected
  loop.run();
  ASSERT_TRUE(a2.has_value());
  EXPECT_EQ(a2->flags.rcode, dns::Rcode::kRefused);
  ASSERT_TRUE(b1.has_value());
  EXPECT_EQ(b1->flags.rcode, dns::Rcode::kNoError);
  EXPECT_EQ(tier.stats().shed_fairness, 1u);
  ASSERT_NE(tier.fairness(), nullptr);
  EXPECT_EQ(tier.fairness()->shares().at(1).throttled, 1u);
}

TEST_F(RecursiveTierTest, RetryBudgetShedsDetectedRetransmissions) {
  ScriptedUpstream upstream(loop);
  upstream.delay = simnet::ms(500);
  resolver::TierConfig config;
  config.workers = 1;
  config.coalesce = false;  // force the repeat to be its own job
  config.retry_budget_enabled = true;
  config.retry_ratio_permille = 100;
  config.retry_reserve_milli = 0;  // empty budget: first retry sheds
  config.retry_window = simnet::seconds(2);
  resolver::RecursiveTier tier(loop, upstream, config);
  // The client "retransmits" while the original is still in flight.
  std::optional<dns::Message> first, retry;
  ask(tier, "a.example.com", 1, 0, &first);
  ask(tier, "a.example.com", 1, simnet::ms(100), &retry);
  loop.run();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->flags.rcode, dns::Rcode::kNoError);
  ASSERT_TRUE(retry.has_value());
  EXPECT_EQ(retry->flags.rcode, dns::Rcode::kRefused);
  EXPECT_EQ(tier.stats().retries_detected, 1u);
  EXPECT_EQ(tier.stats().shed_retry_budget, 1u);
}

TEST_F(RecursiveTierTest, RetryBudgetAdmitsRetriesWhileFunded) {
  ScriptedUpstream upstream(loop);
  upstream.delay = simnet::ms(500);
  resolver::TierConfig config;
  config.workers = 2;
  config.coalesce = false;
  config.retry_budget_enabled = true;
  config.retry_reserve_milli = 1000;  // funds exactly one retry
  resolver::RecursiveTier tier(loop, upstream, config);
  std::optional<dns::Message> first, retry;
  ask(tier, "a.example.com", 1, 0, &first);
  ask(tier, "a.example.com", 1, simnet::ms(100), &retry);
  loop.run();
  ASSERT_TRUE(retry.has_value());
  EXPECT_EQ(retry->flags.rcode, dns::Rcode::kNoError);
  EXPECT_EQ(tier.stats().retries_detected, 1u);
  EXPECT_EQ(tier.stats().shed_retry_budget, 0u);
  ASSERT_NE(tier.retry_budget(), nullptr);
  // 1000 reserve - 1000 withdrawn + 1 fresh deposit of 100.
  EXPECT_EQ(tier.retry_budget()->balance_milli(), 100u);
}

TEST_F(RecursiveTierTest, ServiceTimeoutReclaimsStalledSlot) {
  ScriptedUpstream upstream(loop);
  upstream.respond = false;  // stall every query
  resolver::TierConfig config;
  config.workers = 1;
  config.service_timeout = simnet::ms(300);
  resolver::RecursiveTier tier(loop, upstream, config);
  std::optional<dns::Message> stalled, after;
  ask(tier, "a.example.com", 1, 0, &stalled);
  loop.schedule_at(simnet::ms(400), [&]() { upstream.respond = true; });
  ask(tier, "b.example.com", 1, simnet::ms(500), &after);
  loop.run();
  ASSERT_TRUE(stalled.has_value());
  EXPECT_EQ(stalled->flags.rcode, dns::Rcode::kServFail);
  EXPECT_EQ(tier.stats().upstream_timeouts, 1u);
  // The slot was reclaimed: the later query is served normally.
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(after->flags.rcode, dns::Rcode::kNoError);
  EXPECT_EQ(tier.inflight(), 0u);
}

TEST_F(RecursiveTierTest, ShedCanAnswerServfailInstead) {
  ScriptedUpstream upstream(loop);
  resolver::TierConfig config;
  config.workers = 1;
  config.bound_queue = true;
  config.queue_capacity = 0;
  config.shed_refused = false;
  resolver::RecursiveTier tier(loop, upstream, config);
  std::optional<dns::Message> a, b;
  ask(tier, "a.example.com", 1, 0, &a);
  ask(tier, "b.example.com", 1, 0, &b);
  loop.run();
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->flags.rcode, dns::Rcode::kServFail);
}

TEST_F(RecursiveTierTest, EmptyQuestionAnswersFormErr) {
  ScriptedUpstream upstream(loop);
  resolver::RecursiveTier tier(loop, upstream, {});
  std::optional<dns::Message> out;
  loop.schedule_at(0, [&]() {
    dns::Message query;
    query.id = 9;
    tier.handle(query, {}, [&](dns::Message r) { out = std::move(r); });
  });
  loop.run();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->flags.rcode, dns::Rcode::kFormErr);
  EXPECT_EQ(out->id, 9);
  EXPECT_EQ(upstream.calls, 0);
}

TEST_F(RecursiveTierTest, ShedResponsesAreNeverCached) {
  ScriptedUpstream upstream(loop);
  upstream.delay = simnet::ms(100);
  resolver::TierConfig config;
  config.workers = 1;
  config.bound_queue = true;
  config.queue_capacity = 1;
  resolver::RecursiveTier tier(loop, upstream, config);
  std::optional<dns::Message> a, b, c, c_again;
  ask(tier, "a.example.com", 1, 0, &a);    // dispatches
  ask(tier, "b.example.com", 1, 0, &b);    // queued
  ask(tier, "c.example.com", 1, 0, &c);    // shed REFUSED
  // Later, with the tier idle, the shed name must go upstream (a cached
  // REFUSED would answer immediately with the wrong rcode).
  ask(tier, "c.example.com", 1, simnet::seconds(1), &c_again);
  loop.run();
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->flags.rcode, dns::Rcode::kRefused);
  ASSERT_TRUE(c_again.has_value());
  EXPECT_EQ(c_again->flags.rcode, dns::Rcode::kNoError);
  EXPECT_EQ(upstream.calls, 3);
}

}  // namespace
}  // namespace dohperf
