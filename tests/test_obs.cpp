// Unit tests for the observability layer: span lifecycle edge cases
// (out-of-order close, idempotent end, attributes after close), the
// null-sink fast path, metrics-registry determinism, and exporter output.
#include <gtest/gtest.h>

#include "dns/json_value.hpp"
#include "obs/export.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "simnet/event_loop.hpp"

namespace dohperf::obs {
namespace {

// --- Tracer lifecycle -------------------------------------------------------

TEST(Tracer, BeginNeverReturnsZeroAndIdsAreSequential) {
  Tracer tracer;
  const SpanId a = tracer.begin(0, "resolution");
  const SpanId b = tracer.begin(a, "connect");
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_NE(a, b);
  EXPECT_EQ(tracer.span(b).parent, a);
  EXPECT_EQ(tracer.size(), 2u);
}

TEST(Tracer, TimestampsComeFromTheVirtualClock) {
  simnet::EventLoop loop;
  Tracer tracer(loop);
  SpanId span = 0;
  loop.schedule_at(simnet::ms(3), [&]() { span = tracer.begin(0, "s"); });
  loop.schedule_at(simnet::ms(8), [&]() { tracer.end(span); });
  loop.run();
  EXPECT_EQ(tracer.span(span).start, simnet::ms(3));
  EXPECT_EQ(tracer.span(span).end, simnet::ms(8));
  EXPECT_EQ(tracer.span(span).duration(), simnet::ms(5));
}

// Timeout teardown closes the resolution span before its children; the
// children must still close cleanly afterwards (out-of-order close).
TEST(Tracer, OutOfOrderCloseIsTolerated) {
  Tracer tracer;
  const SpanId parent = tracer.begin(0, "resolution");
  const SpanId child = tracer.begin(parent, "request");
  tracer.end(parent);  // parent first, child still open
  EXPECT_FALSE(tracer.span(parent).open);
  EXPECT_TRUE(tracer.span(child).open);
  EXPECT_EQ(tracer.open_spans(), 1u);
  tracer.end(child);
  EXPECT_EQ(tracer.open_spans(), 0u);
}

TEST(Tracer, EndIsIdempotentAndIgnoresZero) {
  simnet::EventLoop loop;
  Tracer tracer(loop);
  SpanId span = 0;
  loop.schedule_at(simnet::ms(1), [&]() { span = tracer.begin(0, "s"); });
  loop.schedule_at(simnet::ms(2), [&]() { tracer.end(span); });
  loop.schedule_at(simnet::ms(9), [&]() {
    tracer.end(span);  // second end must not move the timestamp
    tracer.end(0);     // id 0 is always a no-op
  });
  loop.run();
  EXPECT_EQ(tracer.span(span).end, simnet::ms(2));
  EXPECT_EQ(tracer.open_spans(), 0u);
}

TEST(Tracer, AttributesAfterCloseAndAccumulation) {
  Tracer tracer;
  const SpanId span = tracer.begin(0, "resolution");
  tracer.end(span);
  tracer.set_attr(span, "bytes.wire", std::int64_t{100});  // lazy cost
  tracer.set_attr(span, "bytes.wire", std::int64_t{250});  // overwrite
  tracer.add_attr(span, "retries", 1);
  tracer.add_attr(span, "retries", 2);
  const AttrValue* wire = tracer.span(span).attr("bytes.wire");
  const AttrValue* retries = tracer.span(span).attr("retries");
  ASSERT_NE(wire, nullptr);
  ASSERT_NE(retries, nullptr);
  EXPECT_EQ(std::get<std::int64_t>(*wire), 250);
  EXPECT_EQ(std::get<std::int64_t>(*retries), 3);
  EXPECT_EQ(tracer.span(span).attr("absent"), nullptr);
}

TEST(Tracer, RebindKeepsIdsUniqueAcrossLoops) {
  Tracer tracer;
  simnet::EventLoop first;
  tracer.bind(first);
  const SpanId a = tracer.begin(0, "scenario_one");
  tracer.end(a);
  simnet::EventLoop second;
  tracer.bind(second);
  const SpanId b = tracer.begin(0, "scenario_two");
  tracer.end(b);
  EXPECT_NE(a, b);
  EXPECT_EQ(tracer.size(), 2u);
}

// --- SpanContext null-sink fast path ---------------------------------------

TEST(SpanContext, DefaultContextIsANoOp) {
  const SpanContext off;
  EXPECT_FALSE(static_cast<bool>(off));
  const SpanId span = off.begin("resolution");
  EXPECT_EQ(span, 0u);
  // None of these may crash with no tracer attached.
  off.end(span);
  off.set_attr(span, "k", std::string("v"));
  off.add_attr(span, "k", 1);
  EXPECT_EQ(off.child(7).tracer, nullptr);
}

TEST(SpanContext, ChildContextParentsUnderTheGivenSpan) {
  Tracer tracer;
  Registry registry;
  const SpanContext root{&tracer, 0, &registry};
  const SpanId page = root.begin("page_load");
  const SpanContext under_page = root.child(page);
  const SpanId fetch = under_page.begin("fetch");
  EXPECT_EQ(tracer.span(fetch).parent, page);
  EXPECT_EQ(under_page.metrics, &registry);
}

// --- Registry ----------------------------------------------------------------

TEST(Registry, CountersGaugesHistograms) {
  Registry registry;
  registry.add("client.udp.queries");
  registry.add("client.udp.queries", 4);
  registry.set_gauge("breaker.state.0", 2);
  registry.observe("client.udp.resolution_ms", 10.0);
  registry.observe("client.udp.resolution_ms", 30.0);
  EXPECT_EQ(registry.counter("client.udp.queries"), 5u);
  EXPECT_EQ(registry.gauge("breaker.state.0"), 2);
  EXPECT_EQ(registry.counter("absent"), 0u);
  EXPECT_EQ(registry.gauge("absent"), 0);
  EXPECT_EQ(registry.histogram("absent"), nullptr);
  const HistogramSummary h =
      registry.histogram_summary("client.udp.resolution_ms");
  EXPECT_EQ(h.count, 2u);
  EXPECT_EQ(h.min, 10.0);
  EXPECT_EQ(h.max, 30.0);
}

// Two registries populated in different orders must serialize identically:
// the export is keyed on sorted names, not insertion history.
TEST(Registry, ExportIsOrderIndependent) {
  Registry first;
  first.add("a.counter", 1);
  first.add("z.counter", 2);
  first.set_gauge("m.gauge", -3);
  first.observe("h.hist", 1.5);

  Registry second;
  second.observe("h.hist", 1.5);
  second.set_gauge("m.gauge", -3);
  second.add("z.counter", 2);
  second.add("a.counter", 1);

  EXPECT_EQ(first.to_json().dump(), second.to_json().dump());
  EXPECT_EQ(first.render(), second.render());
}

TEST(Registry, JsonSchemaAndClear) {
  Registry registry;
  registry.add("bytes.wire", 123);
  const auto snapshot = dns::JsonValue::parse(registry.to_json().dump());
  const auto& object = snapshot.as_object();
  EXPECT_EQ(object.at("schema").as_string(), "dohperf-metrics-v1");
  EXPECT_EQ(object.at("counters").as_object().at("bytes.wire").as_int(), 123);
  ASSERT_TRUE(object.contains("gauges"));
  ASSERT_TRUE(object.contains("histograms"));
  registry.clear();
  EXPECT_TRUE(registry.empty());
}

// --- Exporters ---------------------------------------------------------------

Tracer sample_trace() {
  simnet::EventLoop loop;
  Tracer tracer(loop);
  SpanId resolution = 0;
  SpanId request = 0;
  loop.schedule_at(simnet::ms(0), [&]() {
    resolution = tracer.begin(0, "resolution");
    tracer.set_attr(resolution, "transport", std::string("doh-h2"));
    request = tracer.begin(resolution, "request");
  });
  loop.schedule_at(simnet::ms(4), [&]() { tracer.end(request); });
  loop.schedule_at(simnet::ms(9), [&]() {
    tracer.set_attr(resolution, "success", true);
    tracer.end(resolution);
  });
  loop.run();
  return tracer;
}

TEST(Exporters, ChromeTraceRoundTripsThroughTheJsonParser) {
  const Tracer tracer = sample_trace();
  const auto doc = dns::JsonValue::parse(chrome_trace_json(tracer));
  const auto& object = doc.as_object();
  EXPECT_EQ(object.at("displayTimeUnit").as_string(), "ms");
  const auto& events = object.at("traceEvents").as_array();
  ASSERT_EQ(events.size(), 2u);
  const auto& resolution = events.at(0).as_object();
  EXPECT_EQ(resolution.at("ph").as_string(), "X");
  EXPECT_EQ(resolution.at("name").as_string(), "resolution");
  EXPECT_EQ(resolution.at("dur").as_int(), 9000);  // µs
  EXPECT_EQ(resolution.at("args").as_object().at("transport").as_string(),
            "doh-h2");
  // The child rides on its root's track.
  EXPECT_EQ(events.at(1).as_object().at("tid").as_int(),
            resolution.at("tid").as_int());
}

TEST(Exporters, OpenSpansExportWithOpenMarker) {
  Tracer tracer;
  tracer.begin(0, "resolution");  // never closed (e.g. still in flight)
  const auto doc = dns::JsonValue::parse(chrome_trace_json(tracer));
  const auto& event =
      doc.as_object().at("traceEvents").as_array().at(0).as_object();
  EXPECT_EQ(event.at("dur").as_int(), 0);
  EXPECT_TRUE(event.at("args").as_object().at("open").as_bool());
  EXPECT_NE(render_timeline(tracer).find("open] "), std::string::npos);
}

TEST(Exporters, TimelineIndentsChildrenUnderRoots) {
  const Tracer tracer = sample_trace();
  const std::string timeline = render_timeline(tracer);
  EXPECT_NE(timeline.find("resolution"), std::string::npos);
  EXPECT_NE(timeline.find("  ["), std::string::npos);  // indented child
  EXPECT_NE(timeline.find("request"), std::string::npos);
}

TEST(Exporters, AttrValuesSerializeByType) {
  EXPECT_EQ(attr_to_json(AttrValue{std::int64_t{42}}).dump(), "42");
  EXPECT_EQ(attr_to_json(AttrValue{std::string("doh")}).dump(), "\"doh\"");
  EXPECT_EQ(attr_to_json(AttrValue{true}).dump(), "true");
}

}  // namespace
}  // namespace dohperf::obs
