#include <gtest/gtest.h>

#include "sim_fixture.hpp"
#include "simnet/stream.hpp"

namespace dohperf::simnet {
namespace {

using testing::TwoHostFixture;

// --- event loop ---------------------------------------------------------------

TEST(EventLoop, FiresInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_in(ms(30), [&]() { order.push_back(3); });
  loop.schedule_in(ms(10), [&]() { order.push_back(1); });
  loop.schedule_in(ms(20), [&]() { order.push_back(2); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), ms(30));
}

TEST(EventLoop, SameInstantFifo) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    loop.schedule_in(ms(10), [&order, i]() { order.push_back(i); });
  }
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventLoop, CancelPreventsExecution) {
  EventLoop loop;
  bool fired = false;
  const auto id = loop.schedule_in(ms(10), [&]() { fired = true; });
  loop.cancel(id);
  loop.run();
  EXPECT_FALSE(fired);
  loop.cancel(id);  // double-cancel is a no-op
}

TEST(EventLoop, RunUntilLeavesLaterEvents) {
  EventLoop loop;
  int count = 0;
  loop.schedule_in(ms(10), [&]() { ++count; });
  loop.schedule_in(ms(50), [&]() { ++count; });
  loop.run_until(ms(20));
  EXPECT_EQ(count, 1);
  EXPECT_EQ(loop.now(), ms(20));
  EXPECT_EQ(loop.pending(), 1u);
  loop.run();
  EXPECT_EQ(count, 2);
}

TEST(EventLoop, EventsScheduledDuringRun) {
  EventLoop loop;
  int depth = 0;
  std::function<void()> recurse = [&]() {
    if (++depth < 5) loop.schedule_in(ms(1), recurse);
  };
  loop.schedule_in(0, recurse);
  loop.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(loop.executed(), 5u);
}

TEST(EventLoop, PastScheduleClampsToNow) {
  EventLoop loop;
  loop.schedule_in(ms(10), [&loop]() {
    bool fired = false;
    loop.schedule_at(0, [&]() { fired = true; });  // in the past
    (void)fired;
  });
  loop.run();
  EXPECT_EQ(loop.now(), ms(10));
}

// --- UDP ------------------------------------------------------------------------

class UdpTest : public TwoHostFixture {};

TEST_F(UdpTest, DatagramDeliveredWithLatency) {
  auto& server_sock = server.udp_open(53);
  auto& client_sock = client.udp_open();
  TimeUs received_at = -1;
  Bytes received;
  server_sock.set_receiver([&](const Bytes& payload, Address from) {
    received = payload;
    received_at = loop.now();
    server_sock.send_to(from, Bytes{9, 9});
  });
  Bytes reply;
  client_sock.set_receiver([&](const Bytes& payload, Address) {
    reply = payload;
  });
  client_sock.send_to({server.id(), 53}, Bytes{1, 2, 3});
  loop.run();
  EXPECT_EQ(received, (Bytes{1, 2, 3}));
  EXPECT_EQ(received_at, ms(5));          // one-way latency
  EXPECT_EQ(reply, (Bytes{9, 9}));
  EXPECT_EQ(loop.now(), ms(10));          // round trip
}

TEST_F(UdpTest, CountersTrackWire) {
  auto& server_sock = server.udp_open(53);
  auto& client_sock = client.udp_open();
  server_sock.set_receiver([](const Bytes&, Address) {});
  client_sock.send_to({server.id(), 53}, Bytes(100, 0));
  loop.run();
  EXPECT_EQ(client_sock.counters().datagrams_sent, 1u);
  EXPECT_EQ(client_sock.counters().payload_bytes_sent, 100u);
  EXPECT_EQ(client_sock.counters().wire_bytes_sent, 128u);  // +20 IP +8 UDP
  EXPECT_EQ(server_sock.counters().wire_bytes_received, 128u);
}

TEST_F(UdpTest, UnboundPortDropsSilently) {
  auto& client_sock = client.udp_open();
  client_sock.send_to({server.id(), 9999}, Bytes{1});
  loop.run();  // must not crash
  EXPECT_EQ(net.packets_sent(), 1u);
}

TEST_F(UdpTest, OversizedPayloadRejected) {
  auto& sock = client.udp_open();
  EXPECT_THROW(sock.send_to({server.id(), 53}, Bytes(70000, 0)),
               std::length_error);
}

TEST_F(UdpTest, PortCollisionThrows) {
  client.udp_open(5000);
  EXPECT_THROW(client.udp_open(5000), std::logic_error);
}

// --- Network fabric ---------------------------------------------------------------

TEST(Network, NoLinkThrows) {
  EventLoop loop;
  Network net(loop);
  Host a(net, "a");
  Host b(net, "b");  // no link a<->b
  auto& sock = a.udp_open();
  EXPECT_THROW(sock.send_to({b.id(), 1}, Bytes{1}), std::logic_error);
}

TEST(Network, LossDropsPackets) {
  EventLoop loop;
  Network net(loop, 123);
  Host a(net, "a");
  Host b(net, "b");
  LinkConfig link;
  link.latency = ms(1);
  link.loss_rate = 0.5;
  net.connect(a.id(), b.id(), link);
  auto& tx = a.udp_open();
  auto& rx = b.udp_open(7);
  int received = 0;
  rx.set_receiver([&](const Bytes&, Address) { ++received; });
  for (int i = 0; i < 1000; ++i) tx.send_to({b.id(), 7}, Bytes{1});
  loop.run();
  EXPECT_GT(received, 400);
  EXPECT_LT(received, 600);
  EXPECT_EQ(net.packets_dropped(), 1000u - static_cast<unsigned>(received));
}

TEST(Network, BandwidthSerializes) {
  EventLoop loop;
  Network net(loop);
  Host a(net, "a");
  Host b(net, "b");
  LinkConfig link;
  link.latency = 0;
  link.bandwidth_bps = 8000.0;  // 1000 bytes/sec
  net.connect(a.id(), b.id(), link);
  auto& tx = a.udp_open();
  auto& rx = b.udp_open(7);
  std::vector<TimeUs> arrivals;
  rx.set_receiver([&](const Bytes&, Address) { arrivals.push_back(loop.now()); });
  // Two 972-byte payloads = 1000 wire bytes each = 1 second each.
  tx.send_to({b.id(), 7}, Bytes(972, 0));
  tx.send_to({b.id(), 7}, Bytes(972, 0));
  loop.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0], seconds(1));
  EXPECT_EQ(arrivals[1], seconds(2));  // FIFO queueing behind the first
}

TEST(Network, TapSeesPackets) {
  EventLoop loop;
  Network net(loop);
  Host a(net, "a");
  Host b(net, "b");
  net.connect(a.id(), b.id(), {});
  CountingTap tap;
  net.add_tap(&tap);
  auto& tx = a.udp_open();
  b.udp_open(7).set_receiver([](const Bytes&, Address) {});
  tx.send_to({b.id(), 7}, Bytes(10, 0));
  loop.run();
  EXPECT_EQ(tap.packets(), 1u);
  EXPECT_EQ(tap.bytes(), 38u);
  net.remove_tap(&tap);
  tx.send_to({b.id(), 7}, Bytes(10, 0));
  loop.run();
  EXPECT_EQ(tap.packets(), 1u);  // unchanged after removal
}

// --- TCP ---------------------------------------------------------------------------

class TcpTest : public TwoHostFixture {
 protected:
  /// Accepted connection + echo-server wiring.
  std::shared_ptr<TcpConnection> accepted;

  void listen_echo(std::uint16_t port = 80) {
    server.tcp_listen(port, [this](std::shared_ptr<TcpConnection> conn) {
      accepted = conn;
      TcpCallbacks cbs;
      cbs.on_data = [conn](std::span<const std::uint8_t> data) {
        conn->send(Bytes(data.begin(), data.end()));
      };
      conn->set_callbacks(std::move(cbs));
    });
  }
};

TEST_F(TcpTest, HandshakeCompletes) {
  listen_echo();
  auto conn = client.tcp_connect({server.id(), 80});
  bool connected = false;
  TcpCallbacks cbs;
  cbs.on_connected = [&]() { connected = true; };
  conn->set_callbacks(std::move(cbs));
  loop.run();
  EXPECT_TRUE(connected);
  EXPECT_TRUE(conn->established());
  ASSERT_TRUE(accepted);
  EXPECT_TRUE(accepted->established());
  // 3-way handshake: client sent SYN + ACK, server sent SYN-ACK.
  EXPECT_EQ(conn->counters().packets_sent, 2u);
  EXPECT_EQ(conn->counters().packets_received, 1u);
}

TEST_F(TcpTest, EchoSmallPayload) {
  listen_echo();
  auto conn = client.tcp_connect({server.id(), 80});
  Bytes echoed;
  TcpCallbacks cbs;
  cbs.on_connected = [&conn]() { conn->send(Bytes{1, 2, 3, 4}); };
  cbs.on_data = [&](std::span<const std::uint8_t> d) {
    echoed.assign(d.begin(), d.end());
  };
  conn->set_callbacks(std::move(cbs));
  loop.run();
  EXPECT_EQ(echoed, (Bytes{1, 2, 3, 4}));
}

TEST_F(TcpTest, LargeTransferSegmentsAndReassembles) {
  listen_echo();
  auto conn = client.tcp_connect({server.id(), 80});
  Bytes sent(100000);
  for (std::size_t i = 0; i < sent.size(); ++i) {
    sent[i] = static_cast<std::uint8_t>(i * 31 + 7);
  }
  Bytes echoed;
  TcpCallbacks cbs;
  cbs.on_connected = [&]() { conn->send(sent); };
  cbs.on_data = [&](std::span<const std::uint8_t> d) {
    echoed.insert(echoed.end(), d.begin(), d.end());
  };
  conn->set_callbacks(std::move(cbs));
  loop.run();
  EXPECT_EQ(echoed, sent);
  // Payload must have been split into MSS-sized segments.
  EXPECT_GT(conn->counters().packets_sent, sent.size() / 1460);
}

TEST_F(TcpTest, SendBeforeEstablishedIsQueued) {
  listen_echo();
  auto conn = client.tcp_connect({server.id(), 80});
  Bytes echoed;
  TcpCallbacks cbs;
  cbs.on_data = [&](std::span<const std::uint8_t> d) {
    echoed.assign(d.begin(), d.end());
  };
  conn->set_callbacks(std::move(cbs));
  conn->send(Bytes{5, 6});  // before the handshake finished
  loop.run();
  EXPECT_EQ(echoed, (Bytes{5, 6}));
}

TEST_F(TcpTest, OrderlyCloseBothSides) {
  listen_echo();
  auto conn = client.tcp_connect({server.id(), 80});
  bool closed = false;
  bool remote_closed_on_server = false;
  TcpCallbacks cbs;
  cbs.on_connected = [&conn]() { conn->close(); };
  cbs.on_closed = [&]() { closed = true; };
  conn->set_callbacks(std::move(cbs));

  server.tcp_stop_listening(80);
  server.tcp_listen(80, [&](std::shared_ptr<TcpConnection> c) {
    accepted = c;
    TcpCallbacks scbs;
    scbs.on_remote_closed = [&remote_closed_on_server, c]() {
      remote_closed_on_server = true;
      c->close();  // close our side too
    };
    c->set_callbacks(std::move(scbs));
  });

  loop.run();
  EXPECT_TRUE(closed);
  EXPECT_TRUE(remote_closed_on_server);
  EXPECT_EQ(conn->state(), TcpState::kClosed);
  EXPECT_EQ(client.tcp_connection_count(), 0u);
  EXPECT_EQ(server.tcp_connection_count(), 0u);
}

TEST_F(TcpTest, ConnectToClosedPortResets) {
  auto conn = client.tcp_connect({server.id(), 81});  // nobody listening
  bool reset = false;
  TcpCallbacks cbs;
  cbs.on_reset = [&]() { reset = true; };
  conn->set_callbacks(std::move(cbs));
  loop.run();
  EXPECT_TRUE(reset);
  EXPECT_EQ(conn->state(), TcpState::kClosed);
}

TEST_F(TcpTest, RetransmissionRecoversFromLoss) {
  // 20% loss both ways; TCP must still deliver everything.
  LinkConfig lossy;
  lossy.latency = ms(5);
  lossy.loss_rate = 0.2;
  net.reconfigure(client.id(), server.id(), lossy);

  listen_echo();
  auto conn = client.tcp_connect({server.id(), 80});
  Bytes sent(20000, 0xab);
  Bytes echoed;
  TcpCallbacks cbs;
  cbs.on_connected = [&]() { conn->send(sent); };
  cbs.on_data = [&](std::span<const std::uint8_t> d) {
    echoed.insert(echoed.end(), d.begin(), d.end());
  };
  conn->set_callbacks(std::move(cbs));
  loop.run();
  EXPECT_EQ(echoed, sent);
  EXPECT_GT(conn->counters().retransmits + accepted->counters().retransmits,
            0u);
}

TEST_F(TcpTest, HeaderAccounting) {
  listen_echo();
  auto conn = client.tcp_connect({server.id(), 80});
  TcpCallbacks cbs;
  cbs.on_connected = [&conn]() { conn->send(Bytes(100, 1)); };
  cbs.on_data = [](std::span<const std::uint8_t>) {};
  conn->set_callbacks(std::move(cbs));
  loop.run();
  const auto& c = conn->counters();
  // Every sent byte is either header or payload.
  EXPECT_EQ(c.wire_bytes_sent, c.header_bytes_sent + c.payload_bytes_sent);
  EXPECT_EQ(c.payload_bytes_sent, 100u);
  // SYN carries 40+20 header bytes, data segment 40+12 (timestamps).
  EXPECT_GE(c.header_bytes_sent, 60u + 52u);
}

TEST_F(TcpTest, CountersSymmetric) {
  listen_echo();
  auto conn = client.tcp_connect({server.id(), 80});
  TcpCallbacks cbs;
  cbs.on_connected = [&conn]() { conn->send(Bytes(5000, 2)); };
  cbs.on_data = [](std::span<const std::uint8_t>) {};
  conn->set_callbacks(std::move(cbs));
  loop.run();
  EXPECT_EQ(conn->counters().wire_bytes_sent,
            accepted->counters().wire_bytes_received);
  EXPECT_EQ(conn->counters().packets_sent,
            accepted->counters().packets_received);
}

TEST_F(TcpTest, SendOnClosedThrows) {
  listen_echo();
  auto conn = client.tcp_connect({server.id(), 80});
  loop.run();
  conn->close();
  EXPECT_THROW(conn->send(Bytes{1}), std::logic_error);
}

TEST_F(TcpTest, AbortSendsReset) {
  listen_echo();
  auto conn = client.tcp_connect({server.id(), 80});
  bool server_reset = false;
  server.tcp_stop_listening(80);
  server.tcp_listen(80, [&](std::shared_ptr<TcpConnection> c) {
    accepted = c;
    TcpCallbacks scbs;
    scbs.on_reset = [&]() { server_reset = true; };
    c->set_callbacks(std::move(scbs));
  });
  TcpCallbacks cbs;
  cbs.on_connected = [&conn]() { conn->abort(); };
  conn->set_callbacks(std::move(cbs));
  loop.run();
  EXPECT_TRUE(server_reset);
}

// --- TcpByteStream adapter ------------------------------------------------------

TEST_F(TcpTest, ByteStreamAdapterRoundTrip) {
  listen_echo();
  auto stream =
      std::make_unique<TcpByteStream>(client.tcp_connect({server.id(), 80}));
  Bytes received;
  bool opened = false;
  ByteStream::Handlers h;
  h.on_open = [&]() {
    opened = true;
    stream->send(Bytes{42});
  };
  h.on_data = [&](std::span<const std::uint8_t> d) {
    received.assign(d.begin(), d.end());
  };
  auto* raw = stream.get();
  raw->set_handlers(std::move(h));
  loop.run();
  EXPECT_TRUE(opened);
  EXPECT_EQ(received, (Bytes{42}));
}

}  // namespace
}  // namespace dohperf::simnet
