#include <gtest/gtest.h>

#include "dns/base64url.hpp"
#include "dns/json.hpp"
#include "dns/json_value.hpp"
#include "dns/message.hpp"

namespace dohperf::dns {
namespace {

TEST(Name, ParseAndPrint) {
  const auto n = Name::parse("www.Example.COM");
  EXPECT_EQ(n.label_count(), 3u);
  EXPECT_EQ(n.to_string(), "www.Example.COM");
}

TEST(Name, TrailingDotAccepted) {
  EXPECT_EQ(Name::parse("example.com."), Name::parse("example.com"));
}

TEST(Name, RootName) {
  const auto root = Name::parse(".");
  EXPECT_TRUE(root.is_root());
  EXPECT_EQ(root.to_string(), ".");
  EXPECT_EQ(root.wire_length(), 1u);
}

TEST(Name, CaseInsensitiveEquality) {
  EXPECT_EQ(Name::parse("EXAMPLE.com"), Name::parse("example.COM"));
  EXPECT_NE(Name::parse("a.example.com"), Name::parse("b.example.com"));
}

TEST(Name, InvalidNamesRejected) {
  EXPECT_THROW(Name::parse(""), WireError);
  EXPECT_THROW(Name::parse("a..b"), WireError);
  EXPECT_THROW(Name::parse(std::string(64, 'x') + ".com"), WireError);
  // > 255 octets total
  std::string long_name;
  for (int i = 0; i < 50; ++i) long_name += "abcdef.";
  long_name += "com";
  EXPECT_THROW(Name::parse(long_name), WireError);
}

TEST(Name, ParentAndChild) {
  const auto n = Name::parse("www.example.com");
  EXPECT_EQ(n.parent(), Name::parse("example.com"));
  EXPECT_EQ(Name::parse("example.com").child("www"), n);
  EXPECT_TRUE(Name::root().parent().is_root());
}

TEST(Name, SubdomainChecks) {
  const auto child = Name::parse("a.b.example.com");
  EXPECT_TRUE(child.is_subdomain_of(Name::parse("example.com")));
  EXPECT_TRUE(child.is_subdomain_of(child));
  EXPECT_FALSE(Name::parse("example.com").is_subdomain_of(child));
  EXPECT_FALSE(child.is_subdomain_of(Name::parse("example.org")));
}

TEST(Name, WireRoundTripNoCompression) {
  ByteWriter w;
  NameCompressor c(/*enabled=*/false);
  const auto n = Name::parse("mail.example.org");
  c.write(w, n);
  ByteReader r(w.data());
  EXPECT_EQ(read_name(r), n);
  EXPECT_EQ(r.offset(), n.wire_length());
}

TEST(Name, CompressionPointersShrinkRepeats) {
  ByteWriter w;
  NameCompressor c;
  const auto a = Name::parse("www.example.com");
  const auto b = Name::parse("mail.example.com");
  c.write(w, a);
  const std::size_t after_first = w.size();
  c.write(w, b);  // should reuse "example.com" via a pointer
  const std::size_t second_len = w.size() - after_first;
  EXPECT_LT(second_len, b.wire_length());
  EXPECT_EQ(second_len, 1 + 4 + 2u);  // "mail" label + pointer

  ByteReader r(w.data());
  EXPECT_EQ(read_name(r), a);
  EXPECT_EQ(read_name(r), b);
}

TEST(Name, CompressionLoopDetected) {
  // A pointer that points at itself.
  Bytes evil{0xc0, 0x00};
  ByteReader r(evil);
  EXPECT_THROW(read_name(r), WireError);
}

TEST(ARdata, ParseAndFormat) {
  const auto a = ARdata::parse("192.0.2.1");
  EXPECT_EQ(a.to_string(), "192.0.2.1");
  EXPECT_THROW(ARdata::parse("256.1.1.1"), WireError);
  EXPECT_THROW(ARdata::parse("1.2.3"), WireError);
  EXPECT_THROW(ARdata::parse("a.b.c.d"), WireError);
}

TEST(Message, QueryRoundTrip) {
  const auto query =
      Message::make_query(0x1234, Name::parse("example.com"), RType::kA);
  const auto wire = query.encode();
  const auto decoded = Message::decode(wire);
  EXPECT_EQ(decoded.id, 0x1234);
  EXPECT_FALSE(decoded.flags.qr);
  EXPECT_TRUE(decoded.flags.rd);
  ASSERT_EQ(decoded.questions.size(), 1u);
  EXPECT_EQ(decoded.questions[0].qname, Name::parse("example.com"));
  EXPECT_EQ(decoded.questions[0].qtype, RType::kA);
  ASSERT_NE(decoded.edns(), nullptr);
  EXPECT_EQ(decoded, query);
}

TEST(Message, ResponseRoundTrip) {
  const auto query =
      Message::make_query(7, Name::parse("www.example.com"), RType::kA);
  auto response = Message::make_response(
      query, {ResourceRecord::a(Name::parse("www.example.com"), "203.0.113.9",
                                600)});
  const auto decoded = Message::decode(response.encode());
  EXPECT_TRUE(decoded.flags.qr);
  EXPECT_EQ(decoded.flags.rcode, Rcode::kNoError);
  ASSERT_EQ(decoded.answers.size(), 1u);
  const auto& rr = decoded.answers[0];
  EXPECT_EQ(rr.ttl, 600u);
  EXPECT_EQ(std::get<ARdata>(rr.rdata).to_string(), "203.0.113.9");
}

TEST(Message, ErrorResponse) {
  const auto query = Message::make_query(9, Name::parse("nx.example"));
  const auto err = Message::make_error(query, Rcode::kNxDomain);
  const auto decoded = Message::decode(err.encode());
  EXPECT_EQ(decoded.flags.rcode, Rcode::kNxDomain);
  EXPECT_TRUE(decoded.answers.empty());
}

TEST(Message, AllRecordTypesRoundTrip) {
  const auto owner = Name::parse("example.com");
  Message m;
  m.id = 1;
  m.flags.qr = true;
  m.answers = {
      ResourceRecord::a(owner, "192.0.2.1"),
      ResourceRecord::cname(Name::parse("alias.example.com"), owner),
      ResourceRecord::txt(owner, "hello world"),
      ResourceRecord::caa(owner, 0, "issue", "ca.example.net"),
      {owner, RType::kNS, RClass::kIN, 300, NsRdata{Name::parse("ns1.example.com")}},
      {owner, RType::kMX, RClass::kIN, 300, MxRdata{10, Name::parse("mx.example.com")}},
      {owner, RType::kPTR, RClass::kIN, 300, PtrRdata{Name::parse("host.example.com")}},
      {owner, RType::kSOA, RClass::kIN, 300,
       SoaRdata{Name::parse("ns1.example.com"), Name::parse("admin.example.com"),
                2024010101, 3600, 600, 86400, 300}},
  };
  AaaaRdata aaaa;
  aaaa.addr = {0x20, 0x01, 0x0d, 0xb8, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1};
  m.answers.push_back({owner, RType::kAAAA, RClass::kIN, 300, aaaa});

  const auto decoded = Message::decode(m.encode());
  EXPECT_EQ(decoded, m);
}

TEST(Message, CompressionShrinksRepeatedNames) {
  const auto owner = Name::parse("subdomain.example.com");
  Message m;
  m.answers.assign(5, ResourceRecord::a(owner, "192.0.2.1"));
  const auto compressed = m.encode(true);
  const auto uncompressed = m.encode(false);
  EXPECT_LT(compressed.size(), uncompressed.size());
  EXPECT_EQ(Message::decode(compressed), Message::decode(uncompressed));
}

TEST(Message, TruncatedInputThrows) {
  const auto wire =
      Message::make_query(1, Name::parse("example.com")).encode();
  for (std::size_t cut = 1; cut < wire.size(); cut += 7) {
    Bytes partial(wire.begin(), wire.begin() + static_cast<long>(cut));
    EXPECT_THROW(Message::decode(partial), WireError) << "cut=" << cut;
  }
}

TEST(Message, EdnsPaddingBlocksSize) {
  auto query = Message::make_query(5, Name::parse("a.example.com"));
  query.pad_to_multiple(128);
  const auto wire = query.encode();
  EXPECT_EQ(wire.size() % 128, 0u);
  // Idempotent: re-padding keeps one padding option.
  query.pad_to_multiple(128);
  EXPECT_EQ(query.encode().size(), wire.size());
  // Round-trips.
  EXPECT_EQ(Message::decode(wire), query);
}

TEST(Message, PaddingWithoutEdnsThrows) {
  auto query = Message::make_query(5, Name::parse("a.example.com"),
                                   RType::kA, /*edns=*/false);
  EXPECT_THROW(query.pad_to_multiple(128), WireError);
}

TEST(Flags, EncodeDecodeAllBits) {
  Flags f;
  f.qr = true;
  f.aa = true;
  f.tc = true;
  f.rd = false;
  f.ra = true;
  f.ad = true;
  f.cd = true;
  f.rcode = Rcode::kRefused;
  EXPECT_EQ(Flags::decode(f.encode()), f);
}

TEST(JsonValue, ParsePrimitives) {
  EXPECT_TRUE(JsonValue::parse("null").is_null());
  EXPECT_EQ(JsonValue::parse("true").as_bool(), true);
  EXPECT_EQ(JsonValue::parse("-42").as_int(), -42);
  EXPECT_DOUBLE_EQ(JsonValue::parse("2.5").as_double(), 2.5);
  EXPECT_EQ(JsonValue::parse("\"a\\nb\"").as_string(), "a\nb");
}

TEST(JsonValue, ParseNested) {
  const auto v = JsonValue::parse(R"({"a":[1,2,{"b":"c"}],"d":{}})");
  EXPECT_EQ(v.at("a").as_array().size(), 3u);
  EXPECT_EQ(v.at("a").as_array()[2].at("b").as_string(), "c");
  EXPECT_TRUE(v.at("d").as_object().empty());
}

TEST(JsonValue, RejectsGarbage) {
  EXPECT_THROW(JsonValue::parse(""), JsonError);
  EXPECT_THROW(JsonValue::parse("{"), JsonError);
  EXPECT_THROW(JsonValue::parse("tru"), JsonError);
  EXPECT_THROW(JsonValue::parse("{}x"), JsonError);
  EXPECT_THROW(JsonValue::parse("[1,]"), JsonError);
}

TEST(JsonValue, DumpParseRoundTrip) {
  const auto v = JsonValue::parse(
      R"({"Status":0,"Answer":[{"name":"x.","data":"1.2.3.4"}],"TC":false})");
  EXPECT_EQ(JsonValue::parse(v.dump()), v);
}

TEST(DnsJson, ResponseRoundTrip) {
  const auto query =
      Message::make_query(0, Name::parse("example.com"), RType::kA);
  auto response = Message::make_response(
      query, {ResourceRecord::a(Name::parse("example.com"), "93.184.216.34")});
  const std::string json = to_dns_json(response);
  EXPECT_NE(json.find("\"Status\":0"), std::string::npos);
  EXPECT_NE(json.find("93.184.216.34"), std::string::npos);

  const auto parsed = from_dns_json(json);
  EXPECT_EQ(parsed.flags.rcode, Rcode::kNoError);
  ASSERT_EQ(parsed.answers.size(), 1u);
  EXPECT_EQ(std::get<ARdata>(parsed.answers[0].rdata).to_string(),
            "93.184.216.34");
  EXPECT_EQ(parsed.questions.at(0).qname, Name::parse("example.com"));
}

TEST(DnsJson, QueryString) {
  EXPECT_EQ(dns_json_query_string(Name::parse("example.com"), RType::kAAAA),
            "name=example.com&type=AAAA");
}

TEST(Base64Url, KnownVectors) {
  EXPECT_EQ(base64url_encode(to_bytes("")), "");
  EXPECT_EQ(base64url_encode(to_bytes("f")), "Zg");
  EXPECT_EQ(base64url_encode(to_bytes("fo")), "Zm8");
  EXPECT_EQ(base64url_encode(to_bytes("foo")), "Zm9v");
  EXPECT_EQ(base64url_encode(to_bytes("foob")), "Zm9vYg");
}

TEST(Base64Url, RoundTripAllBytes) {
  Bytes data;
  for (int i = 0; i < 256; ++i) data.push_back(static_cast<std::uint8_t>(i));
  EXPECT_EQ(base64url_decode(base64url_encode(data)), data);
}

TEST(Base64Url, UrlSafeAlphabet) {
  Bytes data{0xfb, 0xff, 0xbf};  // would produce +/ in standard base64
  const auto encoded = base64url_encode(data);
  EXPECT_EQ(encoded.find('+'), std::string::npos);
  EXPECT_EQ(encoded.find('/'), std::string::npos);
  EXPECT_EQ(base64url_decode(encoded), data);
}

TEST(Base64Url, RejectsInvalid) {
  EXPECT_THROW(base64url_decode("a"), WireError);     // impossible length
  EXPECT_THROW(base64url_decode("ab=="), WireError);  // padding not allowed
  EXPECT_THROW(base64url_decode("a+b/"), WireError);  // wrong alphabet
}

TEST(Wire, ReaderBounds) {
  Bytes data{1, 2, 3};
  ByteReader r(data);
  EXPECT_EQ(r.u8(), 1);
  EXPECT_EQ(r.u16(), 0x0203);
  EXPECT_TRUE(r.exhausted());
  EXPECT_THROW(r.u8(), WireError);
}

TEST(Wire, WriterPatch) {
  ByteWriter w;
  w.u16(0);
  w.u32(0xdeadbeef);
  w.patch_u16(0, 0x1234);
  ByteReader r(w.data());
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xdeadbeef);
  EXPECT_THROW(w.patch_u16(5, 1), WireError);
}

}  // namespace
}  // namespace dohperf::dns
