// Robustness: protocol violations against the HTTP/2 connection and the
// DoH server's negative request paths, plus the DoH client's RFC 8467
// query-padding knob.
#include <gtest/gtest.h>

#include "core/doh_client.hpp"
#include "core/fallback_client.hpp"
#include "core/udp_client.hpp"
#include "http2/connection.hpp"
#include "resolver/engine.hpp"
#include "resolver/doh_server.hpp"
#include "resolver/udp_server.hpp"
#include "sim_fixture.hpp"
#include "simnet/fault.hpp"

namespace dohperf {
namespace {

using dohperf::testing::TwoHostFixture;
using simnet::Bytes;

// --- HTTP/2 protocol violations -------------------------------------------------

class H2ViolationTest : public TwoHostFixture {
 protected:
  std::unique_ptr<http2::Http2Connection> server_conn;

  void start_h2_server() {
    server.tcp_listen(443, [this](std::shared_ptr<simnet::TcpConnection> c) {
      server_conn = std::make_unique<http2::Http2Connection>(
          std::make_unique<simnet::TcpByteStream>(std::move(c)),
          http2::Http2Connection::Role::kServer);
      server_conn->set_request_handler(
          [](const http2::H2Message&, http2::Http2Connection::Responder r) {
            http2::H2Message response;
            response.headers.push_back({":status", "200"});
            r(std::move(response));
          });
    });
  }

  /// Raw TCP connection to speak broken h2 at the server.
  std::shared_ptr<simnet::TcpConnection> raw_connect() {
    return client.tcp_connect({server.id(), 443});
  }
};

TEST_F(H2ViolationTest, BadPrefaceClosesConnection) {
  start_h2_server();
  auto conn = raw_connect();
  simnet::TcpCallbacks cbs;
  cbs.on_connected = [&conn]() {
    conn->send(dns::to_bytes("GET / HTTP/1.1\r\n\r\n padding padding"));
  };
  conn->set_callbacks(std::move(cbs));
  loop.run();
  EXPECT_FALSE(server_conn->is_open());
}

TEST_F(H2ViolationTest, OversizedFrameIsConnectionError) {
  start_h2_server();
  auto conn = raw_connect();
  simnet::TcpCallbacks cbs;
  cbs.on_connected = [&conn]() {
    Bytes bytes(http2::kConnectionPreface.begin(),
                http2::kConnectionPreface.end());
    // A frame header declaring a 1 MB payload.
    const std::uint32_t len = 1 << 20;
    bytes.push_back(static_cast<std::uint8_t>(len >> 16));
    bytes.push_back(static_cast<std::uint8_t>((len >> 8) & 0xff));
    bytes.push_back(static_cast<std::uint8_t>(len & 0xff));
    bytes.push_back(0x0);  // DATA
    bytes.push_back(0);
    for (int i = 0; i < 4; ++i) bytes.push_back(0);
    conn->send(std::move(bytes));
  };
  conn->set_callbacks(std::move(cbs));
  loop.run();
  EXPECT_FALSE(server_conn->is_open());
}

TEST_F(H2ViolationTest, DataOnUnknownStreamIsError) {
  start_h2_server();
  auto conn = raw_connect();
  simnet::TcpCallbacks cbs;
  cbs.on_connected = [&conn]() {
    Bytes bytes(http2::kConnectionPreface.begin(),
                http2::kConnectionPreface.end());
    http2::Frame settings;
    settings.type = http2::FrameType::kSettings;
    const auto s = http2::encode_frame(settings);
    bytes.insert(bytes.end(), s.begin(), s.end());
    http2::Frame data;
    data.type = http2::FrameType::kData;
    data.stream_id = 7;  // never opened
    data.payload = Bytes{1, 2, 3};
    const auto d = http2::encode_frame(data);
    bytes.insert(bytes.end(), d.begin(), d.end());
    conn->send(std::move(bytes));
  };
  conn->set_callbacks(std::move(cbs));
  loop.run();
  EXPECT_FALSE(server_conn->is_open());
}

TEST_F(H2ViolationTest, GarbageHpackBlockIsError) {
  start_h2_server();
  auto conn = raw_connect();
  simnet::TcpCallbacks cbs;
  cbs.on_connected = [&conn]() {
    Bytes bytes(http2::kConnectionPreface.begin(),
                http2::kConnectionPreface.end());
    http2::Frame headers;
    headers.type = http2::FrameType::kHeaders;
    headers.stream_id = 1;
    headers.flags = http2::kFlagEndHeaders | http2::kFlagEndStream;
    headers.payload = Bytes{0xff, 0xff, 0xff, 0xff, 0xff};  // bogus index
    const auto h = http2::encode_frame(headers);
    bytes.insert(bytes.end(), h.begin(), h.end());
    conn->send(std::move(bytes));
  };
  conn->set_callbacks(std::move(cbs));
  loop.run();
  EXPECT_FALSE(server_conn->is_open());
}

// --- DoH server negative paths -----------------------------------------------------

TEST(DohServerHelpers, SplitTarget) {
  using resolver::split_target;
  EXPECT_EQ(split_target("/dns-query"), (std::pair<std::string, std::string>{
                                            "/dns-query", ""}));
  EXPECT_EQ(split_target("/dns-query?dns=AAA"),
            (std::pair<std::string, std::string>{"/dns-query", "dns=AAA"}));
  EXPECT_EQ(split_target("/?a=1&b=2"),
            (std::pair<std::string, std::string>{"/", "a=1&b=2"}));
}

TEST(DohServerHelpers, ParseJsonQuery) {
  using resolver::parse_json_query;
  EXPECT_EQ(parse_json_query("name=example.com&type=AAAA"),
            (std::pair<std::string, std::string>{"example.com", "AAAA"}));
  EXPECT_EQ(parse_json_query("type=A&name=x.org"),
            (std::pair<std::string, std::string>{"x.org", "A"}));
  EXPECT_EQ(parse_json_query("unrelated=1"),
            (std::pair<std::string, std::string>{"", ""}));
  EXPECT_EQ(parse_json_query(""),
            (std::pair<std::string, std::string>{"", ""}));
}

class DohNegativeTest : public TwoHostFixture {
 protected:
  resolver::EngineConfig engine_config;
  std::unique_ptr<resolver::Engine> engine;
  std::unique_ptr<resolver::DohServer> doh_server;

  void start() {
    engine = std::make_unique<resolver::Engine>(loop, engine_config);
    resolver::DohServerConfig config;
    config.tls.chain = tlssim::CertificateChain::cloudflare();
    doh_server = std::make_unique<resolver::DohServer>(server, *engine,
                                                       config, 443);
  }

  /// Issue one raw HTTP/1.1-over-TLS request and return the status code.
  int raw_request(const std::string& method, const std::string& target,
                  const std::string& content_type, Bytes body) {
    tlssim::ClientConfig tls_config;
    tls_config.sni = "cloudflare-dns.com";
    tls_config.alpn = {"http/1.1"};
    auto tls = std::make_unique<tlssim::TlsConnection>(
        std::make_unique<simnet::TcpByteStream>(
            client.tcp_connect({server.id(), 443})),
        std::move(tls_config));
    http1::Http1Client http(std::move(tls));
    http1::Request request;
    request.method = method;
    request.target = target;
    request.headers.add("Host", "cloudflare-dns.com");
    request.headers.add("Accept", "application/dns-message");
    if (!content_type.empty()) {
      request.headers.add("Content-Type", content_type);
    }
    request.body = std::move(body);
    int status = -1;
    http.request(std::move(request),
                 [&](const http1::Response& r) { status = r.status; });
    loop.run();
    return status;
  }
};

TEST_F(DohNegativeTest, GetWithInvalidBase64Is400) {
  start();
  EXPECT_EQ(raw_request("GET", "/dns-query?dns=!!!not-base64!!!", "", {}),
            400);
}

TEST_F(DohNegativeTest, GetWithoutDnsParamIs400) {
  start();
  EXPECT_EQ(raw_request("GET", "/dns-query", "", {}), 400);
}

TEST_F(DohNegativeTest, PostWithWrongContentTypeIs415) {
  start();
  EXPECT_EQ(raw_request("POST", "/dns-query", "text/plain",
                        dns::to_bytes("hello")),
            415);
}

TEST_F(DohNegativeTest, PostWithGarbageDnsIs400) {
  start();
  EXPECT_EQ(raw_request("POST", "/dns-query", "application/dns-message",
                        Bytes{1, 2, 3}),
            400);
}

TEST_F(DohNegativeTest, UnsupportedMethodIs405) {
  start();
  EXPECT_EQ(raw_request("DELETE", "/dns-query", "", {}), 405);
}

TEST_F(DohNegativeTest, UnknownPathIs404) {
  start();
  EXPECT_EQ(raw_request("POST", "/resolve", "application/dns-message",
                        dns::Message::make_query(
                            0, dns::Name::parse("x.example")).encode()),
            404);
}

// --- DoH query padding ---------------------------------------------------------------

TEST_F(DohNegativeTest, PaddedQueriesHaveUniformSize) {
  start();
  core::DohClientConfig config;
  config.server_name = "cloudflare-dns.com";
  config.pad_queries_to = 128;
  core::DohClient padded(client, {server.id(), 443}, config);

  std::set<std::uint64_t> sizes;
  for (const char* n : {"a.example", "bbbbbb.example", "c-very-long-name"
                                                       ".subdomain.example"}) {
    const auto id = padded.resolve(dns::Name::parse(n), dns::RType::kA, {});
    loop.run();
    const auto& r = padded.result(id);
    EXPECT_TRUE(r.success);
    // Query + response dns bytes minus the (variable) response: check the
    // query half via the recorded dns_message_bytes of a second client...
    // simpler: all padded queries have size % 128 == 0; sample via cost.
    sizes.insert(r.cost.dns_message_bytes);
  }
  // Response sizes vary, but the query component is uniform; verify the
  // padding directly:
  auto q = dns::Message::make_query(0, dns::Name::parse("a.example"));
  q.pad_to_multiple(128);
  EXPECT_EQ(q.encode().size() % 128, 0u);
}

// --- UDP retransmission under link loss ---------------------------------------------

class UdpRetransmissionTest : public TwoHostFixture {
 protected:
  resolver::EngineConfig engine_config;
};

TEST_F(UdpRetransmissionTest, RetransmitRecoversFromDroppedDatagram) {
  resolver::Engine engine(loop, engine_config);
  resolver::UdpServer udp_server(server, engine, 53);

  // Outage covering exactly the first transmission: the initial datagram is
  // lost, the timeout fires, and the retransmission gets through.
  simnet::FaultSchedule schedule;
  schedule.add_outage(simnet::ms(0), simnet::ms(100));
  net.inject_faults(client.id(), server.id(), schedule);

  core::UdpClientConfig config;
  config.timeout = simnet::ms(200);
  config.max_retries = 2;
  core::UdpResolverClient stub(client, {server.id(), 53}, config);

  core::ResolutionResult observed;
  const auto id = stub.resolve(dns::Name::parse("retry.example"),
                               dns::RType::kA,
                               [&](const core::ResolutionResult& r) {
                                 observed = r;
                               });
  loop.run();

  EXPECT_TRUE(observed.success);
  // One full timeout elapsed before the retransmission could succeed.
  EXPECT_GE(observed.resolution_time(), simnet::ms(200));
  EXPECT_EQ(stub.timeouts(), 0u);  // counts final failures, not retries
  EXPECT_EQ(net.fault_drops(), 1u);
  EXPECT_TRUE(stub.result(id).success);
}

TEST_F(UdpRetransmissionTest, BudgetExhaustionFailsQuery) {
  resolver::Engine engine(loop, engine_config);
  resolver::UdpServer udp_server(server, engine, 53);

  // Outage outlasting every retransmission.
  simnet::FaultSchedule schedule;
  schedule.add_outage(simnet::ms(0), simnet::seconds(10));
  net.inject_faults(client.id(), server.id(), schedule);

  core::UdpClientConfig config;
  config.timeout = simnet::ms(200);
  config.max_retries = 2;
  core::UdpResolverClient stub(client, {server.id(), 53}, config);

  core::ResolutionResult observed;
  observed.success = true;
  stub.resolve(dns::Name::parse("lost.example"), dns::RType::kA,
               [&](const core::ResolutionResult& r) { observed = r; });
  loop.run();

  EXPECT_FALSE(observed.success);
  EXPECT_EQ(stub.timeouts(), 1u);
  // Initial transmission plus both retransmissions were sent (and dropped).
  EXPECT_EQ(net.fault_drops(), 3u);
}

// --- Fallback decision accounting ----------------------------------------------------

TEST_F(TwoHostFixture, FallbackStatsRecordDecisionLatencyAndLatePrimaryFailure) {
  // Primary: a stalled resolver that accepts and never answers; its client
  // times out 1s in. Fallback: healthy but slow (every answer +1s), so the
  // primary's failure lands while the fallback is still racing.
  resolver::EngineConfig stalled;
  stalled.faults.stall_rate = 1.0;
  resolver::Engine primary_engine(loop, stalled);
  resolver::UdpServer primary_server(server, primary_engine, 53);

  resolver::EngineConfig slow;
  slow.delay_policy.every_n = 1;
  slow.delay_policy.delay = simnet::seconds(1);
  resolver::Engine fallback_engine(loop, slow);
  resolver::UdpServer fallback_server(server, fallback_engine, 54);

  core::UdpClientConfig primary_config;
  primary_config.timeout = simnet::seconds(1);
  core::UdpResolverClient primary(client, {server.id(), 53}, primary_config);
  core::UdpResolverClient fallback(client, {server.id(), 54});

  core::FallbackConfig config;
  config.primary_deadline = simnet::ms(500);
  core::FallbackResolverClient trr(loop, primary, fallback, config);

  core::ResolutionResult observed;
  trr.resolve(dns::Name::parse("late.example"), dns::RType::kA,
              [&](const core::ResolutionResult& r) { observed = r; });
  loop.run();

  EXPECT_TRUE(observed.success);
  const auto& s = trr.stats();
  EXPECT_EQ(s.fallback_started, 1u);
  EXPECT_EQ(s.fallback_used, 1u);
  EXPECT_EQ(s.primary_wins, 0u);
  EXPECT_EQ(s.both_failed, 0u);
  // Primary timed out at 1s, after the 500ms deadline started the fallback
  // but before the fallback's ~1.5s answer arrived.
  EXPECT_EQ(s.primary_late_failures, 1u);
  EXPECT_EQ(s.decision_latency_total, simnet::ms(500));
  EXPECT_EQ(s.decision_latency_max, simnet::ms(500));
  EXPECT_DOUBLE_EQ(s.mean_decision_latency_us(),
                   static_cast<double>(simnet::ms(500)));
}

TEST_F(TwoHostFixture, FallbackDecisionLatencyOnHardFailureBeatsDeadline) {
  // Primary fails fast (connection refused is not modelled for UDP, so use
  // a short client timeout): the fallback decision happens at the failure,
  // well before the deadline.
  resolver::EngineConfig stalled;
  stalled.faults.stall_rate = 1.0;
  resolver::Engine primary_engine(loop, stalled);
  resolver::UdpServer primary_server(server, primary_engine, 53);
  resolver::Engine fallback_engine(loop, {});
  resolver::UdpServer fallback_server(server, fallback_engine, 54);

  core::UdpClientConfig primary_config;
  primary_config.timeout = simnet::ms(100);
  core::UdpResolverClient primary(client, {server.id(), 53}, primary_config);
  core::UdpResolverClient fallback(client, {server.id(), 54});

  core::FallbackConfig config;
  config.primary_deadline = simnet::seconds(2);
  core::FallbackResolverClient trr(loop, primary, fallback, config);

  core::ResolutionResult observed;
  trr.resolve(dns::Name::parse("fast-fail.example"), dns::RType::kA,
              [&](const core::ResolutionResult& r) { observed = r; });
  loop.run();

  EXPECT_TRUE(observed.success);
  const auto& s = trr.stats();
  EXPECT_EQ(s.fallback_started, 1u);
  EXPECT_EQ(s.fallback_used, 1u);
  EXPECT_EQ(s.primary_late_failures, 0u);  // failure *triggered* the fallback
  EXPECT_EQ(s.decision_latency_max, simnet::ms(100));
}

TEST_F(TwoHostFixture, FallbackTearsDownLatePrimaryAnswer) {
  // The double-completion path: the fallback wins at ~510ms, then the
  // primary's answer lands at ~1s. The late answer must not surface, must
  // not fire the callback a second time, and is charged to primary_wasted.
  resolver::EngineConfig slow;
  slow.delay_policy.every_n = 1;
  slow.delay_policy.delay = simnet::seconds(1);
  resolver::Engine primary_engine(loop, slow);
  resolver::UdpServer primary_server(server, primary_engine, 53);
  resolver::Engine fallback_engine(loop, {});
  resolver::UdpServer fallback_server(server, fallback_engine, 54);

  core::UdpResolverClient primary(client, {server.id(), 53});
  core::UdpResolverClient fallback(client, {server.id(), 54});

  core::FallbackConfig config;
  config.primary_deadline = simnet::ms(500);
  core::FallbackResolverClient trr(loop, primary, fallback, config);

  int callbacks = 0;
  core::ResolutionResult observed;
  const auto id = trr.resolve(dns::Name::parse("late-win.example"),
                              dns::RType::kA,
                              [&](const core::ResolutionResult& r) {
                                ++callbacks;
                                observed = r;
                              });
  loop.run();

  EXPECT_EQ(callbacks, 1);
  EXPECT_EQ(trr.completed(), 1u);
  EXPECT_TRUE(observed.success);
  // The surfaced answer is the fallback's (deadline + one UDP round trip),
  // not the primary's 1s-delayed one.
  EXPECT_LT(observed.resolution_time(), simnet::ms(700));
  EXPECT_LT(trr.result(id).resolution_time(), simnet::ms(700));
  const auto& s = trr.stats();
  EXPECT_EQ(s.fallback_used, 1u);
  EXPECT_EQ(s.primary_wins, 0u);
  EXPECT_EQ(s.primary_wasted, 1u);
}

}  // namespace
}  // namespace dohperf
