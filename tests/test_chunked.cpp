// HTTP/1.1 chunked transfer-encoding (RFC 7230 §4.1).
#include <gtest/gtest.h>

#include "http1/message.hpp"

namespace dohperf::http1 {
namespace {

using dns::Bytes;

Response sample_response(std::size_t body_size) {
  Response r;
  r.status = 200;
  r.reason = "OK";
  r.headers.add("Content-Type", "application/octet-stream");
  r.body.resize(body_size);
  for (std::size_t i = 0; i < body_size; ++i) {
    r.body[i] = static_cast<std::uint8_t>(i * 7 + 1);
  }
  return r;
}

TEST(Chunked, SerializeShape) {
  const auto wire = serialize_chunked(sample_response(5), 4);
  const std::string text = dns::to_string(wire);
  EXPECT_NE(text.find("Transfer-Encoding: chunked\r\n"), std::string::npos);
  EXPECT_NE(text.find("\r\n4\r\n"), std::string::npos);  // first chunk size
  EXPECT_NE(text.find("\r\n1\r\n"), std::string::npos);  // second chunk
  EXPECT_NE(text.find("0\r\n\r\n"), std::string::npos);  // terminator
}

TEST(Chunked, RoundTripWholeBuffer) {
  const auto original = sample_response(1000);
  const auto wire = serialize_chunked(original, 256);
  Parser parser(Parser::Mode::kResponse);
  parser.feed(wire);
  const auto out = parser.next_response();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->status, 200);
  EXPECT_EQ(out->body, original.body);
  EXPECT_FALSE(parser.error());
}

TEST(Chunked, RoundTripByteByByte) {
  const auto original = sample_response(300);
  const auto wire = serialize_chunked(original, 64);
  Parser parser(Parser::Mode::kResponse);
  std::optional<Response> out;
  for (std::size_t i = 0; i < wire.size(); ++i) {
    parser.feed(std::span(&wire[i], 1));
    if (auto r = parser.next_response()) out = std::move(r);
  }
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->body, original.body);
}

TEST(Chunked, EmptyBodyIsJustTerminator) {
  const auto wire = serialize_chunked(sample_response(0), 64);
  Parser parser(Parser::Mode::kResponse);
  parser.feed(wire);
  const auto out = parser.next_response();
  ASSERT_TRUE(out.has_value());
  EXPECT_TRUE(out->body.empty());
}

TEST(Chunked, FollowedByContentLengthMessage) {
  // A chunked response followed by a content-length response on the same
  // connection: the parser must reset its chunked state between messages.
  Bytes wire = serialize_chunked(sample_response(100), 30);
  Response plain = sample_response(7);
  const auto second = serialize(plain);
  wire.insert(wire.end(), second.begin(), second.end());

  Parser parser(Parser::Mode::kResponse);
  parser.feed(wire);
  const auto first = parser.next_response();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->body.size(), 100u);
  const auto next = parser.next_response();
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(next->body.size(), 7u);
}

TEST(Chunked, BadChunkSizeLineIsError) {
  Parser parser(Parser::Mode::kResponse);
  parser.feed(dns::to_bytes(
      "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\nzz\r\nhi\r\n"));
  EXPECT_FALSE(parser.next_response().has_value());
  EXPECT_TRUE(parser.error());
}

TEST(Chunked, SizesCountFramingAsBody) {
  WireSizes sizes;
  const auto wire = serialize_chunked(sample_response(100), 10);
  Parser parser(Parser::Mode::kResponse);
  parser.feed(wire);
  ASSERT_TRUE(parser.next_response().has_value());
  // De-chunked body is 100 bytes but the wire framing is bigger.
  EXPECT_GT(parser.last_sizes().body_bytes, 100u);
  EXPECT_EQ(parser.last_sizes().header_bytes +
                parser.last_sizes().body_bytes,
            wire.size());
  (void)sizes;
}

}  // namespace
}  // namespace dohperf::http1
