// Tests closing remaining coverage gaps: the resolver engine's
// cache/upstream model, HTTP/2 CONTINUATION (header blocks larger than one
// frame), DoH GET with long names, the 2018 survey snapshot, and the web
// farm's bandwidth model.
#include <gtest/gtest.h>

#include "browser/page_load.hpp"
#include "browser/web_farm.hpp"
#include "core/doh_client.hpp"
#include "core/udp_client.hpp"
#include "http2/connection.hpp"
#include "resolver/engine.hpp"
#include "resolver/doh_server.hpp"
#include "resolver/udp_server.hpp"
#include "sim_fixture.hpp"
#include "survey/providers.hpp"

namespace dohperf {
namespace {

using dohperf::testing::TwoHostFixture;
using simnet::Bytes;

// --- resolver engine upstream model ----------------------------------------------

class EngineModelTest : public TwoHostFixture {};

TEST_F(EngineModelTest, CacheMissesPayUpstreamLatency) {
  resolver::EngineConfig config;
  config.upstream.cache_hit_ratio = 0.5;
  config.upstream.upstream_mu_ms = 50.0;
  config.upstream.upstream_sigma = 0.3;
  resolver::Engine engine(loop, config);
  resolver::UdpServer udp_server(server, engine, 53);
  core::UdpResolverClient resolver_client(client, {server.id(), 53});

  std::size_t fast = 0;
  std::size_t slow = 0;
  for (int i = 0; i < 200; ++i) {
    resolver_client.resolve(
        dns::Name::parse("q" + std::to_string(i) + ".example.com"),
        dns::RType::kA, [&](const core::ResolutionResult& r) {
          // RTT is 10ms; upstream misses add tens of ms on top.
          if (r.resolution_time() > simnet::ms(20)) {
            ++slow;
          } else {
            ++fast;
          }
        });
    loop.run();
  }
  EXPECT_EQ(engine.stats().cache_misses, slow);
  // Roughly half hit, half miss.
  EXPECT_GT(fast, 60u);
  EXPECT_GT(slow, 60u);
}

TEST_F(EngineModelTest, NonAQueriesGetEmptyNoError) {
  resolver::Engine engine(loop, {});
  resolver::UdpServer udp_server(server, engine, 53);
  core::UdpResolverClient resolver_client(client, {server.id(), 53});
  core::ResolutionResult observed;
  resolver_client.resolve(dns::Name::parse("x.example.com"),
                          dns::RType::kTXT,
                          [&](const core::ResolutionResult& r) {
                            observed = r;
                          });
  loop.run();
  ASSERT_TRUE(observed.success);
  EXPECT_EQ(observed.response.flags.rcode, dns::Rcode::kNoError);
  EXPECT_TRUE(observed.response.answers.empty());
}

TEST_F(EngineModelTest, EcsAndMultipleAnswersGrowResponses) {
  resolver::EngineConfig plain_config;
  resolver::EngineConfig rich_config;
  rich_config.answer_count = 4;
  rich_config.ecs_option = true;

  std::size_t plain_size = 0;
  std::size_t rich_size = 0;
  for (int rich = 0; rich < 2; ++rich) {
    resolver::Engine engine(loop, rich ? rich_config : plain_config);
    const auto query =
        dns::Message::make_query(1, dns::Name::parse("x.example.com"));
    engine.handle(query, [&](dns::Message response) {
      (rich ? rich_size : plain_size) = response.encode().size();
      if (rich) {
        EXPECT_EQ(response.answers.size(), 4u);
        ASSERT_NE(response.edns(), nullptr);
        const auto& opt = std::get<dns::OptRdata>(response.edns()->rdata);
        ASSERT_EQ(opt.options.size(), 1u);
        EXPECT_EQ(opt.options[0].code, 8u);  // CLIENT-SUBNET
      }
    });
    loop.run();
  }
  EXPECT_GT(rich_size, plain_size + 40);
}

// --- HTTP/2 CONTINUATION ------------------------------------------------------------

class ContinuationTest : public TwoHostFixture {};

TEST_F(ContinuationTest, GiantHeaderBlockSplitsAndReassembles) {
  std::unique_ptr<http2::Http2Connection> server_conn;
  std::vector<http2::HeaderField> seen;
  server.tcp_listen(443, [&](std::shared_ptr<simnet::TcpConnection> c) {
    server_conn = std::make_unique<http2::Http2Connection>(
        std::make_unique<simnet::TcpByteStream>(std::move(c)),
        http2::Http2Connection::Role::kServer);
    server_conn->set_request_handler(
        [&](const http2::H2Message& request,
            http2::Http2Connection::Responder respond) {
          seen = request.headers;
          http2::H2Message response;
          response.headers.push_back({":status", "200"});
          respond(std::move(response));
        });
  });

  http2::Http2Config config;
  config.max_frame_size = 256;  // force CONTINUATION frames
  http2::Http2Connection client_conn(
      std::make_unique<simnet::TcpByteStream>(
          client.tcp_connect({server.id(), 443})),
      http2::Http2Connection::Role::kClient, config);

  http2::H2Message request;
  request.headers = {{":method", "GET"},
                     {":scheme", "https"},
                     {":authority", "big.example"},
                     {":path", "/"},
                     // An incompressible 1.5 KB header value.
                     {"x-giant", std::string(1500, '~')}};
  bool answered = false;
  client_conn.request(std::move(request),
                      [&](const http2::H2Message&) { answered = true; });
  loop.run();
  EXPECT_TRUE(answered);
  ASSERT_EQ(seen.size(), 5u);
  EXPECT_EQ(seen[4].value.size(), 1500u);
}

// --- DoH GET with long names ---------------------------------------------------------

class LongNameTest : public TwoHostFixture {};

TEST_F(LongNameTest, GetWithMaximalNameRoundTrips) {
  resolver::Engine engine(loop, {});
  resolver::DohServerConfig server_config;
  server_config.tls.chain = tlssim::CertificateChain::cloudflare();
  resolver::DohServer doh_server(server, engine, server_config, 443);

  core::DohClientConfig config;
  config.server_name = "cloudflare-dns.com";
  config.method = core::DohMethod::kGet;
  core::DohClient resolver_client(client, {server.id(), 443}, config);

  // A name close to the 255-octet limit.
  std::string long_name;
  for (int i = 0; i < 11; ++i) {
    long_name += std::string(20, static_cast<char>('a' + i)) + ".";
  }
  long_name += "example.com";
  core::ResolutionResult observed;
  resolver_client.resolve(dns::Name::parse(long_name), dns::RType::kA,
                          [&](const core::ResolutionResult& r) {
                            observed = r;
                          });
  loop.run();
  ASSERT_TRUE(observed.success);
  EXPECT_EQ(observed.response.questions.at(0).qname,
            dns::Name::parse(long_name));
}

// --- 2018 survey snapshot -------------------------------------------------------------

TEST(Survey2018, SnapshotMatchesPaperSection2) {
  const auto& p2018 = survey::paper_providers_2018();
  const auto& p2019 = survey::paper_providers();
  ASSERT_EQ(p2018.size(), p2019.size());

  std::set<std::string> paths_2018;
  std::size_t tls13 = 0;
  for (const auto& p : p2018) {
    for (const auto& e : p.endpoints) paths_2018.insert(e.url_path);
    if (p.tls_versions.count(tlssim::TlsVersion::kTls13)) {
      ++tls13;
      EXPECT_TRUE(p.marker == "CF" || p.marker == "SD") << p.marker;
    }
  }
  EXPECT_EQ(paths_2018.size(), 6u);  // paper: six base paths in Oct 2018
  EXPECT_EQ(tls13, 2u);              // paper: only CF and SecureDNS
  // Google's wire-format service was still /experimental.
  for (const auto& p : p2018) {
    if (p.marker == "G2") {
      EXPECT_EQ(p.endpoints.at(0).url_path, "/experimental");
    }
  }
}

// --- web farm bandwidth ---------------------------------------------------------------

TEST(WebFarm, BandwidthBoundsTransferTime) {
  simnet::EventLoop loop;
  simnet::Network net(loop, 8);
  simnet::Host browser_host(net, "browser");

  browser::WebFarmConfig farm_config;
  farm_config.base_latency = simnet::ms(5);
  farm_config.latency_jitter = 0;
  farm_config.bandwidth_bps = 8e6;  // 1 MB/s
  browser::WebFarm farm(net, browser_host, farm_config);
  const auto addr = farm.origin_for(dns::Name::parse("big.example"));

  tlssim::ClientConfig tls_config;
  tls_config.sni = "big.example";
  tls_config.alpn = {"http/1.1"};
  auto tls = std::make_unique<tlssim::TlsConnection>(
      std::make_unique<simnet::TcpByteStream>(
          browser_host.tcp_connect(addr)),
      std::move(tls_config));
  http1::Http1Client http(std::move(tls));
  http1::Request request;
  request.method = "GET";
  request.target = browser::WebFarm::object_target(1000000);  // 1 MB
  request.headers.add("Host", "big.example");
  simnet::TimeUs done_at = 0;
  http.request(std::move(request), [&](const http1::Response& r) {
    EXPECT_EQ(r.body.size(), 1000000u);
    done_at = loop.now();
  });
  loop.run();
  // 1 MB at 1 MB/s cannot complete in under a second.
  EXPECT_GE(done_at, simnet::seconds(1));
  EXPECT_LT(done_at, simnet::seconds(5));
}

}  // namespace
}  // namespace dohperf
