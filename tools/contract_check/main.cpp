// contract_check — statically verifies that the observability contract in
// EXPERIMENTS.md matches what the code actually emits.
//
// Two inventories are extracted with detlint's lexer (no execution, no
// libclang):
//
//   * metric names: every string literal in src/ matching the documented
//     resolver-tier families (tier.* / cache.* / hedge.* / fairness.*).  A
//     literal ending in '.' that is concatenated with `+` (e.g.
//     "tier.requests." + transport) becomes the prefix pattern
//     "tier.requests.*".
//   * span names: the last string-literal argument of every `begin(...)`
//     call (covers `obs.begin("shed")` and `tracer->begin(parent, "retry")`).
//
// The doc side parses EXPERIMENTS.md: backtick chunks under
// "### Metric-name contract" (brace sets expanded, `<t>`/`<i>` placeholders
// become wildcards) and the fenced tree under "### Span taxonomy".
//
// Drift in either direction — emitted but undocumented, or documented but
// never emitted — is printed one line per name and fails the run (exit 1).
// Exit 2 on I/O or parse trouble.  CI runs this under the lint label, so a
// rename that forgets to update EXPERIMENTS.md breaks the build.
//
// Usage: contract_check [--root DIR]
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "engine.hpp"  // detlint::scannable_file
#include "lexer.hpp"

namespace fs = std::filesystem;

namespace {

using detlint::Token;
using detlint::TokenKind;

// The metric families owned by the resolver tier / cache / hedging /
// fairness / observability subsystems, plus the client-side transport
// counters — the contract this tool enforces.
const char* kFamilies[] = {"tier.",     "cache.", "hedge.",
                           "fairness.", "obs.",   "mem.",  "client."};

bool in_family(const std::string& name) {
  for (const char* f : kFamilies)
    if (name.rfind(f, 0) == 0) return true;
  return false;
}

bool metric_chars_only(const std::string& s, bool allow_star) {
  if (s.empty()) return false;
  for (char c : s) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '_' || c == '.' || (allow_star && c == '*');
    if (!ok) return false;
  }
  return true;
}

/// Glob match where '*' matches any (possibly empty) run of characters.
bool glob_match(const std::string& pattern, const std::string& name,
                std::size_t p = 0, std::size_t n = 0) {
  while (p < pattern.size() && pattern[p] != '*') {
    if (n >= name.size() || pattern[p] != name[n]) return false;
    ++p;
    ++n;
  }
  if (p == pattern.size()) return n == name.size();
  for (std::size_t skip = n; skip <= name.size(); ++skip)
    if (glob_match(pattern, name, p + 1, skip)) return true;
  return false;
}

bool read_file(const fs::path& p, std::string& out) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

// ---------------------------------------------------------------- code --

struct CodeInventory {
  std::set<std::string> metrics;          // exact names, family-filtered
  std::set<std::string> metric_prefixes;  // "tier.requests." style
  std::set<std::string> spans;
};

void scan_tokens(const std::vector<Token>& toks, CodeInventory& inv) {
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind == TokenKind::String && in_family(t.text)) {
      if (t.text.back() == '.') {
        // Concatenated dynamic suffix: "tier.requests." + transport, also
        // wrapped as std::string("tier.requests.") + transport.
        std::size_t j = i + 1;
        if (j < toks.size() && toks[j].kind == TokenKind::Punct &&
            toks[j].text == ")")
          ++j;
        const bool concat = j < toks.size() &&
                            toks[j].kind == TokenKind::Punct &&
                            toks[j].text == "+";
        if (concat && metric_chars_only(t.text, false)) {
          inv.metric_prefixes.insert(t.text);
        }
      } else if (metric_chars_only(t.text, false)) {
        inv.metrics.insert(t.text);
      }
      continue;
    }
    // Span names: last string argument of a begin(...) call.
    if (t.kind != TokenKind::Identifier || t.text != "begin") continue;
    if (i + 1 >= toks.size() || toks[i + 1].kind != TokenKind::Punct ||
        toks[i + 1].text != "(")
      continue;
    int depth = 0;
    std::string last;
    for (std::size_t j = i + 1; j < toks.size(); ++j) {
      if (toks[j].kind == TokenKind::Punct) {
        if (toks[j].text == "(") ++depth;
        if (toks[j].text == ")" && --depth == 0) break;
      } else if (toks[j].kind == TokenKind::String && depth == 1) {
        last = toks[j].text;
      }
    }
    if (!last.empty() && metric_chars_only(last, false)) {
      inv.spans.insert(last);
    }
  }
}

bool scan_src(const fs::path& src_dir, CodeInventory& inv) {
  std::vector<fs::path> files;
  std::error_code ec;
  for (fs::recursive_directory_iterator it(src_dir, ec), end; it != end;
       it.increment(ec)) {
    if (ec) {
      std::fprintf(stderr, "contract_check: walk error: %s\n",
                   ec.message().c_str());
      return false;
    }
    if (!it->is_regular_file(ec)) continue;
    if (detlint::scannable_file(it->path().generic_string()))
      files.push_back(it->path());
  }
  std::sort(files.begin(), files.end());
  for (const fs::path& file : files) {
    std::string source;
    if (!read_file(file, source)) {
      std::fprintf(stderr, "contract_check: unreadable: %s\n",
                   file.generic_string().c_str());
      return false;
    }
    scan_tokens(detlint::lex(source).tokens, inv);
  }
  return true;
}

// ----------------------------------------------------------------- doc --

struct DocInventory {
  std::set<std::string> metric_patterns;  // family-filtered; may contain '*'
  std::set<std::string> spans;
};

/// The section starting at `heading` up to the next "### " heading.
std::string doc_section(const std::string& doc, const std::string& heading,
                        bool& found) {
  const std::size_t at = doc.find(heading);
  found = at != std::string::npos;
  if (!found) return "";
  std::size_t end = doc.find("\n### ", at + heading.size());
  if (end == std::string::npos) end = doc.size();
  return doc.substr(at, end - at);
}

void expand_braces(const std::string& name, std::set<std::string>& out) {
  const std::size_t open = name.find('{');
  if (open == std::string::npos) {
    out.insert(name);
    return;
  }
  const std::size_t close = name.find('}', open);
  if (close == std::string::npos) return;  // malformed; drop
  const std::string head = name.substr(0, open);
  const std::string tail = name.substr(close + 1);
  std::stringstream alts(name.substr(open + 1, close - open - 1));
  std::string alt;
  while (std::getline(alts, alt, ','))
    expand_braces(head + alt + tail, out);
}

/// `<t>` / `<i>` placeholders and `.*` shorthand both become glob stars.
std::string to_pattern(std::string name) {
  for (std::size_t at = name.find('<'); at != std::string::npos;
       at = name.find('<')) {
    const std::size_t close = name.find('>', at);
    if (close == std::string::npos) return "";
    name.replace(at, close - at + 1, "*");
  }
  return name;
}

void parse_metric_contract(const std::string& section, DocInventory& inv) {
  // Backtick chunks may wrap across source lines; newlines inside a chunk
  // are insignificant.
  for (std::size_t i = 0; i < section.size(); ++i) {
    if (section[i] != '`') continue;
    const std::size_t close = section.find('`', i + 1);
    if (close == std::string::npos) break;
    std::string chunk;
    for (std::size_t j = i + 1; j < close; ++j) {
      const char c = section[j];
      if (c != '\n' && c != ' ') chunk.push_back(c);
    }
    i = close;
    const std::string pattern = to_pattern(chunk);
    if (pattern.empty()) continue;
    std::set<std::string> names;
    expand_braces(pattern, names);
    for (const std::string& n : names) {
      if (metric_chars_only(n, true) && in_family(n))
        inv.metric_patterns.insert(n);
    }
  }
}

void parse_span_taxonomy(const std::string& section, DocInventory& inv) {
  std::stringstream lines(section);
  std::string line;
  bool in_fence = false;
  while (std::getline(lines, line)) {
    if (line.rfind("```", 0) == 0) {
      in_fence = !in_fence;
      continue;
    }
    if (!in_fence) continue;
    // Strip the tree-drawing prefix (UTF-8 box characters, dashes, blanks)
    // down to the first [a-z_] run; that run must end at a word boundary.
    std::size_t start = 0;
    while (start < line.size() &&
           !((line[start] >= 'a' && line[start] <= 'z') ||
             line[start] == '_'))
      ++start;
    std::size_t end = start;
    while (end < line.size() &&
           ((line[end] >= 'a' && line[end] <= 'z') || line[end] == '_'))
      ++end;
    if (end == start) continue;
    if (end < line.size() && line[end] != ' ') continue;  // e.g. "foo)" / "x="
    inv.spans.insert(line.substr(start, end - start));
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "-h" || arg == "--help") {
      std::printf(
          "usage: contract_check [--root DIR]\n"
          "Diffs tier./cache./hedge./fairness./obs./client. metric names and\n"
          "span names\n"
          "emitted by src/ against the contract in EXPERIMENTS.md.\n");
      return 0;
    } else {
      std::fprintf(stderr, "contract_check: unknown argument %s\n",
                   arg.c_str());
      return 2;
    }
  }

  CodeInventory code;
  if (!scan_src(fs::path(root) / "src", code)) return 2;

  std::string doc;
  if (!read_file(fs::path(root) / "EXPERIMENTS.md", doc)) {
    std::fprintf(stderr, "contract_check: cannot read EXPERIMENTS.md\n");
    return 2;
  }
  DocInventory documented;
  bool have_metrics = false, have_spans = false;
  parse_metric_contract(
      doc_section(doc, "### Metric-name contract", have_metrics), documented);
  parse_span_taxonomy(doc_section(doc, "### Span taxonomy", have_spans),
                      documented);
  if (!have_metrics || !have_spans || documented.metric_patterns.empty() ||
      documented.spans.empty()) {
    std::fprintf(stderr,
                 "contract_check: EXPERIMENTS.md contract sections missing "
                 "or empty\n");
    return 2;
  }

  int drift = 0;
  const auto complain = [&](const char* what, const std::string& name) {
    std::printf("contract_check: %s: %s\n", what, name.c_str());
    ++drift;
  };

  // Code -> doc: everything emitted must be documented.
  for (const std::string& name : code.metrics) {
    bool ok = false;
    for (const std::string& p : documented.metric_patterns)
      if (glob_match(p, name)) {
        ok = true;
        break;
      }
    if (!ok) complain("emitted metric missing from EXPERIMENTS.md", name);
  }
  for (const std::string& prefix : code.metric_prefixes) {
    bool ok = false;
    for (const std::string& p : documented.metric_patterns)
      if (p.rfind(prefix, 0) == 0) {
        ok = true;
        break;
      }
    if (!ok)
      complain("emitted metric prefix missing from EXPERIMENTS.md",
               prefix + "*");
  }
  for (const std::string& span : code.spans) {
    if (!documented.spans.count(span))
      complain("emitted span missing from span taxonomy", span);
  }

  // Doc -> code: everything documented must still be emitted.
  for (const std::string& p : documented.metric_patterns) {
    bool ok = false;
    for (const std::string& name : code.metrics)
      if (glob_match(p, name)) {
        ok = true;
        break;
      }
    if (!ok) {
      for (const std::string& prefix : code.metric_prefixes)
        if (p.rfind(prefix, 0) == 0) {
          ok = true;
          break;
        }
    }
    if (!ok) complain("documented metric never emitted by src/", p);
  }
  for (const std::string& span : documented.spans) {
    if (!code.spans.count(span))
      complain("documented span never begun by src/", span);
  }

  if (drift == 0) {
    std::printf(
        "contract_check: %zu metrics (%zu dynamic prefixes) and %zu spans "
        "match EXPERIMENTS.md\n",
        code.metrics.size(), code.metric_prefixes.size(), code.spans.size());
    return 0;
  }
  std::printf("contract_check: %d drift finding(s)\n", drift);
  return 1;
}
