// perf_compare — diff two dohperf-bench-v1 JSON reports.
//
// Usage:
//   perf_compare BASELINE.json CANDIDATE.json \
//       [--require=scenarios.event_loop.schedule_fire_events_per_sec>=2.0] \
//       [--require-abs-max=scenarios.tier.sampled64.overhead_ratio<=1.02] \
//       [--warn=PATH>=RATIO] [--warn-abs=PATH>=VALUE] ...
//
// Prints every numeric leaf the two reports share (dotted path, baseline,
// candidate, candidate/baseline ratio) plus any leaves present on only one
// side. Each --require asserts a minimum candidate/baseline ratio at one
// dotted path; the tool exits 1 if any gate fails (or the files are not
// bench reports), 0 otherwise. CI's perf-smoke job uses the gates to catch
// large regressions while tolerating machine noise.
//
// --warn is the informational twin of --require: same PATH>=RATIO syntax,
// prints GATE WARN instead of GATE FAIL, never affects the exit code.
// --warn-abs checks the *candidate's absolute value* at PATH (no baseline
// needed — the path may not exist in older baselines), also informational.
// Both exist for metrics that are machine-dependent (jobs-scaling speedups
// on CI runners with unknown core counts) but still worth eyeballing.
//
// --require-abs-max=PATH<=VALUE is the hard ceiling twin: the candidate's
// absolute value at PATH must not exceed VALUE (exit 1 otherwise). CI uses
// it to pin the obs_overhead sampling tax independent of any baseline.
// --require-abs-min=PATH>=VALUE is the hard floor: the candidate's absolute
// value at PATH must reach VALUE (exit 1 otherwise). CI uses it for the
// shard-scaling gates (speedup/efficiency floors and the mem.* accounting
// mirror), which are absolute properties of the candidate, not ratios.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "dns/json_value.hpp"

namespace {

using dohperf::dns::JsonValue;

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out = buffer.str();
  return true;
}

/// Collect `path -> value` for every numeric leaf under `node`.
void flatten(const JsonValue& node, const std::string& path,
             std::map<std::string, double>& out) {
  if (node.is_number()) {
    out[path] = node.as_double();
    return;
  }
  if (node.is_object()) {
    for (const auto& [key, child] : node.as_object()) {
      flatten(child, path.empty() ? key : path + "." + key, out);
    }
  } else if (node.is_array()) {
    const auto& items = node.as_array();
    for (std::size_t i = 0; i < items.size(); ++i) {
      flatten(items[i], path + "[" + std::to_string(i) + "]", out);
    }
  }
}

struct Gate {
  std::string path;
  double min_ratio = 0.0;
  bool warn_only = false;      // --warn / --warn-abs: report, never fail
  bool absolute = false;       // --warn-abs: compare the candidate value
  bool max_bound = false;      // --require-abs-max: candidate value <= bound
  bool min_bound = false;      // --require-abs-min: candidate value >= bound
};

bool parse_gate(const std::string& spec, Gate& gate) {
  const char* op = gate.max_bound ? "<=" : ">=";
  const auto pos = spec.find(op);
  if (pos == std::string::npos || pos == 0) return false;
  gate.path = spec.substr(0, pos);
  char* end = nullptr;
  gate.min_ratio = std::strtod(spec.c_str() + pos + 2, &end);
  return end != nullptr && *end == '\0';
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> files;
  std::vector<Gate> gates;
  const std::string require_prefix = "--require=";
  const std::string warn_prefix = "--warn=";
  const std::string warn_abs_prefix = "--warn-abs=";
  const std::string abs_max_prefix = "--require-abs-max=";
  const std::string abs_min_prefix = "--require-abs-min=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string spec;
    Gate gate;
    if (arg.rfind(require_prefix, 0) == 0) {
      spec = arg.substr(require_prefix.size());
    } else if (arg.rfind(abs_max_prefix, 0) == 0) {
      spec = arg.substr(abs_max_prefix.size());
      gate.absolute = true;
      gate.max_bound = true;
    } else if (arg.rfind(abs_min_prefix, 0) == 0) {
      spec = arg.substr(abs_min_prefix.size());
      gate.absolute = true;
      gate.min_bound = true;
    } else if (arg.rfind(warn_prefix, 0) == 0) {
      spec = arg.substr(warn_prefix.size());
      gate.warn_only = true;
    } else if (arg.rfind(warn_abs_prefix, 0) == 0) {
      spec = arg.substr(warn_abs_prefix.size());
      gate.warn_only = true;
      gate.absolute = true;
    } else {
      files.push_back(arg);
      continue;
    }
    if (!parse_gate(spec, gate)) {
      std::fprintf(stderr,
                   "perf_compare: bad gate %s (want PATH%sTHRESHOLD)\n",
                   arg.c_str(), gate.max_bound ? "<=" : ">=");
      return 1;
    }
    gates.push_back(std::move(gate));
  }
  if (files.size() != 2) {
    std::fprintf(stderr,
                 "usage: perf_compare BASELINE.json CANDIDATE.json "
                 "[--require=PATH>=RATIO]...\n");
    return 1;
  }

  JsonValue docs[2];
  for (int i = 0; i < 2; ++i) {
    std::string text;
    if (!read_file(files[i], text)) {
      std::fprintf(stderr, "perf_compare: cannot read %s\n",
                   files[i].c_str());
      return 1;
    }
    try {
      docs[i] = JsonValue::parse(text);
    } catch (const dohperf::dns::JsonError& e) {
      std::fprintf(stderr, "perf_compare: %s: %s\n", files[i].c_str(),
                   e.what());
      return 1;
    }
    if (!docs[i].is_object() || !docs[i].contains("schema") ||
        docs[i].at("schema").as_string() != "dohperf-bench-v1") {
      std::fprintf(stderr, "perf_compare: %s is not a dohperf-bench-v1 report\n",
                   files[i].c_str());
      return 1;
    }
  }
  if (docs[0].at("bench").as_string() != docs[1].at("bench").as_string()) {
    std::fprintf(stderr, "perf_compare: different benches: %s vs %s\n",
                 docs[0].at("bench").as_string().c_str(),
                 docs[1].at("bench").as_string().c_str());
    return 1;
  }

  std::map<std::string, double> base, cand;
  if (docs[0].contains("scenarios")) {
    flatten(docs[0].at("scenarios"), "scenarios", base);
  }
  if (docs[1].contains("scenarios")) {
    flatten(docs[1].at("scenarios"), "scenarios", cand);
  }

  std::printf("%-64s %14s %14s %8s\n", "path", "baseline", "candidate",
              "ratio");
  std::map<std::string, double> ratios;
  for (const auto& [path, b] : base) {
    const auto it = cand.find(path);
    if (it == cand.end()) {
      std::printf("%-64s %14.6g %14s %8s\n", path.c_str(), b, "-", "gone");
      continue;
    }
    if (b == 0.0) {
      std::printf("%-64s %14.6g %14.6g %8s\n", path.c_str(), b, it->second,
                  it->second == 0.0 ? "=" : "n/a");
      if (it->second == 0.0) ratios[path] = 1.0;
      continue;
    }
    const double ratio = it->second / b;
    ratios[path] = ratio;
    std::printf("%-64s %14.6g %14.6g %8.3f\n", path.c_str(), b, it->second,
                ratio);
  }
  for (const auto& [path, c] : cand) {
    if (base.find(path) == base.end()) {
      std::printf("%-64s %14s %14.6g %8s\n", path.c_str(), "-", c, "new");
    }
  }

  bool ok = true;
  for (const auto& gate : gates) {
    const char* miss_label = gate.warn_only ? "WARN" : "FAIL";
    if (gate.absolute) {
      const auto it = cand.find(gate.path);
      if (it == cand.end()) {
        std::printf("GATE %s %s: path missing from candidate report\n",
                    miss_label, gate.path.c_str());
        ok = ok && gate.warn_only;
        continue;
      }
      if (gate.max_bound) {
        const bool pass = it->second <= gate.min_ratio;
        std::printf("GATE %s %s: value %.3f (need <= %.3f)\n",
                    pass ? "PASS" : "FAIL", gate.path.c_str(), it->second,
                    gate.min_ratio);
        ok = ok && pass;
        continue;
      }
      const bool pass = it->second >= gate.min_ratio;
      if (gate.min_bound) {
        std::printf("GATE %s %s: value %.3f (need >= %.3f)\n",
                    pass ? "PASS" : "FAIL", gate.path.c_str(), it->second,
                    gate.min_ratio);
        ok = ok && pass;
      } else {
        std::printf("GATE %s %s: value %.3f (want >= %.3f, informational)\n",
                    pass ? "PASS" : "WARN", gate.path.c_str(), it->second,
                    gate.min_ratio);
      }
      continue;
    }
    const auto it = ratios.find(gate.path);
    if (it == ratios.end()) {
      std::printf("GATE %s %s: path missing from one report\n", miss_label,
                  gate.path.c_str());
      ok = ok && gate.warn_only;
      continue;
    }
    const bool pass = it->second >= gate.min_ratio;
    if (gate.warn_only) {
      std::printf("GATE %s %s: ratio %.3f (want >= %.3f, informational)\n",
                  pass ? "PASS" : "WARN", gate.path.c_str(), it->second,
                  gate.min_ratio);
    } else {
      std::printf("GATE %s %s: ratio %.3f (need >= %.3f)\n",
                  pass ? "PASS" : "FAIL", gate.path.c_str(), it->second,
                  gate.min_ratio);
      ok = ok && pass;
    }
  }
  return ok ? 0 : 1;
}
