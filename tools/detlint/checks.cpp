#include "checks.hpp"

#include <algorithm>
#include <cstddef>
#include <optional>
#include <set>
#include <string_view>

namespace detlint {
namespace {

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool is_header_path(std::string_view path) {
  return ends_with(path, ".hpp") || ends_with(path, ".h") ||
         ends_with(path, ".hxx");
}

bool is_rng_exempt(std::string_view path) {
  return path.find("src/stats/rng.") != std::string_view::npos;
}

// Keywords that can directly precede a call expression.  Used to tell a
// call `return time(nullptr)` from a declaration `TimeUs time(TimeUs v)`:
// if the token before `time(` is a non-keyword identifier it is almost
// certainly a return type, i.e. a declaration of an unrelated function.
const std::set<std::string_view> kExprKeywords = {
    "return",    "co_return", "co_yield", "co_await", "throw",  "case",
    "else",      "do",        "and",      "or",       "not",    "if",
    "while",     "for",       "switch",   "sizeof",   "new",    "delete",
    "constexpr", "goto",      "default",
};

struct Checker {
  const std::string& path;
  const LexedFile& lexed;
  std::vector<Diagnostic> diags;

  const std::vector<Token>& toks() const { return lexed.tokens; }

  void report(int line, Code code, std::string message) {
    diags.push_back({path, line, code, std::move(message)});
  }

  bool is_ident(std::size_t i, std::string_view text) const {
    return i < toks().size() && toks()[i].kind == TokenKind::Identifier &&
           toks()[i].text == text;
  }

  bool is_punct(std::size_t i, char c) const {
    return i < toks().size() && toks()[i].kind == TokenKind::Punct &&
           toks()[i].text[0] == c;
  }

  /// True when tokens[i] is reached via `std::` (or `::`), e.g. the
  /// `mutex` of `std::mutex`.
  bool std_qualified(std::size_t i) const {
    if (i < 3) return false;
    return is_punct(i - 1, ':') && is_punct(i - 2, ':') &&
           is_ident(i - 3, "std");
  }

  bool member_access(std::size_t i) const {
    if (i == 0) return false;
    if (is_punct(i - 1, '.')) return true;
    return i >= 2 && is_punct(i - 1, '>') && is_punct(i - 2, '-');
  }

  /// True when `tokens[i](` looks like a call of a known global function
  /// rather than a member call or a declaration of a same-named function.
  bool is_global_call(std::size_t i) const {
    if (!is_punct(i + 1, '(')) return false;
    if (member_access(i)) return false;
    if (i == 0) return true;
    const Token& prev = toks()[i - 1];
    if (prev.kind == TokenKind::Identifier)
      return kExprKeywords.count(prev.text) > 0;
    // `::time(` and `std::time(` are calls; any other punctuation
    // (`=`, `(`, `,`, `;`, `{`, operators...) means expression context.
    return true;
  }

  // ---- DET001: wall-clock / real time sources -------------------------

  void det001() {
    static const std::set<std::string_view> kClockIdents = {
        "system_clock",  "steady_clock", "high_resolution_clock",
        "gettimeofday",  "clock_gettime", "timespec_get",
        "localtime",     "gmtime",        "mktime",
        "utc_clock",     "file_clock",
    };
    for (std::size_t i = 0; i < toks().size(); ++i) {
      const Token& t = toks()[i];
      if (t.kind != TokenKind::Identifier) continue;
      if (kClockIdents.count(t.text)) {
        report(t.line, Code::DET001,
               "'" + t.text +
                   "' reads real time; experiments must use the virtual "
                   "clock (simnet::TimeUs / EventLoop::now)");
      } else if ((t.text == "time" || t.text == "clock") &&
                 is_global_call(i)) {
        report(t.line, Code::DET001,
               "call to '" + t.text +
                   "()' reads real time; use the virtual clock "
                   "(simnet::TimeUs / EventLoop::now)");
      }
    }
  }

  // ---- DET002: unseeded / global randomness ---------------------------

  void det002() {
    if (is_rng_exempt(path)) return;
    static const std::set<std::string_view> kEngines = {
        "mt19937",  "mt19937_64", "minstd_rand", "minstd_rand0",
        "ranlux24", "ranlux48",   "knuth_b",
    };
    for (std::size_t i = 0; i < toks().size(); ++i) {
      const Token& t = toks()[i];
      if (t.kind != TokenKind::Identifier) continue;
      if (t.text == "random_device") {
        report(t.line, Code::DET002,
               "'std::random_device' is nondeterministic by design; seed "
               "from the experiment config instead");
      } else if (t.text == "default_random_engine") {
        report(t.line, Code::DET002,
               "'std::default_random_engine' is implementation-defined and "
               "not reproducible across standard libraries; use "
               "stats::SplitMix64");
      } else if ((t.text == "rand" || t.text == "srand") &&
                 is_global_call(i)) {
        report(t.line, Code::DET002,
               "'" + t.text +
                   "()' uses hidden global RNG state; use stats::SplitMix64 "
                   "seeded from the experiment config");
      } else if (kEngines.count(t.text) && default_constructed_after(i)) {
        report(t.line, Code::DET002,
               "'" + t.text +
                   "' default-constructed (unseeded); pass an explicit seed "
                   "or use stats::SplitMix64");
      }
    }
  }

  /// For an engine type token at `i`, detect `std::mt19937_64 g;`,
  /// `... g{}` or `... g()` — i.e. a declaration with no seed argument.
  bool default_constructed_after(std::size_t i) const {
    std::size_t j = i + 1;
    if (!(j < toks().size() && toks()[j].kind == TokenKind::Identifier))
      return false;  // type mention (template arg, using-alias, ...) only
    ++j;
    if (is_punct(j, ';')) return true;
    if (is_punct(j, '{') && is_punct(j + 1, '}')) return true;
    if (is_punct(j, '(') && is_punct(j + 1, ')')) return true;
    return false;
  }

  // ---- DET003: unordered containers -----------------------------------

  void det003() {
    static const std::set<std::string_view> kUnordered = {
        "unordered_map", "unordered_set", "unordered_multimap",
        "unordered_multiset", "unordered_flat_map", "unordered_flat_set",
    };
    for (const Token& t : toks()) {
      if (t.kind == TokenKind::Identifier && kUnordered.count(t.text)) {
        report(t.line, Code::DET003,
               "'" + t.text +
                   "' iterates in unspecified order, which leaks into "
                   "stats/traces; use std::map/std::set or justify with "
                   "a detlint allow pragma");
      }
    }
  }

  // ---- DET004: real concurrency / blocking ----------------------------

  void det004() {
    static const std::set<std::string_view> kStdOnly = {
        "thread",       "jthread",        "mutex",
        "recursive_mutex", "timed_mutex", "shared_mutex",
        "condition_variable", "condition_variable_any",
        "async",        "future",         "promise",
        "counting_semaphore", "binary_semaphore", "barrier", "latch",
    };
    static const std::set<std::string_view> kAlways = {
        "this_thread", "pthread_create", "pthread_mutex_lock",
        "sleep_for",   "sleep_until",
    };
    for (std::size_t i = 0; i < toks().size(); ++i) {
      const Token& t = toks()[i];
      if (t.kind != TokenKind::Identifier) continue;
      if (kStdOnly.count(t.text) && std_qualified(i)) {
        report(t.line, Code::DET004,
               "'std::" + t.text +
                   "' is a real concurrency/blocking primitive; the "
                   "simulator is single-threaded over virtual time");
      } else if (kAlways.count(t.text)) {
        report(t.line, Code::DET004,
               "'" + t.text +
                   "' blocks on real time; schedule an event on the "
                   "virtual clock instead");
      } else if ((t.text == "sleep" || t.text == "usleep" ||
                  t.text == "nanosleep") &&
                 is_global_call(i)) {
        report(t.line, Code::DET004,
               "'" + t.text +
                   "()' blocks the process; schedule an event on the "
                   "virtual clock instead");
      }
    }
  }

  // ---- DET005: pointer identity in hashes / logs / stats --------------

  void det005() {
    for (std::size_t i = 0; i < toks().size(); ++i) {
      const Token& t = toks()[i];
      if (t.kind == TokenKind::String) {
        // detlint: allow(DET005) the pattern being searched for, not a use
        if (t.text.find("%p") != std::string::npos) {
          report(t.line, Code::DET005,
                 // detlint: allow(DET005) diagnostic text, not a format use
                 "format string prints a pointer value (%p); pointer "
                 "identity differs across runs (ASLR) — print a stable id "
                 "instead");
        }
        continue;
      }
      if (t.kind != TokenKind::Identifier) continue;
      if (t.text == "hash" && is_punct(i + 1, '<') &&
          template_args_contain_pointer(i + 1)) {
        report(t.line, Code::DET005,
               "std::hash over a pointer type hashes the address, which "
               "differs across runs; hash a stable id instead");
      } else if ((t.text == "reinterpret_cast" || t.text == "bit_cast") &&
                 is_punct(i + 1, '<') &&
                 template_args_contain(i + 1, {"uintptr_t", "intptr_t"})) {
        report(t.line, Code::DET005,
               "casting a pointer to an integer exposes its address to "
               "arithmetic/output; use a stable id instead");
      } else if (t.text == "void" && cast_to_void_pointer(i)) {
        report(t.line, Code::DET005,
               "cast to void* is the pointer-printing idiom; pointer "
               "identity differs across runs — print a stable id instead");
      }
    }
  }

  /// Scans a balanced `<...>` starting at `open` (which must be '<') and
  /// reports whether a '*' occurs at any depth.  Bounded so a stray '<'
  /// comparison cannot send us across the file.
  bool template_args_contain_pointer(std::size_t open) const {
    int depth = 0;
    for (std::size_t j = open; j < toks().size() && j < open + 40; ++j) {
      if (is_punct(j, '<')) ++depth;
      else if (is_punct(j, '>')) {
        if (--depth == 0) return false;
      } else if (is_punct(j, '*')) {
        return true;
      } else if (is_punct(j, ';') || is_punct(j, '{')) {
        return false;  // definitely not a template argument list
      }
    }
    return false;
  }

  bool template_args_contain(std::size_t open,
                             std::initializer_list<std::string_view> names)
      const {
    int depth = 0;
    for (std::size_t j = open; j < toks().size() && j < open + 40; ++j) {
      if (is_punct(j, '<')) ++depth;
      else if (is_punct(j, '>')) {
        if (--depth == 0) return false;
      } else if (toks()[j].kind == TokenKind::Identifier) {
        for (std::string_view n : names)
          if (toks()[j].text == n) return true;
      } else if (is_punct(j, ';') || is_punct(j, '{')) {
        return false;
      }
    }
    return false;
  }

  /// Matches `static_cast<[const] void*>` and the C casts `(void*)`,
  /// `(const void*)` with `void` at index i.
  bool cast_to_void_pointer(std::size_t i) const {
    if (!is_punct(i + 1, '*')) return false;
    std::size_t before = i;
    if (i >= 1 && is_ident(i - 1, "const")) before = i - 1;
    if (before == 0) return false;
    // static_cast< / reinterpret_cast< path
    if (is_punct(before - 1, '<') && before >= 2 &&
        (is_ident(before - 2, "static_cast") ||
         is_ident(before - 2, "reinterpret_cast")) &&
        is_punct(i + 2, '>'))
      return true;
    // C-style `(void*)expr` — require the ')' right after '*' so that
    // declarations like `f(void* p)` don't match.
    if (is_punct(before - 1, '(') && is_punct(i + 2, ')') &&
        !is_punct(i + 3, ';'))
      return true;
    return false;
  }

  // ---- HYG001: #pragma once -------------------------------------------

  void hyg001() {
    if (!is_header_path(path)) return;
    for (const Directive& d : lexed.directives) {
      std::string_view text = d.text;
      if (text.substr(0, 6) == "pragma" &&
          text.find("once") != std::string_view::npos)
        return;
    }
    report(1, Code::HYG001,
           "header is missing '#pragma once' (include guards are not used "
           "in this repo)");
  }

  // ---- HYG002: raw owning new / delete --------------------------------

  void hyg002() {
    for (std::size_t i = 0; i < toks().size(); ++i) {
      const Token& t = toks()[i];
      if (t.kind != TokenKind::Identifier) continue;
      if (i > 0 && is_ident(i - 1, "operator")) continue;  // operator new
      if (t.text == "new") {
        report(t.line, Code::HYG002,
               "raw 'new'; use std::make_unique/std::make_shared or a "
               "container");
      } else if (t.text == "delete") {
        // `= delete` (deleted function) and `= delete;` are fine.
        if (i > 0 && is_punct(i - 1, '=')) continue;
        report(t.line, Code::HYG002,
               "raw 'delete'; owning raw pointers are banned — use "
               "std::unique_ptr");
      }
    }
  }

  // ---- HYG003: float arithmetic ---------------------------------------

  void hyg003() {
    for (std::size_t i = 0; i < toks().size(); ++i) {
      const Token& t = toks()[i];
      if (t.kind == TokenKind::Identifier && t.text == "float") {
        if (i > 0 && is_ident(i - 1, "operator")) continue;
        report(t.line, Code::HYG003,
               "'float' in accounting/simulation code; byte and packet "
               "counts are integers (the paper's Figs 3-5), analysis uses "
               "double");
      } else if (t.kind == TokenKind::Number && is_float_literal(t.text)) {
        report(t.line, Code::HYG003,
               "float literal '" + t.text +
                   "'; use a double literal (no f suffix) or an integer");
      }
    }
  }

  static bool is_float_literal(const std::string& text) {
    if (text.size() < 2) return false;
    if (text.size() > 1 && (text[0] == '0') &&
        (text[1] == 'x' || text[1] == 'X'))
      return false;  // hex: trailing F is a digit
    char last = text.back();
    if (last != 'f' && last != 'F') return false;
    return text.find('.') != std::string::npos ||
           text.find('e') != std::string::npos ||
           text.find('E') != std::string::npos;
  }

};

}  // namespace

void apply_allow_pragmas(std::vector<Diagnostic>& diags,
                         const std::vector<Comment>& comments) {
  struct Allow {
    Code code;
    int first_line;
    int last_line;  // inclusive; pragma also covers last_line + 1
    std::string reason;
  };
  std::vector<Allow> allows;
  for (const Comment& c : comments) {
    std::string_view text = c.text;
    std::size_t at = text.find("detlint:");
    if (at == std::string_view::npos) continue;
    std::size_t open = text.find("allow(", at);
    if (open == std::string_view::npos) continue;
    std::size_t close = text.find(')', open);
    if (close == std::string_view::npos) continue;
    std::string_view name = text.substr(open + 6, close - (open + 6));
    Code code;
    if (!parse_code(name, code)) continue;
    std::string_view reason = text.substr(close + 1);
    while (!reason.empty() &&
           (reason.front() == ' ' || reason.front() == '-'))
      reason.remove_prefix(1);
    while (!reason.empty() && (reason.back() == ' ' || reason.back() == '\r'))
      reason.remove_suffix(1);
    if (reason.empty()) continue;  // justification is mandatory
    allows.push_back({code, c.first_line, c.last_line, std::string(reason)});
  }
  if (allows.empty()) return;
  for (Diagnostic& d : diags) {
    for (const Allow& a : allows) {
      if (d.code != a.code) continue;
      if (d.line >= a.first_line && d.line <= a.last_line + 1) {
        d.suppressed = true;
        d.suppress_reason = a.reason;
        break;
      }
    }
  }
}

std::vector<Diagnostic> run_checks(const std::string& path,
                                   const LexedFile& lexed) {
  Checker c{path, lexed, {}};
  c.det001();
  c.det002();
  c.det003();
  c.det004();
  c.det005();
  c.hyg001();
  c.hyg002();
  c.hyg003();
  apply_allow_pragmas(c.diags, lexed.comments);
  std::sort(c.diags.begin(), c.diags.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              if (a.line != b.line) return a.line < b.line;
              return code_name(a.code) < code_name(b.code);
            });
  return std::move(c.diags);
}

}  // namespace detlint
