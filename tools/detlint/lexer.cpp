#include "lexer.hpp"

#include <cctype>

namespace detlint {
namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) {}

  LexedFile run() {
    while (pos_ < src_.size()) {
      char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
        at_line_start_ = true;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
        continue;
      }
      if (c == '/' && peek(1) == '/') {
        line_comment();
        continue;
      }
      if (c == '/' && peek(1) == '*') {
        block_comment();
        continue;
      }
      if (c == '#' && at_line_start_) {
        directive();
        continue;
      }
      at_line_start_ = false;
      if (is_ident_start(c)) {
        identifier_or_prefixed_literal();
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
        number();
        continue;
      }
      if (c == '"') {
        string_literal(/*raw=*/false);
        continue;
      }
      if (c == '\'') {
        char_literal();
        continue;
      }
      out_.tokens.push_back({TokenKind::Punct, std::string(1, c), line_});
      ++pos_;
    }
    return std::move(out_);
  }

 private:
  char peek(std::size_t ahead) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  void line_comment() {
    int start = line_;
    std::size_t begin = pos_ + 2;
    while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
    out_.comments.push_back(
        {std::string(src_.substr(begin, pos_ - begin)), start, start});
  }

  void block_comment() {
    int start = line_;
    std::size_t begin = pos_ + 2;
    pos_ += 2;
    while (pos_ < src_.size() && !(src_[pos_] == '*' && peek(1) == '/')) {
      if (src_[pos_] == '\n') ++line_;
      ++pos_;
    }
    std::size_t end = pos_;
    if (pos_ < src_.size()) pos_ += 2;  // consume "*/"
    out_.comments.push_back(
        {std::string(src_.substr(begin, end - begin)), start, line_});
  }

  // A directive runs to end of line, honouring backslash continuations.
  // Comments inside directives are rare enough to ignore for our rules.
  void directive() {
    int start = line_;
    ++pos_;  // consume '#'
    std::string text;
    while (pos_ < src_.size()) {
      char c = src_[pos_];
      if (c == '\\' && peek(1) == '\n') {
        pos_ += 2;
        ++line_;
        text.push_back(' ');
        continue;
      }
      if (c == '\n') break;
      text.push_back(c);
      ++pos_;
    }
    // Trim leading whitespace between '#' and the directive name.
    std::size_t i = 0;
    while (i < text.size() &&
           std::isspace(static_cast<unsigned char>(text[i])))
      ++i;
    out_.directives.push_back({text.substr(i), start});
    at_line_start_ = false;
  }

  void identifier_or_prefixed_literal() {
    std::size_t begin = pos_;
    while (pos_ < src_.size() && is_ident_char(src_[pos_])) ++pos_;
    std::string_view word = src_.substr(begin, pos_ - begin);
    // String-literal prefixes: R"(..)", u8"..", L"..", uR"(..)" etc.
    if (pos_ < src_.size() && src_[pos_] == '"' &&
        (word == "R" || word == "u8" || word == "u" || word == "U" ||
         word == "L" || word == "u8R" || word == "uR" || word == "UR" ||
         word == "LR")) {
      string_literal(word.back() == 'R');
      return;
    }
    out_.tokens.push_back({TokenKind::Identifier, std::string(word), line_});
  }

  void number() {
    std::size_t begin = pos_;
    // Consume the full pp-number: digits, dots, exponent signs, suffixes,
    // and digit separators.  This is broader than a real C++ literal but
    // never under-consumes.
    while (pos_ < src_.size()) {
      char c = src_[pos_];
      if (is_ident_char(c) || c == '.' || c == '\'') {
        if ((c == 'e' || c == 'E' || c == 'p' || c == 'P') &&
            (peek(1) == '+' || peek(1) == '-')) {
          pos_ += 2;
          continue;
        }
        ++pos_;
        continue;
      }
      break;
    }
    out_.tokens.push_back(
        {TokenKind::Number, std::string(src_.substr(begin, pos_ - begin)),
         line_});
  }

  void string_literal(bool raw) {
    int start = line_;
    ++pos_;  // consume '"'
    std::string contents;
    if (raw) {
      // R"delim( ... )delim"
      std::string delim;
      while (pos_ < src_.size() && src_[pos_] != '(') {
        delim.push_back(src_[pos_]);
        ++pos_;
      }
      if (pos_ < src_.size()) ++pos_;  // consume '('
      std::string closer = ")" + delim + "\"";
      std::size_t end = src_.find(closer, pos_);
      if (end == std::string_view::npos) end = src_.size();
      for (std::size_t i = pos_; i < end; ++i)
        if (src_[i] == '\n') ++line_;
      contents = std::string(src_.substr(pos_, end - pos_));
      pos_ = end == src_.size() ? end : end + closer.size();
    } else {
      while (pos_ < src_.size() && src_[pos_] != '"') {
        if (src_[pos_] == '\\' && pos_ + 1 < src_.size()) {
          contents.push_back(src_[pos_]);
          contents.push_back(src_[pos_ + 1]);
          pos_ += 2;
          continue;
        }
        if (src_[pos_] == '\n') {
          ++line_;  // unterminated; keep line count honest
          break;
        }
        contents.push_back(src_[pos_]);
        ++pos_;
      }
      if (pos_ < src_.size() && src_[pos_] == '"') ++pos_;
    }
    out_.tokens.push_back({TokenKind::String, std::move(contents), start});
  }

  void char_literal() {
    int start = line_;
    ++pos_;  // consume '\''
    std::string contents;
    while (pos_ < src_.size() && src_[pos_] != '\'') {
      if (src_[pos_] == '\\' && pos_ + 1 < src_.size()) {
        contents.push_back(src_[pos_]);
        contents.push_back(src_[pos_ + 1]);
        pos_ += 2;
        continue;
      }
      if (src_[pos_] == '\n') break;  // stray quote, e.g. in a macro — bail
      contents.push_back(src_[pos_]);
      ++pos_;
    }
    if (pos_ < src_.size() && src_[pos_] == '\'') ++pos_;
    out_.tokens.push_back({TokenKind::CharLit, std::move(contents), start});
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  bool at_line_start_ = true;
  LexedFile out_;
};

}  // namespace

LexedFile lex(std::string_view source) { return Lexer(source).run(); }

}  // namespace detlint
