// Diagnostic codes enforced by detlint.
//
// DET* codes guard the repo's core scientific invariant: every experiment
// (the §3 transport comparison, the §4 overhead accounting, the chaos
// matrix) is a pure function of its seed, byte-identical across runs.
// HYG* codes are hygiene rules that keep the codebase uniform enough for
// the DET* rules to stay checkable.
// CONC* codes guard the parallel posture: shard functors handed to
// bench::run_sharded (and everything they reach) must share no mutable
// state, so `--jobs N` can only ever change wall-clock, never results.
#pragma once

#include <array>
#include <string>
#include <string_view>

namespace detlint {

enum class Code {
  DET001,   // wall-clock / real time source
  DET002,   // unseeded or global randomness
  DET003,   // unordered associative container
  DET004,   // real concurrency / blocking primitive
  DET005,   // pointer identity flowing into hashes, logs, or stats
  HYG001,   // header missing #pragma once
  HYG002,   // raw owning new / delete
  HYG003,   // float arithmetic in byte/packet accounting
  CONC001,  // mutable static state reached from parallel code
  CONC002,  // shard lambda writes through an escaping capture
  CONC003,  // per-shard result slot without alignas(64) (false sharing)
  CONC004,  // shared RNG/Registry/Tracer object used across shards
  CONC005,  // synchronization primitive inside parallel-reachable sim code
  CONC006,  // global-heap allocation inside a `// detlint: hot-loop` body
};

inline constexpr std::array<Code, 14> kAllCodes = {
    Code::DET001,  Code::DET002,  Code::DET003,  Code::DET004,
    Code::DET005,  Code::HYG001,  Code::HYG002,  Code::HYG003,
    Code::CONC001, Code::CONC002, Code::CONC003, Code::CONC004,
    Code::CONC005, Code::CONC006,
};

std::string_view code_name(Code code);
std::string_view code_summary(Code code);

/// Parses "DET001" etc.  Returns false if the name is unknown.
bool parse_code(std::string_view name, Code& out);

struct Diagnostic {
  std::string file;  // path as scanned (relative to the scan root)
  int line;
  Code code;
  std::string message;
  bool suppressed = false;        // by a justified allow-pragma
  bool baselined = false;         // by a --baseline entry
  std::string suppress_reason{};  // pragma justification, if any
};

/// "file:line: CODE message" — the grep/compiler-friendly format.
std::string format_diagnostic(const Diagnostic& d);

}  // namespace detlint
