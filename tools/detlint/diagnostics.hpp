// Diagnostic codes enforced by detlint.
//
// DET* codes guard the repo's core scientific invariant: every experiment
// (the §3 transport comparison, the §4 overhead accounting, the chaos
// matrix) is a pure function of its seed, byte-identical across runs.
// HYG* codes are hygiene rules that keep the codebase uniform enough for
// the DET* rules to stay checkable.
#pragma once

#include <array>
#include <string>
#include <string_view>

namespace detlint {

enum class Code {
  DET001,  // wall-clock / real time source
  DET002,  // unseeded or global randomness
  DET003,  // unordered associative container
  DET004,  // real concurrency / blocking primitive
  DET005,  // pointer identity flowing into hashes, logs, or stats
  HYG001,  // header missing #pragma once
  HYG002,  // raw owning new / delete
  HYG003,  // float arithmetic in byte/packet accounting
};

inline constexpr std::array<Code, 8> kAllCodes = {
    Code::DET001, Code::DET002, Code::DET003, Code::DET004,
    Code::DET005, Code::HYG001, Code::HYG002, Code::HYG003,
};

std::string_view code_name(Code code);
std::string_view code_summary(Code code);

/// Parses "DET001" etc.  Returns false if the name is unknown.
bool parse_code(std::string_view name, Code& out);

struct Diagnostic {
  std::string file;  // path as scanned (relative to the scan root)
  int line;
  Code code;
  std::string message;
  bool suppressed = false;        // by a justified allow-pragma
  bool baselined = false;         // by a --baseline entry
  std::string suppress_reason{};  // pragma justification, if any
};

/// "file:line: CODE message" — the grep/compiler-friendly format.
std::string format_diagnostic(const Diagnostic& d);

}  // namespace detlint
