#include "baseline.hpp"

#include <sstream>

namespace detlint {

bool Baseline::matches(const Diagnostic& d) const {
  for (const BaselineEntry& e : entries) {
    if (e.code != d.code) continue;
    if (e.path != d.file) continue;
    if (e.line == -1 || e.line == d.line) return true;
  }
  return false;
}

Baseline parse_baseline(const std::string& text,
                        std::vector<std::string>& errors) {
  Baseline out;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    std::size_t start = line.find_first_not_of(" \t");
    if (start == std::string::npos) continue;
    if (line[start] == '#') continue;
    // Split on the *last* two ':' so paths containing ':' never break.
    std::size_t second = line.rfind(':');
    std::size_t first = second == std::string::npos
                            ? std::string::npos
                            : line.rfind(':', second - 1);
    if (first == std::string::npos || second == std::string::npos ||
        first == 0) {
      errors.push_back("baseline line " + std::to_string(lineno) +
                       ": expected path:line:CODE");
      continue;
    }
    std::string path = line.substr(start, first - start);
    std::string linespec = line.substr(first + 1, second - first - 1);
    std::string codename = line.substr(second + 1);
    Code code;
    if (!parse_code(codename, code)) {
      errors.push_back("baseline line " + std::to_string(lineno) +
                       ": unknown code '" + codename + "'");
      continue;
    }
    int ln = -1;
    if (linespec != "*") {
      try {
        ln = std::stoi(linespec);
      } catch (...) {
        errors.push_back("baseline line " + std::to_string(lineno) +
                         ": bad line number '" + linespec + "'");
        continue;
      }
      if (ln < 1) {
        errors.push_back("baseline line " + std::to_string(lineno) +
                         ": bad line number '" + linespec + "'");
        continue;
      }
    }
    out.entries.push_back({std::move(path), ln, code});
  }
  return out;
}

std::string render_baseline(const std::vector<Diagnostic>& diags) {
  std::string out =
      "# detlint baseline — known findings suppressed in non-strict runs.\n"
      "# Regenerate with: detlint --write-baseline <file>\n"
      "# Entries: path:line:CODE  (or path:*:CODE for any line)\n";
  for (const Diagnostic& d : diags) {
    if (d.suppressed) continue;  // pragma-suppressed needs no baseline entry
    out += d.file;
    out += ":";
    out += std::to_string(d.line);
    out += ":";
    out += code_name(d.code);
    out += "\n";
  }
  return out;
}

}  // namespace detlint
