// A lightweight C++ lexer for detlint.
//
// detlint does not need a full parser: every rule it enforces (wall-clock
// reads, unseeded engines, unordered containers, threads, pointer-identity
// leaks, raw new/delete, float accounting) is recognisable from the token
// stream plus a little lookahead.  The lexer therefore only has to be exact
// about the things a grep is not: comments, string/char literals (including
// raw strings), and preprocessor lines must never produce identifier tokens,
// and line numbers must be right so diagnostics and `detlint: allow`
// pragmas anchor to the correct line.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace detlint {

enum class TokenKind {
  Identifier,  // keywords are identifiers too; checks match on text
  Number,      // integer or floating literal, suffix included
  String,      // text is the literal's *contents* (no quotes/prefix)
  CharLit,
  Punct,       // single punctuation character
};

struct Token {
  TokenKind kind;
  std::string text;
  int line;  // 1-based
};

/// A comment with the line range it covers.  `text` excludes the comment
/// markers.  Used for `// detlint: allow(CODE) reason` pragmas.
struct Comment {
  std::string text;
  int first_line;
  int last_line;
};

/// One preprocessor directive (continuation lines folded in), e.g.
/// "pragma once" or "include <thread>".  `text` excludes the leading '#'.
struct Directive {
  std::string text;
  int line;
};

/// The lexed view of one translation unit.
struct LexedFile {
  std::vector<Token> tokens;
  std::vector<Comment> comments;
  std::vector<Directive> directives;
};

/// Lex `source`.  Never throws on malformed input: an unterminated
/// comment/literal simply runs to end-of-file, which is the forgiving
/// behaviour a linter wants.
LexedFile lex(std::string_view source);

}  // namespace detlint
