#include "engine.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "checks.hpp"
#include "conc.hpp"
#include "lexer.hpp"
#include "stats/table.hpp"

namespace fs = std::filesystem;

namespace detlint {
namespace {

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool in_fixture_dir(const std::string& path) {
  return path.find("detlint_fixtures") != std::string::npos;
}

std::string normalize(const fs::path& p) {
  return p.lexically_normal().generic_string();
}

bool read_file(const fs::path& p, std::string& out) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

void collect(const fs::path& root, const fs::path& target,
             std::vector<fs::path>& files, std::vector<std::string>& errors) {
  std::error_code ec;
  fs::path abs = target.is_absolute() ? target : root / target;
  if (fs::is_regular_file(abs, ec)) {
    files.push_back(abs);
    return;
  }
  if (!fs::is_directory(abs, ec)) {
    errors.push_back("not found: " + target.generic_string());
    return;
  }
  for (fs::recursive_directory_iterator it(abs, ec), end; it != end;
       it.increment(ec)) {
    if (ec) {
      errors.push_back("walk error under " + target.generic_string() + ": " +
                       ec.message());
      break;
    }
    if (!it->is_regular_file(ec)) continue;
    std::string p = normalize(it->path());
    if (in_fixture_dir(p)) continue;
    if (scannable_file(p)) files.push_back(it->path());
  }
}

}  // namespace

bool scannable_file(const std::string& path) {
  static const char* kExts[] = {".cpp", ".cc", ".cxx", ".hpp", ".h", ".hxx"};
  for (const char* e : kExts)
    if (ends_with(path, e)) return true;
  return false;
}

std::size_t ScanResult::live_count(bool strict) const {
  std::size_t n = 0;
  for (const Diagnostic& d : diagnostics) {
    if (d.suppressed) continue;
    if (d.baselined && !strict) continue;
    ++n;
  }
  return n;
}

ScanResult scan(const ScanOptions& options) {
  ScanResult result;
  fs::path root(options.root);

  std::vector<fs::path> files;
  if (options.paths.empty()) {
    for (const char* dir : kDefaultDirs) {
      std::error_code ec;
      if (fs::is_directory(root / dir, ec))
        collect(root, dir, files, result.io_errors);
    }
  } else {
    for (const std::string& p : options.paths)
      collect(root, p, files, result.io_errors);
  }

  // Deterministic scan order regardless of directory iteration order.
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  ConcAnalyzer conc;
  for (const fs::path& file : files) {
    std::string source;
    if (!read_file(file, source)) {
      result.io_errors.push_back("unreadable: " + normalize(file));
      continue;
    }
    ++result.files_scanned;
    std::string rel =
        normalize(fs::proximate(file, root.empty() ? fs::path(".") : root));
    LexedFile lexed = lex(source);
    std::vector<Diagnostic> diags = run_checks(rel, lexed);
    for (Diagnostic& d : diags) {
      if (options.baseline.matches(d)) d.baselined = true;
      result.diagnostics.push_back(std::move(d));
    }
    if (options.conc) conc.add_file(rel, lexed);
  }
  if (options.conc) {
    for (Diagnostic& d : conc.finish()) {
      if (options.baseline.matches(d)) d.baselined = true;
      result.diagnostics.push_back(std::move(d));
    }
  }
  // Per-file checks and the cross-file CONC pass each arrive sorted; one
  // final stable sort interleaves them into (file, line, code) order.
  std::stable_sort(result.diagnostics.begin(), result.diagnostics.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     if (a.file != b.file) return a.file < b.file;
                     if (a.line != b.line) return a.line < b.line;
                     return code_name(a.code) < code_name(b.code);
                   });
  return result;
}

std::string render_summary(const ScanResult& result, bool strict) {
  std::map<Code, std::size_t> live, quiet;
  for (const Diagnostic& d : result.diagnostics) {
    bool silenced = d.suppressed || (d.baselined && !strict);
    (silenced ? quiet : live)[d.code]++;
  }

  dohperf::stats::TextTable table;
  table.add_row({"code", "live", "suppressed", "rule"});
  for (Code c : kAllCodes) {
    std::size_t l = live.count(c) ? live.at(c) : 0;
    std::size_t q = quiet.count(c) ? quiet.at(c) : 0;
    if (l == 0 && q == 0) continue;
    table.add_row({std::string(code_name(c)), std::to_string(l),
                   std::to_string(q), std::string(code_summary(c))});
  }

  std::string out;
  if (table.rows() > 1) out += table.render();
  out += "detlint: scanned " + std::to_string(result.files_scanned) +
         " files, " + std::to_string(result.live_count(strict)) +
         " finding(s)";
  std::size_t silenced =
      result.diagnostics.size() - result.live_count(strict);
  if (silenced > 0) out += ", " + std::to_string(silenced) + " suppressed";
  if (strict) out += " [strict]";
  out += "\n";
  return out;
}

}  // namespace detlint
