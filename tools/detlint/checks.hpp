// The detlint rule implementations.
//
// Every check is a pure function of one lexed translation unit plus its
// (repo-relative) path — there is no cross-TU state, which keeps the scan
// trivially parallelisable and, more importantly, keeps every finding
// explainable by pointing at one line of one file.
#pragma once

#include <string>
#include <vector>

#include "diagnostics.hpp"
#include "lexer.hpp"

namespace detlint {

/// Runs all DET/HYG checks over one file and applies any
/// `// detlint: allow(CODE) <reason>` pragmas found in its comments.
/// A pragma suppresses matching findings on the lines the comment covers
/// and on the line immediately following it; a pragma with no reason text
/// is ignored (the finding stays live) — justification is mandatory.
///
/// `path` should be repo-relative with '/' separators; it drives the two
/// path-sensitive behaviours:
///   * files matching src/stats/rng.* are exempt from DET002 (that is the
///     one sanctioned home of raw randomness), and
///   * HYG001 applies only to headers (.hpp/.h/.hxx).
std::vector<Diagnostic> run_checks(const std::string& path,
                                   const LexedFile& lexed);

/// Applies `// detlint: allow(CODE) <reason>` pragmas from `comments` to
/// `diags`: a justified pragma suppresses matching findings on the lines
/// the comment covers and on the line immediately following it.  Shared by
/// the per-file checks and the cross-file CONC pass (whose diagnostics are
/// produced after all files are lexed, so it must re-apply pragmas itself).
void apply_allow_pragmas(std::vector<Diagnostic>& diags,
                         const std::vector<Comment>& comments);

}  // namespace detlint
