// File discovery and scan orchestration for detlint.
#pragma once

#include <string>
#include <vector>

#include "baseline.hpp"
#include "diagnostics.hpp"

namespace detlint {

struct ScanOptions {
  std::string root = ".";          // repo root; scan paths are relative to it
  std::vector<std::string> paths;  // explicit files/dirs; empty = defaults
  bool strict = false;             // ignore baseline; any live finding fails
  bool conc = true;                // run the cross-file CONC pass
  Baseline baseline;
};

struct ScanResult {
  std::vector<Diagnostic> diagnostics;  // all findings, suppressed included
  std::size_t files_scanned = 0;
  std::vector<std::string> io_errors;  // unreadable files etc.

  /// Findings that should fail the run under the given strictness.
  std::size_t live_count(bool strict) const;
};

/// The directories scanned when no explicit paths are given.  Fixture
/// snippets under tests/detlint_fixtures are deliberately full of
/// violations and are always excluded from directory walks.
inline constexpr const char* kDefaultDirs[] = {"src", "bench", "examples",
                                               "tests", "tools"};

/// True for the extensions detlint lexes (.cpp/.cc/.cxx/.hpp/.h/.hxx).
bool scannable_file(const std::string& path);

ScanResult scan(const ScanOptions& options);

/// Renders the per-code summary table (reuses dohperf::stats::TextTable so
/// detlint output matches the bench harnesses' tables).
std::string render_summary(const ScanResult& result, bool strict);

}  // namespace detlint
