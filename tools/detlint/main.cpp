// detlint — determinism & simulation-safety lint for the dohperf repo.
//
// Usage:
//   detlint [--root DIR] [--strict] [--baseline FILE]
//           [--write-baseline FILE] [--no-summary] [--list-codes] [path...]
//
// With no paths, scans src/ bench/ examples/ tests/ tools/ under --root
// (excluding tests/detlint_fixtures, which are deliberately bad snippets
// for detlint's own test suite).  Exit codes: 0 clean, 1 findings, 2 usage
// or I/O error.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "engine.hpp"

namespace {

void print_usage() {
  std::cout <<
      "usage: detlint [options] [path...]\n"
      "\n"
      "Scans C++ sources for determinism and hygiene violations.  With no\n"
      "paths, scans src/ bench/ examples/ tests/ tools/ under the root.\n"
      "\n"
      "options:\n"
      "  --root DIR             repo root (default: .)\n"
      "  --strict               ignore the baseline; any live finding fails\n"
      "  --baseline FILE        suppress findings listed in FILE\n"
      "  --write-baseline FILE  write current findings as a baseline\n"
      "  --no-conc              skip the cross-file CONC reachability pass\n"
      "  --no-summary           omit the summary table\n"
      "  --list-codes           print every diagnostic code and exit\n"
      "  -h, --help             this text\n"
      "\n"
      "Suppress a single finding in code with a justified pragma:\n"
      "  std::map<...> m;  // detlint: allow(DET003) order irrelevant: <why>\n";
}

void list_codes() {
  for (detlint::Code c : detlint::kAllCodes) {
    std::printf("%s  %s\n", std::string(detlint::code_name(c)).c_str(),
                std::string(detlint::code_summary(c)).c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  detlint::ScanOptions options;
  std::string baseline_path;
  std::string write_baseline_path;
  bool summary = true;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "detlint: " << arg << " requires " << what << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "-h" || arg == "--help") {
      print_usage();
      return 0;
    } else if (arg == "--list-codes") {
      list_codes();
      return 0;
    } else if (arg == "--root") {
      options.root = next("a directory");
    } else if (arg == "--strict") {
      options.strict = true;
    } else if (arg == "--baseline") {
      baseline_path = next("a file");
    } else if (arg == "--write-baseline") {
      write_baseline_path = next("a file");
    } else if (arg == "--no-conc") {
      options.conc = false;
    } else if (arg == "--no-summary") {
      summary = false;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "detlint: unknown option " << arg << "\n";
      return 2;
    } else {
      options.paths.push_back(arg);
    }
  }

  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path, std::ios::binary);
    if (!in) {
      std::cerr << "detlint: cannot read baseline " << baseline_path << "\n";
      return 2;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    std::vector<std::string> errors;
    options.baseline = detlint::parse_baseline(ss.str(), errors);
    for (const std::string& e : errors)
      std::cerr << "detlint: " << baseline_path << ": " << e << "\n";
    if (!errors.empty()) return 2;
  }

  detlint::ScanResult result = detlint::scan(options);
  for (const std::string& e : result.io_errors)
    std::cerr << "detlint: " << e << "\n";

  for (const detlint::Diagnostic& d : result.diagnostics) {
    if (d.suppressed) continue;  // justified in-code pragma: silent
    bool silenced = d.baselined && !options.strict;
    std::cout << detlint::format_diagnostic(d)
              << (silenced ? " [baselined]" : "") << "\n";
  }
  if (summary) std::cout << detlint::render_summary(result, options.strict);

  if (!write_baseline_path.empty()) {
    std::ofstream out(write_baseline_path, std::ios::binary);
    if (!out) {
      std::cerr << "detlint: cannot write baseline " << write_baseline_path
                << "\n";
      return 2;
    }
    out << detlint::render_baseline(result.diagnostics);
  }

  if (!result.io_errors.empty()) return 2;
  return result.live_count(options.strict) > 0 ? 1 : 0;
}
