// Baseline suppression files.
//
// A baseline lets a newly-adopted rule land without blocking CI on legacy
// findings: `detlint --write-baseline detlint.baseline` records the current
// findings, `--baseline detlint.baseline` marks exactly those as known.
// Baselined findings are still printed (tagged `[baselined]`) but do not
// fail the run — except under --strict, which ignores the baseline so that
// the tree itself must be clean.  This repo's gate runs strict with an
// empty baseline; the mechanism exists for downstream forks and for
// staging new rules.
//
// Format: one entry per line, `path:line:CODE` or `path:*:CODE` (any line
// in that file).  `#` starts a comment.  Paths use '/' and are relative to
// the scan root.
#pragma once

#include <string>
#include <vector>

#include "diagnostics.hpp"

namespace detlint {

struct BaselineEntry {
  std::string path;
  int line;  // -1 means wildcard (any line)
  Code code;
};

struct Baseline {
  std::vector<BaselineEntry> entries;

  bool matches(const Diagnostic& d) const;
  bool empty() const { return entries.empty(); }
};

/// Parses baseline text.  Malformed lines are collected into `errors`
/// (prefixed with their line number) rather than aborting the run.
Baseline parse_baseline(const std::string& text,
                        std::vector<std::string>& errors);

/// Renders findings as baseline text, one entry per unsuppressed finding.
std::string render_baseline(const std::vector<Diagnostic>& diags);

}  // namespace detlint
