#include "conc.hpp"

#include <algorithm>
#include <deque>

#include "checks.hpp"

namespace detlint {
namespace {

// Keywords that look like `name (` but never are a function definition or a
// call worth an edge.
const std::set<std::string_view> kNotACall = {
    "if",       "for",      "while",     "switch",     "catch",
    "return",   "sizeof",   "alignof",   "alignas",    "decltype",
    "noexcept", "throw",    "co_await",  "co_return",  "co_yield",
    "and",      "or",       "not",       "defined",    "static_assert",
    "assert",   "typeid",   "requires",  "new",        "delete",
};

// Type qualifiers that make a `static` declaration immutable (or
// thread-confined), i.e. safe to reach from parallel code.
const std::set<std::string_view> kImmutableQualifiers = {
    "const", "constexpr", "constinit", "thread_local",
};

// Synchronization / shared-memory primitives that have no business inside a
// shard: each shard runs single-threaded over virtual time, so their
// presence signals state shared across shards (CONC005).  DET004 already
// bans std::thread/std::mutex repo-wide; this list focuses on the atomics
// and lock helpers a pragma'd DET004 spot could still smuggle in.
const std::set<std::string_view> kSyncIdents = {
    "atomic",          "atomic_flag",      "atomic_ref",
    "atomic_bool",     "atomic_int",       "atomic_uint",
    "atomic_size_t",   "atomic_uint64_t",  "atomic_thread_fence",
    "mutex",           "recursive_mutex",  "timed_mutex",
    "shared_mutex",    "lock_guard",       "unique_lock",
    "scoped_lock",     "shared_lock",      "condition_variable",
    "memory_order",    "memory_order_relaxed", "memory_order_consume",
    "memory_order_acquire", "memory_order_release",
    "memory_order_acq_rel", "memory_order_seq_cst",
    "fetch_add",       "fetch_sub",        "fetch_and",
    "fetch_or",        "fetch_xor",        "compare_exchange_weak",
    "compare_exchange_strong",
};

// Types whose instances must be per-shard (CONC004): sharing one across
// shard functors either races (RNG state, registry counters, span storage)
// or makes results depend on shard completion order.
const std::set<std::string_view> kPerShardTypes = {
    "SplitMix64", "Registry", "Tracer", "Cdf",
};

// Allocation-by-name calls for CONC006: constructions that always hit
// operator new (or malloc, for to_string's result string when it exceeds
// SSO) regardless of receiver state.
const std::set<std::string_view> kAllocCalls = {
    "make_unique", "make_shared", "to_string",
};

// Member calls that may grow their receiver's heap storage (CONC006).
// Growth from a base that also has a `reserve()` call in the same body is
// amortised into warm-up and not reported.
const std::set<std::string_view> kGrowthMembers = {
    "push_back", "emplace_back", "emplace", "append", "insert", "resize",
};

// Member calls that mutate their receiver — used by the CONC002 write
// detector so `captured.push_back(...)` counts as a write.
const std::set<std::string_view> kMutatingMembers = {
    "push_back", "pop_back", "emplace_back", "emplace", "insert", "erase",
    "clear",     "resize",   "assign",       "append",  "add",    "add_all",
    "observe",   "set_gauge", "merge_from",  "bind",
};

bool is_ident(const std::vector<Token>& t, std::size_t i,
              std::string_view text) {
  return i < t.size() && t[i].kind == TokenKind::Identifier &&
         t[i].text == text;
}

bool is_punct(const std::vector<Token>& t, std::size_t i, char c) {
  return i < t.size() && t[i].kind == TokenKind::Punct && t[i].text[0] == c;
}

bool any_ident(const std::vector<Token>& t, std::size_t i) {
  return i < t.size() && t[i].kind == TokenKind::Identifier;
}

/// Index just past the matching close for the open punct at `i` ('(' or
/// '{'), or t.size() when unbalanced.
std::size_t skip_balanced(const std::vector<Token>& t, std::size_t i,
                          char open, char close) {
  int depth = 0;
  for (std::size_t j = i; j < t.size(); ++j) {
    if (is_punct(t, j, open)) ++depth;
    else if (is_punct(t, j, close) && --depth == 0) return j + 1;
  }
  return t.size();
}

/// For an identifier at `i` possibly followed by template args, the index
/// of a call's '(' — i+1 for `name(...)`, past the balanced `<...>` for
/// `name<T>(...)`.  Returns 0 when tokens[i] does not start a call.
std::size_t call_open_paren(const std::vector<Token>& t, std::size_t i) {
  if (is_punct(t, i + 1, '(')) return i + 1;
  if (!is_punct(t, i + 1, '<')) return 0;
  // Bounded template-argument scan; a stray `a < b` comparison will fail to
  // close before hitting a statement boundary and is rejected.
  int depth = 0;
  for (std::size_t j = i + 1; j < t.size() && j < i + 41; ++j) {
    if (is_punct(t, j, '<')) ++depth;
    else if (is_punct(t, j, '>')) {
      if (--depth == 0) return is_punct(t, j + 1, '(') ? j + 1 : 0;
    } else if (is_punct(t, j, ';') || is_punct(t, j, '{')) {
      return 0;
    }
  }
  return 0;
}

/// Walk back over a `base.member1.member2` chain from the identifier at
/// `i` to the chain's base identifier index.
std::size_t member_chain_base(const std::vector<Token>& t, std::size_t i) {
  while (i >= 2) {
    if (is_punct(t, i - 1, '.') && any_ident(t, i - 2)) {
      i -= 2;
    } else if (i >= 3 && is_punct(t, i - 1, '>') && is_punct(t, i - 2, '-') &&
               any_ident(t, i - 3)) {
      i -= 3;
    } else {
      break;
    }
  }
  return i;
}

}  // namespace

void ConcAnalyzer::add_file(const std::string& path, const LexedFile& lexed) {
  FileModel model;
  model.path = path;
  model.comments = lexed.comments;
  const std::vector<Token>& t = lexed.tokens;

  // --- struct/class definitions (for CONC003) ---------------------------
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!(is_ident(t, i, "struct") || is_ident(t, i, "class"))) continue;
    StructDef def;
    def.line = t[i].line;
    std::size_t j = i + 1;
    if (is_ident(t, j, "alignas") && is_punct(t, j + 1, '(')) {
      def.has_alignas = true;
      j = skip_balanced(t, j + 1, '(', ')');
    }
    if (!any_ident(t, j)) continue;  // anonymous or `struct {`
    def.name = t[j].text;
    // Definition (not a forward declaration / elaborated type): the name
    // must be followed by `{`, `final`, or a base-clause `:`.
    std::size_t k = j + 1;
    if (is_ident(t, k, "final")) ++k;
    if (!(is_punct(t, k, '{') || is_punct(t, k, ':'))) continue;
    for (const Comment& c : lexed.comments) {
      if (c.text.find("detlint: hot-slot") == std::string::npos) continue;
      if (def.line == c.first_line || def.line == c.last_line ||
          def.line == c.last_line + 1) {
        def.hot_slot = true;
      }
    }
    model.structs.push_back(std::move(def));
  }

  // --- shared-type declarations (for CONC004) ---------------------------
  // `stats::SplitMix64 rng(seed);`, `obs::Tracer tracer;`, ... anywhere in
  // the file; uses inside a shard lambda are checked against this map
  // unless the lambda declares its own instance.
  for (std::size_t i = 1; i + 1 < t.size(); ++i) {
    if (t[i].kind != TokenKind::Identifier) continue;
    if (!kPerShardTypes.count(t[i - 1].text)) continue;
    if (t[i - 1].kind != TokenKind::Identifier) continue;
    if (is_punct(t, i + 1, ';') || is_punct(t, i + 1, '=') ||
        is_punct(t, i + 1, '{') || is_punct(t, i + 1, '(')) {
      model.shared_decls.emplace(
          t[i].text, SharedDecl{t[i - 1].text, t[i].line});
    }
  }

  // --- function definitions + their bodies ------------------------------
  std::vector<std::pair<std::size_t, std::size_t>> body_ranges;

  // Classifies the `static` at token index s (inside or outside a body).
  // Returns true and fills (line, name) when it declares a mutable
  // variable; static functions and const/constexpr/thread_local data are
  // not hazards.
  const auto classify_static = [&](std::size_t s,
                                   std::pair<int, std::string>& out) {
    std::string last_ident;
    for (std::size_t j = s + 1; j < t.size() && j < s + 40; ++j) {
      if (t[j].kind == TokenKind::Identifier) {
        if (kImmutableQualifiers.count(t[j].text)) return false;
        last_ident = t[j].text;
        continue;
      }
      if (is_punct(t, j, '<')) {  // template args in the type
        j = skip_balanced(t, j, '<', '>') - 1;
        continue;
      }
      if (is_punct(t, j, '(')) return false;  // static function
      if (is_punct(t, j, '=') || is_punct(t, j, ';') ||
          is_punct(t, j, '{')) {
        if (last_ident.empty()) return false;
        out = {t[s].line, last_ident};
        return true;
      }
      if (is_punct(t, j, ':') || is_punct(t, j, '*') ||
          is_punct(t, j, '&') || is_punct(t, j, ',')) {
        continue;
      }
      return false;  // anything else: not a variable declaration
    }
    return false;
  };

  // Collects call/ref/static/sync facts from a token range into a Region,
  // and records run_sharded call sites (whose lambda bodies re-enter the
  // same analysis) — a struct so it can recurse.
  struct BodyAnalyzer {
    const std::vector<Token>& t;
    FileModel& model;
    const decltype(classify_static)& classify;

    void run(std::size_t from, std::size_t to, Region& region,
             bool collect_sites) {
      for (std::size_t i = from; i < to; ++i) {
        if (t[i].kind != TokenKind::Identifier) continue;
        const std::string& text = t[i].text;
        if (text == "static") {
          std::pair<int, std::string> found;
          if (classify(i, found)) region.mutable_statics.push_back(found);
          continue;
        }
        if (kSyncIdents.count(text)) {
          region.sync_tokens.push_back({t[i].line, text});
        }
        // CONC006 fact collection (reported only for hot-loop regions).
        if (text == "new") {
          if (!(i > 0 && is_ident(t, i - 1, "operator"))) {
            region.allocs.push_back({t[i].line, "new", ""});
          }
        } else if (kAllocCalls.count(text) && call_open_paren(t, i) != 0) {
          region.allocs.push_back({t[i].line, text, ""});
        } else if (i >= 2 && is_punct(t, i + 1, '(') &&
                   (is_punct(t, i - 1, '.') ||
                    (is_punct(t, i - 1, '>') && is_punct(t, i - 2, '-')))) {
          if (text == "reserve") {
            const std::size_t base = member_chain_base(t, i);
            if (base != i && any_ident(t, base)) {
              region.reserved.insert(t[base].text);
            }
          } else if (kGrowthMembers.count(text)) {
            const std::size_t base = member_chain_base(t, i);
            if (base != i && any_ident(t, base)) {
              region.allocs.push_back({t[i].line, text, t[base].text});
            }
          }
        }
        if (!region.refs.count(text) && !is_punct(t, i - 1, '.') &&
            !(i >= 2 && is_punct(t, i - 1, '>') && is_punct(t, i - 2, '-'))) {
          region.refs.emplace(text, t[i].line);
        }
        if (kNotACall.count(text)) continue;
        const std::size_t open = call_open_paren(t, i);
        if (open == 0) continue;
        region.calls.insert(text);
        if (collect_sites && text == "run_sharded") {
          collect_shard_site(i, open, region);
        }
      }
    }

    void collect_shard_site(std::size_t name_idx, std::size_t open,
                            Region& enclosing) {
      ShardSite site;
      site.line = t[name_idx].line;
      // Explicit template argument: last identifier inside `<...>`.
      if (is_punct(t, name_idx + 1, '<')) {
        for (std::size_t j = name_idx + 2; j < open; ++j) {
          if (any_ident(t, j)) site.result_type = t[j].text;
        }
      }
      const std::size_t close = skip_balanced(t, open, '(', ')');
      for (std::size_t j = open + 1; j + 1 < close; ++j) {
        if (!is_punct(t, j, '[')) continue;
        // Candidate lambda introducer: `[caps] (params) ... {`.
        const std::size_t cap_end = skip_balanced(t, j, '[', ']');
        if (cap_end >= close) break;
        ShardLambda lambda;
        for (std::size_t c = j + 1; c + 1 < cap_end; ++c) {
          if (is_punct(t, c, '&')) {
            if (any_ident(t, c + 1)) {
              lambda.ref_captures.insert(t[c + 1].text);
              ++c;
            } else {
              lambda.capture_default_ref = true;
            }
          } else if (is_ident(t, c, "this")) {
            lambda.capture_default_ref = true;  // members are shared state
          } else if (any_ident(t, c)) {
            lambda.value_captures.insert(t[c].text);
          }
        }
        std::size_t k = cap_end;
        if (is_punct(t, k, '(')) {  // parameter list: names are locals
          const std::size_t params_end = skip_balanced(t, k, '(', ')');
          for (std::size_t p = k + 1; p + 1 < params_end; ++p) {
            if (any_ident(t, p) && (is_punct(t, p + 1, ',') ||
                                    is_punct(t, p + 1, ')'))) {
              lambda.locals.insert(t[p].text);
            }
          }
          k = params_end;
        }
        while (k < close && (is_ident(t, k, "mutable") ||
                             is_ident(t, k, "noexcept") ||
                             is_punct(t, k, '-') || is_punct(t, k, '>') ||
                             any_ident(t, k) || is_punct(t, k, ':')))
          ++k;
        if (!is_punct(t, k, '{')) {  // not a lambda after all (e.g. index)
          j = cap_end - 1;
          continue;
        }
        const std::size_t body_end = skip_balanced(t, k, '{', '}');
        lambda.region.line = t[k].line;
        run(k + 1, body_end - 1, lambda.region, /*collect_sites=*/false);
        analyze_lambda_locals_and_writes(k + 1, body_end - 1, lambda);
        site.lambdas.push_back(std::move(lambda));
        j = body_end - 1;
      }
      (void)enclosing;
      model.shard_sites.push_back(std::move(site));
    }

    void analyze_lambda_locals_and_writes(std::size_t from, std::size_t to,
                                          ShardLambda& lambda) {
      // Pass 1 — declarations: `Type name ...`, `auto& name = ...`.
      for (std::size_t i = from; i < to; ++i) {
        if (!any_ident(t, i) || i == 0) continue;
        const Token& prev = t[i - 1];
        bool type_before = prev.kind == TokenKind::Identifier &&
                           !kNotACall.count(prev.text);
        if (!type_before && prev.kind == TokenKind::Punct &&
            (prev.text[0] == '&' || prev.text[0] == '*' ||
             prev.text[0] == '>')) {
          // `Type& name` / `Type* name` / `vector<T> name` — but only when
          // a type actually precedes the sigil (`? &tracer :` does not).
          type_before = i >= 2 && (any_ident(t, i - 2) ||
                                   is_punct(t, i - 2, '>'));
        }
        if (!type_before) continue;
        if (is_punct(t, i + 1, '=') || is_punct(t, i + 1, ';') ||
            is_punct(t, i + 1, '{') || is_punct(t, i + 1, '(') ||
            is_punct(t, i + 1, ':') || is_punct(t, i + 1, ')') ||
            is_punct(t, i + 1, ',')) {
          lambda.locals.insert(t[i].text);
        }
      }
      // Pass 2 — writes: assignment, compound assignment, ++/--, mutating
      // member calls.  The written name is the base of the member chain.
      for (std::size_t i = from; i < to; ++i) {
        if (!any_ident(t, i)) continue;
        bool write = false;
        if (is_punct(t, i + 1, '=') && !is_punct(t, i + 2, '=') &&
            !(i > from && (is_punct(t, i - 1, '=') || is_punct(t, i - 1, '!') ||
                           is_punct(t, i - 1, '<') || is_punct(t, i - 1, '>'))))
          write = true;
        if (!write && i + 2 < to && is_punct(t, i + 2, '=') &&
            t[i + 1].kind == TokenKind::Punct) {
          const char op = t[i + 1].text[0];
          if (op == '+' || op == '-' || op == '*' || op == '/' ||
              op == '%' || op == '|' || op == '&' || op == '^')
            write = true;
        }
        if (!write &&
            ((is_punct(t, i + 1, '+') && is_punct(t, i + 2, '+')) ||
             (is_punct(t, i + 1, '-') && is_punct(t, i + 2, '-')) ||
             (i >= from + 2 && is_punct(t, i - 1, '+') &&
              is_punct(t, i - 2, '+')) ||
             (i >= from + 2 && is_punct(t, i - 1, '-') &&
              is_punct(t, i - 2, '-'))))
          write = true;
        if (!write && is_punct(t, i + 1, '(') &&
            kMutatingMembers.count(t[i].text) && i >= 2 &&
            (is_punct(t, i - 1, '.') ||
             (is_punct(t, i - 1, '>') && is_punct(t, i - 2, '-')))) {
          const std::size_t base = member_chain_base(t, i);
          if (base != i && any_ident(t, base)) {
            lambda.writes.push_back({t[base].line, t[base].text});
          }
          continue;
        }
        if (!write) continue;
        const std::size_t base = member_chain_base(t, i);
        if (!any_ident(t, base)) continue;
        lambda.writes.push_back({t[base].line, t[base].text});
      }
    }
  } analyzer{t, model, classify_static};

  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].kind != TokenKind::Identifier) continue;
    if (kNotACall.count(t[i].text)) continue;
    if (!is_punct(t, i + 1, '(')) continue;
    if (i > 0 && is_ident(t, i - 1, "operator")) continue;
    // Skip if inside an already-recorded body (linear scan keeps ranges
    // ordered, so only the last range can contain i).
    if (!body_ranges.empty() && i < body_ranges.back().second) continue;
    const std::size_t params_end = skip_balanced(t, i + 1, '(', ')');
    if (params_end >= t.size()) continue;
    // Find the body '{', skipping cv/ref/noexcept, trailing return types
    // and constructor member-initializer lists.
    std::size_t k = params_end;
    bool in_init_list = false;
    bool is_definition = false;
    while (k < t.size()) {
      if (is_punct(t, k, '{')) {
        if (in_init_list && k > 0 && any_ident(t, k - 1)) {
          k = skip_balanced(t, k, '{', '}');  // member brace-init
          continue;
        }
        is_definition = true;
        break;
      }
      if (is_punct(t, k, ';') || is_punct(t, k, '=')) break;
      if (is_punct(t, k, ':')) {
        in_init_list = true;
        ++k;
        continue;
      }
      if (is_punct(t, k, '(')) {
        k = skip_balanced(t, k, '(', ')');
        continue;
      }
      if (is_punct(t, k, '<')) {
        k = skip_balanced(t, k, '<', '>');
        continue;
      }
      if (any_ident(t, k) || is_punct(t, k, ',') || is_punct(t, k, '&') ||
          is_punct(t, k, '*') || is_punct(t, k, '-') ||
          is_punct(t, k, '>') || is_punct(t, k, '[') ||
          is_punct(t, k, ']')) {
        ++k;
        continue;
      }
      break;
    }
    if (!is_definition) continue;
    const std::size_t body_end = skip_balanced(t, k, '{', '}');
    Region region;
    region.name = t[i].text;
    region.line = t[i].line;
    analyzer.run(k + 1, body_end - 1, region, /*collect_sites=*/true);
    model.functions.push_back(std::move(region));
    body_ranges.push_back({k, body_end});
  }

  // --- hot-loop annotations (for CONC006) -------------------------------
  // `// detlint: hot-loop` on the definition line or the line(s) above
  // marks a function whose body must stay free of global-heap allocation.
  for (const Comment& c : lexed.comments) {
    if (c.text.find("detlint: hot-loop") == std::string::npos) continue;
    for (Region& fn : model.functions) {
      if (fn.line == c.first_line || fn.line == c.last_line ||
          fn.line == c.last_line + 1) {
        fn.hot_loop = true;
      }
    }
  }

  // --- namespace-scope mutable statics (outside every body) -------------
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!is_ident(t, i, "static")) continue;
    bool inside = false;
    for (const auto& [b, e] : body_ranges) {
      if (i > b && i < e) {
        inside = true;
        break;
      }
    }
    if (inside) continue;  // function-local statics handled per region
    std::pair<int, std::string> found;
    if (classify_static(i, found)) model.global_statics.push_back(found);
  }

  files_.push_back(std::move(model));
}

std::vector<Diagnostic> ConcAnalyzer::finish() {
  // --- name-based reachability from shard functors ----------------------
  std::map<std::string, std::vector<std::pair<std::size_t, std::size_t>>>
      by_name;  // function name -> (file idx, fn idx)
  for (std::size_t f = 0; f < files_.size(); ++f) {
    for (std::size_t g = 0; g < files_[f].functions.size(); ++g) {
      by_name[files_[f].functions[g].name].push_back({f, g});
    }
  }

  std::map<std::pair<std::size_t, std::size_t>, std::string> reached;
  std::deque<std::pair<std::pair<std::size_t, std::size_t>, std::string>>
      worklist;
  const auto enqueue = [&](const std::string& callee,
                           const std::string& root) {
    const auto it = by_name.find(callee);
    if (it == by_name.end()) return;
    for (const auto& key : it->second) {
      if (reached.emplace(key, root).second) worklist.push_back({key, root});
    }
  };

  for (const FileModel& file : files_) {
    for (const ShardSite& site : file.shard_sites) {
      const std::string root =
          file.path + ":" + std::to_string(site.line);
      for (const ShardLambda& lambda : site.lambdas) {
        for (const std::string& callee : lambda.region.calls) {
          enqueue(callee, root);
        }
      }
    }
  }
  while (!worklist.empty()) {
    auto [key, root] = worklist.front();
    worklist.pop_front();
    for (const std::string& callee :
         files_[key.first].functions[key.second].calls) {
      enqueue(callee, root);
    }
  }

  // --- emit diagnostics per file ----------------------------------------
  std::vector<Diagnostic> all;
  for (std::size_t f = 0; f < files_.size(); ++f) {
    const FileModel& file = files_[f];
    std::vector<Diagnostic> diags;
    const auto report = [&](int line, Code code, std::string message) {
      diags.push_back({file.path, line, code, std::move(message)});
    };

    // Checks shared by reachable functions and shard lambda bodies.
    const auto check_region = [&](const Region& region,
                                  const std::string& who,
                                  const std::string& root) {
      for (const auto& [line, name] : region.mutable_statics) {
        report(line, Code::CONC001,
               "mutable static '" + name + "' in " + who +
                   " is reachable from parallel shard code (via " + root +
                   "); shards must not share mutable state");
      }
      for (const auto& [line, name] : region.sync_tokens) {
        report(line, Code::CONC005,
               "'" + name + "' in parallel-reachable " + who +
                   " (via " + root +
                   "); each shard is single-threaded by design — "
                   "synchronization signals accidental cross-shard sharing");
      }
      for (const auto& [gline, gname] : file.global_statics) {
        const auto ref = region.refs.find(gname);
        if (ref == region.refs.end()) continue;
        report(ref->second, Code::CONC001,
               "namespace-scope mutable static '" + gname + "' (declared line " +
                   std::to_string(gline) + ") referenced from " + who +
                   ", which is reachable from parallel shard code (via " +
                   root + ")");
      }
    };

    for (std::size_t g = 0; g < file.functions.size(); ++g) {
      const auto it = reached.find({f, g});
      if (it == reached.end()) continue;
      const Region& fn = file.functions[g];
      check_region(fn, "'" + fn.name + "()'", it->second);
    }

    std::set<std::string> conc003_reported;
    for (const ShardSite& site : file.shard_sites) {
      const std::string root =
          file.path + ":" + std::to_string(site.line);
      // CONC003 — result slots live adjacent in run_sharded's result
      // vector; the type needs alignas(64) so worker threads writing
      // neighbouring slots do not share a cache line.
      if (!site.result_type.empty() &&
          !conc003_reported.count(site.result_type)) {
        for (const StructDef& def : file.structs) {
          if (def.name != site.result_type || def.has_alignas) continue;
          conc003_reported.insert(site.result_type);
          report(def.line, Code::CONC003,
                 "per-shard result type '" + def.name +
                     "' is written into adjacent array slots by run_sharded "
                     "(line " + std::to_string(site.line) +
                     ") but lacks alignas(64); neighbouring shards will "
                     "false-share its cache line");
          break;
        }
      }
      for (const ShardLambda& lambda : site.lambdas) {
        check_region(lambda.region, "a shard lambda", root);
        // CONC002 — writes through captured references escape the shard.
        for (const auto& [line, name] : lambda.writes) {
          if (lambda.locals.count(name)) continue;
          if (lambda.value_captures.count(name)) continue;
          const bool captured_by_ref = lambda.ref_captures.count(name) > 0 ||
                                       lambda.capture_default_ref;
          if (!captured_by_ref) continue;
          report(line, Code::CONC002,
                 "shard lambda writes '" + name +
                     "' captured by reference; per-shard output must be "
                     "returned through the shard's own result slot");
        }
        // CONC004 — shared RNG/Registry/Tracer/Cdf instances.
        for (const auto& [name, decl] : file.shared_decls) {
          if (lambda.locals.count(name)) continue;  // shard-local instance
          const auto ref = lambda.region.refs.find(name);
          if (ref == lambda.region.refs.end()) continue;
          report(ref->second, Code::CONC004,
                 "'" + name + "' (" + decl.type + ", declared line " +
                     std::to_string(decl.line) +
                     ") is shared across shard functors; give each shard "
                     "its own instance and merge by shard index");
        }
      }
    }

    // CONC006 — hot-loop annotated functions must not allocate from the
    // global heap. Opt-in and body-local (textually nested lambdas are
    // attributed to the containing function, like every CONC check);
    // growth calls on a base that is reserve()d in the same body are
    // amortised warm-up and stay silent.
    for (const Region& fn : file.functions) {
      if (!fn.hot_loop) continue;
      for (const AllocFact& a : fn.allocs) {
        if (!a.base.empty() && fn.reserved.count(a.base)) continue;
        if (a.base.empty()) {
          report(a.line, Code::CONC006,
                 "'" + a.what + "' allocates from the global heap inside "
                     "hot-loop function '" + fn.name +
                     "()'; the shard steady-state path must be "
                     "allocation-free (reserve, pool, or arena)");
        } else {
          report(a.line, Code::CONC006,
                 "'" + a.base + "." + a.what + "(...)' may grow heap "
                     "storage inside hot-loop function '" + fn.name +
                     "()' without a matching '" + a.base +
                     ".reserve(...)'; pre-size it or pool the storage");
        }
      }
    }

    // Hot-slot annotated structs must be alignas(64) wherever they live.
    for (const StructDef& def : file.structs) {
      if (!def.hot_slot || def.has_alignas) continue;
      report(def.line, Code::CONC003,
             "struct '" + def.name +
                 "' is annotated '// detlint: hot-slot' but lacks "
                 "alignas(64)");
    }

    apply_allow_pragmas(diags, file.comments);
    std::sort(diags.begin(), diags.end(),
              [](const Diagnostic& a, const Diagnostic& b) {
                if (a.line != b.line) return a.line < b.line;
                return code_name(a.code) < code_name(b.code);
              });
    for (Diagnostic& d : diags) all.push_back(std::move(d));
  }
  return all;
}

}  // namespace detlint
