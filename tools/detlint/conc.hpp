// The CONC diagnostic family: concurrency-safety analysis for the shard
// fan-out introduced with bench::run_sharded.
//
// Unlike the DET/HYG checks (pure per-file functions), the CONC pass is a
// lightweight *cross-file* analysis built on the same lexer: it extracts a
// per-file model (function definitions, the calls they make, run_sharded
// call sites with their shard lambdas, struct definitions, mutable static
// state, synchronization tokens), links the models into a name-based call
// graph, and marks everything reachable from a shard functor as
// *parallel-reachable*.  Lambda bodies are attributed to the function that
// textually contains them, so server/tier callbacks registered inside a
// reachable function are covered without tracking std::function values.
//
// Diagnostics (all suppressible with `// detlint: allow(CONC00x) reason`):
//   CONC001  mutable static state (function-local static or namespace-scope
//            static variable) reached from parallel-reachable code
//   CONC002  a shard lambda writes through a reference capture — per-shard
//            results must live in the shard's own slot, not escape
//   CONC003  a per-shard result type stored in adjacent array slots by
//            run_sharded (or any struct annotated `// detlint: hot-slot`)
//            lacks alignas(64), a false-sharing candidate
//   CONC004  a shared RNG/Registry/Tracer/Cdf instance declared outside the
//            shard lambda is used inside it (shards need their own,
//            merged by shard index)
//   CONC005  synchronization primitives (atomics, mutexes, memory orders)
//            inside parallel-reachable simulation code — each shard is
//            single-threaded by design, so synchronization there signals
//            accidental cross-shard sharing
//   CONC006  global-heap allocation (`new`, make_unique/make_shared,
//            std::to_string, or container growth from a non-reserved base)
//            inside a function annotated `// detlint: hot-loop` — the
//            per-shard arena keeps the steady-state hot path allocation-
//            free, and this check polices the annotated kernels statically.
//            A `base.reserve(...)` call in the same function body absolves
//            that base's growth calls (amortised into warm-up).
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "diagnostics.hpp"
#include "lexer.hpp"

namespace detlint {

class ConcAnalyzer {
 public:
  /// Registers one lexed translation unit.  `path` should be repo-relative
  /// with '/' separators (it becomes Diagnostic::file).
  void add_file(const std::string& path, const LexedFile& lexed);

  /// Runs the reachability pass over every added file and returns all CONC
  /// diagnostics, with allow-pragmas already applied and findings sorted by
  /// (file, line, code).
  std::vector<Diagnostic> finish();

 private:
  struct AllocFact {
    int line = 0;
    std::string what;  // "new", "make_unique", "push_back", ...
    std::string base;  // member-chain base for growth calls, else ""
  };

  struct Region {
    std::string name;  // unqualified function name ("" for a shard lambda)
    int line = 0;
    bool hot_loop = false;  // `// detlint: hot-loop` annotation
    std::set<std::string> calls;          // callee names (incl. members)
    std::map<std::string, int> refs;      // identifier -> first ref line
    std::vector<std::pair<int, std::string>> mutable_statics;  // line,name
    std::vector<std::pair<int, std::string>> sync_tokens;      // line,name
    std::vector<AllocFact> allocs;        // CONC006 candidates
    std::set<std::string> reserved;       // bases with a reserve() call
  };

  struct ShardLambda {
    Region region;                       // body facts, like a function
    bool capture_default_ref = false;
    std::set<std::string> ref_captures;
    std::set<std::string> value_captures;
    std::set<std::string> locals;        // params + body declarations
    std::vector<std::pair<int, std::string>> writes;  // line, chain base
  };

  struct ShardSite {
    int line = 0;
    std::string result_type;  // last identifier of the explicit template arg
    std::vector<ShardLambda> lambdas;
  };

  struct StructDef {
    std::string name;
    int line = 0;
    bool has_alignas = false;
    bool hot_slot = false;  // `// detlint: hot-slot` annotation
  };

  struct SharedDecl {
    std::string type;  // SplitMix64 / Registry / Tracer / Cdf
    int line = 0;
  };

  struct FileModel {
    std::string path;
    std::vector<Comment> comments;  // for pragma application in finish()
    std::vector<Region> functions;
    std::vector<ShardSite> shard_sites;
    std::vector<StructDef> structs;
    std::vector<std::pair<int, std::string>> global_statics;  // line, name
    std::map<std::string, SharedDecl> shared_decls;  // name -> type/line
  };

  std::vector<FileModel> files_;
};

}  // namespace detlint
