#include "diagnostics.hpp"

namespace detlint {

std::string_view code_name(Code code) {
  switch (code) {
    case Code::DET001: return "DET001";
    case Code::DET002: return "DET002";
    case Code::DET003: return "DET003";
    case Code::DET004: return "DET004";
    case Code::DET005: return "DET005";
    case Code::HYG001: return "HYG001";
    case Code::HYG002: return "HYG002";
    case Code::HYG003: return "HYG003";
    case Code::CONC001: return "CONC001";
    case Code::CONC002: return "CONC002";
    case Code::CONC003: return "CONC003";
    case Code::CONC004: return "CONC004";
    case Code::CONC005: return "CONC005";
    case Code::CONC006: return "CONC006";
  }
  return "DET???";
}

std::string_view code_summary(Code code) {
  switch (code) {
    case Code::DET001:
      return "wall-clock or real time source in simulated code";
    case Code::DET002:
      return "unseeded or global randomness outside src/stats/rng";
    case Code::DET003:
      return "unordered container (iteration order is unspecified)";
    case Code::DET004:
      return "real concurrency or blocking primitive in the simulator";
    case Code::DET005:
      return "pointer identity flowing into hashes, logs, or stats";
    case Code::HYG001:
      return "header is missing #pragma once";
    case Code::HYG002:
      return "raw owning new/delete";
    case Code::HYG003:
      return "float arithmetic (byte/packet accounting is integer)";
    case Code::CONC001:
      return "mutable static state reached from parallel shard code";
    case Code::CONC002:
      return "shard lambda writes through a captured reference";
    case Code::CONC003:
      return "per-shard result slot lacks alignas(64) (false sharing)";
    case Code::CONC004:
      return "shared RNG/Registry/Tracer used inside a shard functor";
    case Code::CONC005:
      return "synchronization primitive in parallel-reachable sim code";
    case Code::CONC006:
      return "global-heap allocation inside a hot-loop annotated body";
  }
  return "unknown diagnostic";
}

bool parse_code(std::string_view name, Code& out) {
  for (Code c : kAllCodes) {
    if (code_name(c) == name) {
      out = c;
      return true;
    }
  }
  return false;
}

std::string format_diagnostic(const Diagnostic& d) {
  std::string s = d.file;
  s += ":";
  s += std::to_string(d.line);
  s += ": ";
  s += code_name(d.code);
  s += " ";
  s += d.message;
  return s;
}

}  // namespace detlint
