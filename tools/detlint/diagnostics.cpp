#include "diagnostics.hpp"

namespace detlint {

std::string_view code_name(Code code) {
  switch (code) {
    case Code::DET001: return "DET001";
    case Code::DET002: return "DET002";
    case Code::DET003: return "DET003";
    case Code::DET004: return "DET004";
    case Code::DET005: return "DET005";
    case Code::HYG001: return "HYG001";
    case Code::HYG002: return "HYG002";
    case Code::HYG003: return "HYG003";
  }
  return "DET???";
}

std::string_view code_summary(Code code) {
  switch (code) {
    case Code::DET001:
      return "wall-clock or real time source in simulated code";
    case Code::DET002:
      return "unseeded or global randomness outside src/stats/rng";
    case Code::DET003:
      return "unordered container (iteration order is unspecified)";
    case Code::DET004:
      return "real concurrency or blocking primitive in the simulator";
    case Code::DET005:
      return "pointer identity flowing into hashes, logs, or stats";
    case Code::HYG001:
      return "header is missing #pragma once";
    case Code::HYG002:
      return "raw owning new/delete";
    case Code::HYG003:
      return "float arithmetic (byte/packet accounting is integer)";
  }
  return "unknown diagnostic";
}

bool parse_code(std::string_view name, Code& out) {
  for (Code c : kAllCodes) {
    if (code_name(c) == name) {
      out = c;
      return true;
    }
  }
  return false;
}

std::string format_diagnostic(const Diagnostic& d) {
  std::string s = d.file;
  s += ":";
  s += std::to_string(d.line);
  s += ": ";
  s += code_name(d.code);
  s += " ";
  s += d.message;
  return s;
}

}  // namespace detlint
