// obs_schema_check — validates the JSON files the bench harnesses emit
// against the documented schemas:
//
//   * dohperf-bench-v1    (--json):  {"schema","bench","params","scenarios",
//                                     "metrics"?}
//   * dohperf-metrics-v1  (nested or standalone): {"schema","counters",
//                                     "gauges","histograms"}
//   * Chrome trace_event  (--trace): {"displayTimeUnit","traceEvents":[...]}
//
// Usage: obs_schema_check FILE...
// The document kind is auto-detected per file. Exits 0 when every file
// validates, 1 otherwise, printing one line per violation. CI runs this over
// freshly emitted bench output (see tests/obs_schema_check.cmake) so schema
// drift fails the build instead of silently breaking downstream consumers.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "dns/json_value.hpp"

namespace {

using dohperf::dns::JsonValue;

using Errors = std::vector<std::string>;

void require(Errors& errors, bool ok, const std::string& message) {
  if (!ok) errors.push_back(message);
}

// --- dohperf-metrics-v1 ------------------------------------------------------

void validate_metrics(const JsonValue& doc, Errors& errors,
                      const std::string& where) {
  if (!doc.is_object()) {
    errors.push_back(where + ": metrics snapshot is not an object");
    return;
  }
  require(errors,
          doc.contains("schema") && doc.at("schema").is_string() &&
              doc.at("schema").as_string() == "dohperf-metrics-v1",
          where + ": schema != \"dohperf-metrics-v1\"");
  for (const char* section : {"counters", "gauges", "histograms"}) {
    if (!doc.contains(section) || !doc.at(section).is_object()) {
      errors.push_back(where + ": missing object \"" + section + "\"");
    }
  }
  if (doc.contains("counters") && doc.at("counters").is_object()) {
    for (const auto& [name, value] : doc.at("counters").as_object()) {
      require(errors, value.is_number() && value.as_int() >= 0,
              where + ": counter " + name + " is not a non-negative number");
    }
  }
  if (doc.contains("gauges") && doc.at("gauges").is_object()) {
    for (const auto& [name, value] : doc.at("gauges").as_object()) {
      require(errors, value.is_number(),
              where + ": gauge " + name + " is not a number");
    }
  }
  if (doc.contains("histograms") && doc.at("histograms").is_object()) {
    for (const auto& [name, value] : doc.at("histograms").as_object()) {
      if (!value.is_object()) {
        errors.push_back(where + ": histogram " + name + " is not an object");
        continue;
      }
      for (const char* field :
           {"count", "min", "p25", "p50", "p75", "p90", "p95", "p99",
            "max"}) {
        require(errors, value.contains(field) && value.at(field).is_number(),
                where + ": histogram " + name + " lacks numeric \"" + field +
                    "\"");
      }
    }
  }
}

// --- availability_matrix cells ----------------------------------------------

/// Extra structure required of availability_matrix reports: each grid cell
/// (a "scenario/rung" key; keys without "/" such as "checks" are the
/// harness's own verdicts) must carry the degradation-ladder headline
/// numbers with sane ranges.
void validate_availability_cell(const std::string& label,
                                const JsonValue& metrics, Errors& errors,
                                const std::string& where) {
  const auto pct_in_range = [&](const char* field) {
    if (!metrics.contains(field) || !metrics.at(field).is_number()) {
      errors.push_back(where + ": cell " + label + " lacks numeric \"" +
                       field + "\"");
      return;
    }
    const double v = metrics.at(field).as_double();
    require(errors, v >= 0.0 && v <= 100.0,
            where + ": cell " + label + " " + field + " outside [0,100]");
  };
  pct_in_range("availability_pct");
  pct_in_range("stale_pct");
  require(errors,
          metrics.contains("staleness_age_ms") &&
              metrics.at("staleness_age_ms").is_object(),
          where + ": cell " + label + " lacks object \"staleness_age_ms\"");
  require(errors,
          metrics.contains("p99_ms") && metrics.at("p99_ms").is_number() &&
              metrics.at("p99_ms").as_double() >= 0.0,
          where + ": cell " + label + " lacks non-negative \"p99_ms\"");
}

// --- overload_matrix cells ---------------------------------------------------

/// Extra structure required of overload_matrix reports: each grid cell
/// ("scenario/rung") must carry the goodput/shedding headline numbers, the
/// retry-amplification factor, and the per-reason shed breakdown.
void validate_overload_cell(const std::string& label, const JsonValue& metrics,
                            Errors& errors, const std::string& where) {
  const auto pct_in_range = [&](const char* field) {
    if (!metrics.contains(field) || !metrics.at(field).is_number()) {
      errors.push_back(where + ": cell " + label + " lacks numeric \"" +
                       field + "\"");
      return;
    }
    const double v = metrics.at(field).as_double();
    require(errors, v >= 0.0 && v <= 100.0,
            where + ": cell " + label + " " + field + " outside [0,100]");
  };
  pct_in_range("goodput_pct");
  pct_in_range("shed_pct");
  pct_in_range("cache_hit_pct");
  pct_in_range("aux_pct");
  for (const char* field : {"offered", "good", "p50_ms", "p99_ms",
                            "udp_retransmissions", "doh_reissues",
                            "queue_peak", "doh_peak_sessions",
                            "doh_memory_bytes"}) {
    require(errors,
            metrics.contains(field) && metrics.at(field).is_number() &&
                metrics.at(field).as_double() >= 0.0,
            where + ": cell " + label + " lacks non-negative \"" + field +
                "\"");
  }
  // RAF counts retries on top of first sends, so it can never dip below 1.
  require(errors,
          metrics.contains("raf") && metrics.at("raf").is_number() &&
              metrics.at("raf").as_double() >= 1.0,
          where + ": cell " + label + " lacks \"raf\" >= 1");
  if (!metrics.contains("shed") || !metrics.at("shed").is_object()) {
    errors.push_back(where + ": cell " + label + " lacks object \"shed\"");
    return;
  }
  for (const char* reason :
       {"queue_full", "deadline", "admission", "fairness", "retry_budget"}) {
    const auto& shed = metrics.at("shed");
    require(errors,
            shed.contains(reason) && shed.at(reason).is_number() &&
                shed.at(reason).as_int() >= 0,
            where + ": cell " + label + " shed lacks non-negative \"" +
                reason + "\"");
  }
}

// --- obs_overhead cells ------------------------------------------------------

/// Extra structure required of obs_overhead reports: each ladder cell
/// ("cell/rung") must carry the span/sampling tallies and pool statistics,
/// and every span must have been closed by the end of the run.
void validate_obs_overhead_cell(const std::string& label,
                                const JsonValue& metrics, Errors& errors,
                                const std::string& where) {
  for (const char* field :
       {"queries", "spans", "open_spans", "spans_sampled", "spans_dropped",
        "pool_spans", "pool_span_capacity", "pool_attr_entries",
        "pool_attr_capacity", "pool_attr_wasted", "pool_interned_names"}) {
    if (!metrics.contains(field) || !metrics.at(field).is_number()) {
      errors.push_back(where + ": cell " + label + " lacks numeric \"" +
                       field + "\"");
      continue;
    }
    require(errors, metrics.at(field).as_double() >= 0.0,
            where + ": cell " + label + " " + field + " is negative");
  }
  if (metrics.contains("open_spans") && metrics.at("open_spans").is_number()) {
    require(errors, metrics.at("open_spans").as_double() == 0.0,
            where + ": cell " + label + " left spans open");
  }
  require(errors,
          metrics.contains("queries") && metrics.at("queries").is_number() &&
              metrics.at("queries").as_double() > 0.0,
          where + ": cell " + label + " has no queries");
}

// --- dohperf-bench-v1 --------------------------------------------------------

void validate_bench(const JsonValue& doc, Errors& errors,
                    const std::string& where) {
  require(errors,
          doc.contains("schema") && doc.at("schema").is_string() &&
              doc.at("schema").as_string() == "dohperf-bench-v1",
          where + ": schema != \"dohperf-bench-v1\"");
  require(errors,
          doc.contains("bench") && doc.at("bench").is_string() &&
              !doc.at("bench").as_string().empty(),
          where + ": missing non-empty string \"bench\"");
  require(errors, doc.contains("params") && doc.at("params").is_object(),
          where + ": missing object \"params\"");
  if (!doc.contains("scenarios") || !doc.at("scenarios").is_object()) {
    errors.push_back(where + ": missing object \"scenarios\"");
    return;
  }
  const std::string bench_name =
      doc.contains("bench") && doc.at("bench").is_string()
          ? doc.at("bench").as_string()
          : "";
  const bool availability = bench_name == "availability_matrix";
  const bool overload = bench_name == "overload_matrix";
  const bool obs_overhead = bench_name == "obs_overhead";
  for (const auto& [label, metrics] : doc.at("scenarios").as_object()) {
    if (!metrics.is_object()) {
      errors.push_back(where + ": scenario " + label + " is not an object");
      continue;
    }
    require(errors, !metrics.as_object().empty(),
            where + ": scenario " + label + " has no metrics");
    for (const auto& [metric, value] : metrics.as_object()) {
      require(errors, !value.is_null(),
              where + ": scenario " + label + " metric " + metric +
                  " is null");
    }
    if (availability && label.find('/') != std::string::npos) {
      validate_availability_cell(label, metrics, errors, where);
    }
    if (overload && label.find('/') != std::string::npos) {
      validate_overload_cell(label, metrics, errors, where);
    }
    if (obs_overhead && label.find('/') != std::string::npos) {
      validate_obs_overhead_cell(label, metrics, errors, where);
    }
  }
  if (doc.contains("metrics")) {
    validate_metrics(doc.at("metrics"), errors, where + " metrics");
  }
}

// --- Chrome trace_event ------------------------------------------------------

void validate_trace(const JsonValue& doc, Errors& errors,
                    const std::string& where) {
  require(errors,
          doc.contains("displayTimeUnit") &&
              doc.at("displayTimeUnit").is_string(),
          where + ": missing string \"displayTimeUnit\"");
  if (!doc.contains("traceEvents") || !doc.at("traceEvents").is_array()) {
    errors.push_back(where + ": missing array \"traceEvents\"");
    return;
  }
  std::size_t index = 0;
  for (const auto& event : doc.at("traceEvents").as_array()) {
    const std::string at = where + ": traceEvents[" + std::to_string(index) +
                           "]";
    ++index;
    if (!event.is_object()) {
      errors.push_back(at + " is not an object");
      continue;
    }
    require(errors,
            event.contains("ph") && event.at("ph").is_string() &&
                event.at("ph").as_string() == "X",
            at + ": ph != \"X\"");
    require(errors,
            event.contains("name") && event.at("name").is_string() &&
                !event.at("name").as_string().empty(),
            at + ": missing non-empty string \"name\"");
    require(errors,
            event.contains("cat") && event.at("cat").is_string(),
            at + ": missing string \"cat\"");
    for (const char* field : {"ts", "dur", "pid", "tid"}) {
      require(errors,
              event.contains(field) && event.at(field).is_number() &&
                  event.at(field).as_int() >= 0,
              at + ": missing non-negative number \"" + field + "\"");
    }
    require(errors, event.contains("args") && event.at("args").is_object(),
            at + ": missing object \"args\"");
  }
}

// --- driver ------------------------------------------------------------------

Errors validate_file(const std::string& path) {
  Errors errors;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    errors.push_back(path + ": cannot open");
    return errors;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();

  JsonValue doc;
  try {
    doc = JsonValue::parse(buffer.str());
  } catch (const dohperf::dns::JsonError& e) {
    errors.push_back(path + ": JSON parse error: " + e.what());
    return errors;
  }
  if (!doc.is_object()) {
    errors.push_back(path + ": top-level value is not an object");
    return errors;
  }

  if (doc.contains("traceEvents")) {
    validate_trace(doc, errors, path);
  } else if (doc.contains("schema") && doc.at("schema").is_string() &&
             doc.at("schema").as_string() == "dohperf-metrics-v1") {
    validate_metrics(doc, errors, path);
  } else {
    validate_bench(doc, errors, path);
  }
  return errors;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: obs_schema_check FILE...\n"
                 "validates dohperf-bench-v1 / dohperf-metrics-v1 / Chrome "
                 "trace JSON\n");
    return 2;
  }
  int failures = 0;
  for (int i = 1; i < argc; ++i) {
    const Errors errors = validate_file(argv[i]);
    if (errors.empty()) {
      std::printf("%s: OK\n", argv[i]);
      continue;
    }
    ++failures;
    for (const auto& error : errors) {
      std::fprintf(stderr, "%s\n", error.c_str());
    }
  }
  return failures == 0 ? 0 : 1;
}
